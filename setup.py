"""Setup shim so ``pip install -e .`` works on environments whose
setuptools predates PEP 660 editable installs (no ``wheel`` package).
All metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
