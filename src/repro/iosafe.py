"""Crash-safe I/O primitives shared by every disk-touching subsystem.

Three failure classes keep showing up around the zoo cache, matcher
persistence and (now) training checkpoints:

* **torn writes** — a crash mid-``np.savez`` leaves a half-written
  archive at the final path, which later reads mistake for data;
* **transient errors** — NFS hiccups, ``EINTR``, briefly-locked files:
  failures that succeed on a second attempt but crash a long run when
  surfaced immediately;
* **corrupt artifacts** — bytes that exist but will not deserialize;
  deleting them destroys the evidence, keeping them in place re-trips
  every later process.

The helpers here address them uniformly: :func:`atomic_write_bytes`
publishes a file only after its content is durable (temp + fsync +
rename, so readers see the old version or the new one, never a mix),
:func:`retry_io` wraps reads/writes in bounded exponential backoff, and
:func:`quarantine` moves bad artifacts aside under a ``.corrupt`` suffix
instead of either crashing or silently deleting.

Everything is dependency-free and deliberately lives outside
``repro.core`` so that low-level modules (``repro.clip.zoo``) can import
it without pulling in the matcher stack.
"""

from __future__ import annotations

import itertools
import os
import random
import time
from pathlib import Path
from typing import Callable, Optional, Tuple, Type, TypeVar, Union

from .obs import get_logger, registry

__all__ = ["CorruptArtifactError", "retry_io", "atomic_write_bytes",
           "fsync_directory", "quarantine"]

_log = get_logger("repro.iosafe")

T = TypeVar("T")

#: process-wide jitter source; tests inject their own seeded Random
_jitter_rng = random.Random()

#: distinguishes concurrent writers *within* one process — the pid alone
#: collides when two threads atomically write the same path at once
_tmp_counter = itertools.count()


class CorruptArtifactError(RuntimeError):
    """An on-disk artifact exists but fails integrity/deserialization.

    Raised instead of the underlying ``zipfile.BadZipFile`` /
    ``ValueError`` soup so callers can catch one typed error for "the
    bytes are bad" and keep transient I/O failures separate.
    """


def retry_io(fn: Callable[[], T], *, attempts: int = 3,
             base_delay: float = 0.05,
             retry_on: Tuple[Type[BaseException], ...] = (OSError,),
             sleep: Callable[[float], None] = time.sleep,
             name: str = "io", jitter: bool = True,
             max_elapsed: Optional[float] = None,
             clock: Callable[[], float] = time.monotonic,
             rng: Optional[random.Random] = None) -> T:
    """Call ``fn`` with bounded, jittered exponential backoff on
    transient errors.

    ``FileNotFoundError`` is never retried (a missing file does not
    appear by waiting); everything else in ``retry_on`` is retried up to
    ``attempts - 1`` times, then the last exception propagates.  Each
    retry increments the ``io.retry`` counter so flaky storage is
    visible in exported metrics.

    The backoff before retry ``i`` is drawn uniformly from
    ``[0, base_delay * 2**i]`` (*full jitter*) so a herd of processes
    hitting the same flaky store does not retry in lock-step; pass
    ``jitter=False`` for the deterministic cap itself, or ``rng`` for a
    seeded source.

    ``max_elapsed`` caps the *total* time (work + backoff) this call may
    consume: if the next sleep would overrun it, the last exception
    propagates immediately instead.  This is what lets retries compose
    with serve deadlines — ``retry_io(fn,
    max_elapsed=deadline.remaining())`` can never overshoot the
    request's budget by more than one attempt of work.
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    if max_elapsed is not None and max_elapsed < 0:
        raise ValueError("max_elapsed must be non-negative")
    rng = rng if rng is not None else _jitter_rng
    started = clock()
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on as exc:
            if isinstance(exc, FileNotFoundError) or attempt == attempts - 1:
                raise
            delay = base_delay * (2 ** attempt)
            if jitter:
                delay = rng.uniform(0.0, delay)
            if max_elapsed is not None and \
                    (clock() - started) + delay > max_elapsed:
                _log.warning("retry budget exhausted, giving up", op=name,
                             attempt=attempt + 1,
                             max_elapsed=max_elapsed,
                             error=type(exc).__name__)
                raise
            registry().counter("io.retry").inc()
            _log.warning("transient I/O failure, retrying", op=name,
                         attempt=attempt + 1, attempts=attempts,
                         delay=delay, error=type(exc).__name__)
            sleep(delay)
    raise AssertionError("unreachable")


def fsync_directory(directory: Union[str, Path]) -> None:
    """Best-effort fsync of a directory entry (makes a rename durable).

    Silently a no-op where directories cannot be opened (Windows) or the
    filesystem refuses — atomicity of the rename itself is unaffected.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Durably publish ``data`` at ``path`` via write-to-temp + fsync +
    rename.

    A crash at any point leaves either the previous version of ``path``
    or the complete new one — never a truncated mix.  The temp file is
    created in the same directory (``os.replace`` must not cross
    filesystems) and cleaned up on failure.  Its name is unique per
    *call*, not just per process: two threads publishing the same path
    concurrently each write their own temp file and race only at the
    atomic rename, so the survivor is one complete version, never an
    interleaving (single writer wins, the loser's bytes are fully
    replaced).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(
        f"{path.name}.tmp-{os.getpid()}-{next(_tmp_counter)}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    fsync_directory(path.parent)
    return path


def quarantine(path: Union[str, Path]) -> Optional[Path]:
    """Move a corrupt artifact aside under a ``.corrupt`` suffix.

    Keeps the bad bytes for post-mortem while guaranteeing no later read
    trips over them.  Falls back to deletion if the rename fails, so the
    one invariant — the corrupt file no longer sits at ``path`` — holds
    whenever the filesystem allows it at all.  Returns the quarantine
    path, or ``None`` if the artifact could only be deleted.
    """
    path = Path(path)
    target = path.with_name(path.name + ".corrupt")
    bump = 0
    while target.exists():
        bump += 1
        target = path.with_name(f"{path.name}.corrupt{bump}")
    try:
        os.replace(path, target)
    except OSError:
        try:
            path.unlink()
        except OSError:
            return None
        registry().counter("io.quarantined").inc()
        _log.warning("corrupt artifact deleted (rename failed)",
                     path=str(path))
        return None
    registry().counter("io.quarantined").inc()
    _log.warning("corrupt artifact quarantined", path=str(path),
                 quarantined=str(target))
    return target
