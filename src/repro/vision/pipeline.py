"""Chunked (optionally thread-pooled) encoding over frozen towers.

Frozen encoders — the MiniCLIP image tower after :meth:`freeze_image_tower`
and the :class:`~repro.vision.encoder.PatchFeatureExtractor` — are pure
functions of their input, so a repository can be embedded chunk by chunk
and the chunks computed on a thread pool without changing a single bit
of the result: each chunk is encoded independently and the outputs are
concatenated in index order, so scheduling never reorders arithmetic.

The pool is opt-in (``workers`` argument or ``REPRO_ENCODE_WORKERS``)
because numpy only releases the GIL inside large BLAS calls; for small
chunks a pool adds overhead.  The default is the serial path, which is
what tests and benchmarks run unless explicitly configured otherwise.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import Callable, List, Optional

import numpy as np

from ..obs import get_logger, registry, span
from ..obs.trace import (activate_context, add_trace_event, capture_context,
                         trace_span)

__all__ = ["resolve_workers", "chunked_encode"]

_log = get_logger("repro.vision.pipeline")


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count for :func:`chunked_encode`: the explicit argument,
    else ``REPRO_ENCODE_WORKERS``, else 0 (serial)."""
    if workers is not None:
        return max(0, int(workers))
    env = os.environ.get("REPRO_ENCODE_WORKERS", "").strip()
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            _log.warning("ignoring invalid REPRO_ENCODE_WORKERS", value=env)
    return 0


def chunked_encode(encode_chunk: Callable[[int, int], np.ndarray],
                   num_items: int, chunk: int = 64,
                   workers: Optional[int] = None,
                   name: str = "encode") -> np.ndarray:
    """Apply ``encode_chunk(start, stop)`` over ``[0, num_items)`` in
    chunks and concatenate the results in index order.

    ``encode_chunk`` must be a pure function returning a ``(stop-start,
    ...)`` array.  With ``workers > 1`` chunks run on a thread pool;
    outputs are still assembled by chunk index, so the result is
    identical to the serial path.
    """
    if num_items <= 0:
        raise ValueError("chunked_encode needs at least one item")
    chunk = max(1, int(chunk))
    starts = list(range(0, num_items, chunk))
    workers = resolve_workers(workers)
    reg = registry()
    with span(f"{name}/chunked"), trace_span(f"{name}/chunked"):
        # Captured on the dispatching thread, inside the chunked span:
        # pooled chunks re-enter the owning request's trace context, so
        # their spans land under that request's tree instead of the
        # worker thread's own (empty) stack.
        ctx = capture_context()

        def run_chunk(start: int, stop: int) -> np.ndarray:
            with activate_context(ctx), trace_span(f"{name}/chunk"):
                return encode_chunk(start, stop)

        if workers > 1 and len(starts) > 1:
            # Futures + wait(FIRST_EXCEPTION) instead of pool.map: map
            # surfaces a worker exception only when iteration reaches
            # that chunk's position (late) and lets every queued chunk
            # run anyway.  Here the first failure cancels everything
            # still queued and propagates promptly.
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(run_chunk, s,
                                       min(s + chunk, num_items))
                           for s in starts]
                done, pending = wait(futures, return_when=FIRST_EXCEPTION)
                failure = next((f for f in done if f.exception() is not None),
                               None)
                if failure is not None:
                    cancelled = sum(f.cancel() for f in pending)
                    reg.counter(f"{name}.cancelled_chunks").inc(cancelled)
                    add_trace_event("pool", name=name, cancelled=cancelled)
                    _log.warning("encode chunk failed, cancelling rest",
                                 name=name, cancelled=cancelled,
                                 error=type(failure.exception()).__name__)
                    raise failure.exception()
                chunks: List[np.ndarray] = [f.result() for f in futures]
            reg.counter(f"{name}.pooled_chunks").inc(len(starts))
        else:
            chunks = [run_chunk(s, min(s + chunk, num_items))
                      for s in starts]
    reg.counter(f"{name}.chunks").inc(len(starts))
    if len(chunks) == 1:
        return chunks[0]
    return np.concatenate(chunks, axis=0)
