"""Video substrate — multimedia sources divided into frame images.

§II-A: "Multimedia data such as videos, can be divided into a set of
images based on frames."  A :class:`SyntheticVideo` is a short clip of
one concept with smooth per-frame jitter (panning exposure, flicker);
:func:`frames_to_images` samples frames into the standard image
repository format so videos flow through the exact same matching path
as still images.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from ..datasets.world import Concept
from ..nn.init import SeedLike, rng_from
from .image import SyntheticImage, render_concept

__all__ = ["SyntheticVideo", "record_video", "frames_to_images"]


@dataclasses.dataclass(frozen=True)
class SyntheticVideo:
    """A clip: (num_frames, side, side, 3) pixels plus provenance."""

    frames: np.ndarray
    concept_index: int
    video_id: int

    @property
    def num_frames(self) -> int:
        return int(self.frames.shape[0])


def record_video(concept: Concept, num_frames: int = 8,
                 rng: SeedLike = None, flicker: float = 0.05,
                 video_id: int = 0) -> SyntheticVideo:
    """Record a clip of ``concept``: one base render plus smooth
    brightness flicker and fresh sensor noise per frame."""
    if num_frames < 1:
        raise ValueError("a video needs at least one frame")
    rng = rng_from(rng)
    base = render_concept(concept, rng, noise=0.0)
    frames = np.empty((num_frames,) + base.shape, dtype=np.float32)
    brightness = 0.0
    for index in range(num_frames):
        brightness = 0.7 * brightness + float(rng.normal(0.0, flicker))
        frame = base + brightness
        frame = frame + rng.normal(0.0, 0.04, size=base.shape).astype(np.float32)
        frames[index] = np.clip(frame, 0.0, 1.0)
    return SyntheticVideo(frames, concept.index, video_id)


def frames_to_images(videos: Sequence[SyntheticVideo],
                     stride: int = 2,
                     start_image_id: int = 0) -> List[SyntheticImage]:
    """Sample every ``stride``-th frame of each video into the standard
    image repository format, preserving provenance."""
    if stride < 1:
        raise ValueError("stride must be positive")
    images: List[SyntheticImage] = []
    image_id = start_image_id
    for video in videos:
        for index in range(0, video.num_frames, stride):
            images.append(SyntheticImage(video.frames[index],
                                         video.concept_index, image_id))
            image_id += 1
    return images
