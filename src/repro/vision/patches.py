"""Patch extraction — images as sets of local properties.

PCP (Alg. 2, line 1) crops every image into patches and extracts a
feature per patch; the patch grid here matches the renderer's geometry
so each patch corresponds to one potential part slot.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .image import ImageSpec, SyntheticImage

__all__ = ["extract_patches", "patch_grid"]


def patch_grid(pixels: np.ndarray, spec: ImageSpec = ImageSpec()) -> np.ndarray:
    """Split ``pixels`` (H, W, C) into ``(num_patches, patch, patch, C)``
    in row-major patch order (patch *i* is part slot *i*)."""
    side, patch = spec.side, spec.patch
    if pixels.shape != (side, side, spec.channels):
        raise ValueError(f"expected image of shape ({side},{side},{spec.channels}), "
                         f"got {pixels.shape}")
    blocks = pixels.reshape(spec.grid, patch, spec.grid, patch, spec.channels)
    return blocks.transpose(0, 2, 1, 3, 4).reshape(
        spec.num_patches, patch, patch, spec.channels)


def extract_patches(images: Sequence[SyntheticImage],
                    spec: ImageSpec = ImageSpec()) -> np.ndarray:
    """Patch pixel blocks for a whole repository:
    ``(num_images, num_patches, patch, patch, C)``."""
    return np.stack([patch_grid(img.pixels, spec) for img in images])
