"""Vision feature extractors.

Two models live here, mirroring the paper's two distinct uses of vision
backbones:

* :class:`PatchFeatureExtractor` — the pre-trained **ResNet-18**
  stand-in used by PCP mini-batch generation (Alg. 2, line 1) to embed
  image patches *without fine-tuning*.  It computes fixed local
  statistics (mean/std RGB, gradient energy) followed by a deterministic
  random projection, which is exactly the role frozen conv features play.
* :class:`VisionEncoder` — the trainable **ViT-style** image tower of
  MiniCLIP: linear patch embedding + CLS token + transformer encoder,
  pre-trained contrastively and then frozen inside CrossEM (§II-C).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import nn
from ..nn.init import SeedLike, rng_from
from .image import ImageSpec, SyntheticImage
from .patches import patch_grid

__all__ = ["PatchFeatureExtractor", "VisionEncoder"]


def _patch_statistics(patches: np.ndarray) -> np.ndarray:
    """Hand-crafted local statistics per patch.

    ``patches``: (..., patch, patch, C) -> features (..., 8):
    mean RGB (3), std RGB (3), horizontal and vertical gradient energy.
    """
    mean = patches.mean(axis=(-3, -2))
    std = patches.std(axis=(-3, -2))
    grad_h = np.abs(np.diff(patches, axis=-2)).mean(axis=(-3, -2, -1), keepdims=False)
    grad_v = np.abs(np.diff(patches, axis=-3)).mean(axis=(-3, -2, -1), keepdims=False)
    return np.concatenate(
        [mean, std, grad_h[..., None], grad_v[..., None]], axis=-1).astype(np.float32)


class PatchFeatureExtractor:
    """Frozen patch featurizer (the paper's ResNet-18 backbone role).

    Output features additionally encode the patch's grid position as a
    one-hot block, because convolutional features of a full image are
    spatially indexed — a patch feature at position *k* is
    distinguishable from the same texture elsewhere.
    """

    def __init__(self, dim: int = 32, spec: ImageSpec = ImageSpec(),
                 seed: SeedLike = 7) -> None:
        self.spec = spec
        self.dim = dim
        rng = rng_from(seed)
        raw_dim = 8 + spec.num_patches  # statistics + position one-hot
        self._projection = (rng.standard_normal((raw_dim, dim))
                            / np.sqrt(raw_dim)).astype(np.float32)

    def raw_features(self, pixels: np.ndarray) -> np.ndarray:
        """Unprojected per-patch features of one image,
        ``(num_patches, 8 + num_patches)``."""
        patches = patch_grid(pixels, self.spec)
        stats = _patch_statistics(patches)
        position = np.eye(self.spec.num_patches, dtype=np.float32)
        return np.concatenate([stats, position], axis=-1)

    def features(self, pixels: np.ndarray) -> np.ndarray:
        """Projected per-patch features of one image, ``(num_patches, dim)``."""
        return self.raw_features(pixels) @ self._projection

    def features_pixels_batch(self, pixels_batch: np.ndarray) -> np.ndarray:
        """Projected features for stacked pixels ``(B, side, side, C)``,
        returning ``(B, num_patches, dim)``.

        The per-patch statistics are computed over the whole batch at
        once and projected through a single GEMM; every output element
        matches the per-image :meth:`features` path bit for bit (the
        statistics reduce within one patch, and the projection is a
        row-sliceable matmul).
        """
        spec = self.spec
        patches = np.stack([patch_grid(p, spec) for p in pixels_batch])
        stats = _patch_statistics(patches)  # (B, P, 8)
        position = np.broadcast_to(np.eye(spec.num_patches, dtype=np.float32),
                                   (len(pixels_batch), spec.num_patches,
                                    spec.num_patches))
        raw = np.concatenate([stats, position], axis=-1)
        flat = raw.reshape(-1, raw.shape[-1]) @ self._projection
        return flat.reshape(len(pixels_batch), spec.num_patches, self.dim)

    def features_batch(self, images: Sequence[SyntheticImage],
                       chunk: int = 256) -> np.ndarray:
        """Features for a repository, ``(num_images, num_patches, dim)``."""
        if not images:
            return np.zeros((0, self.spec.num_patches, self.dim), dtype=np.float32)
        from .pipeline import chunked_encode
        return chunked_encode(
            lambda s, e: self.features_pixels_batch(
                np.stack([img.pixels for img in images[s:e]])),
            len(images), chunk=chunk, name="patch_features")

    def features_batch_reference(self,
                                 images: Sequence[SyntheticImage]) -> np.ndarray:
        """The retained naive per-image loop; golden tests assert the
        vectorized :meth:`features_batch` equals it exactly."""
        if not images:
            return np.zeros((0, self.spec.num_patches, self.dim), dtype=np.float32)
        return np.stack([self.features(img.pixels) for img in images])


class VisionEncoder(nn.Module):
    """ViT-style image tower: patch embedding + CLS + transformer.

    ``forward`` takes raw pixel batches ``(B, side, side, C)`` and
    returns projected embeddings ``(B, embed_dim)``.
    """

    def __init__(self, embed_dim: int = 64, width: int = 48, depth: int = 2,
                 num_heads: int = 4, spec: ImageSpec = ImageSpec(),
                 rng: SeedLike = None) -> None:
        super().__init__()
        rng = rng_from(rng)
        self.spec = spec
        patch_pixels = spec.patch * spec.patch * spec.channels
        self.patch_embed = nn.Linear(patch_pixels, width, rng=rng)
        self.cls_token = nn.Parameter(nn.normal((1, 1, width), rng))
        self.positions = nn.Parameter(nn.normal((1, spec.num_patches + 1, width), rng))
        self.encoder = nn.TransformerEncoder(width, depth, num_heads, rng=rng)
        self.project = nn.Linear(width, embed_dim, bias=False, rng=rng)

    def forward(self, pixels: np.ndarray) -> nn.Tensor:
        pixels = np.asarray(pixels, dtype=np.float32)
        if pixels.ndim == 3:
            pixels = pixels[None]
        batch = pixels.shape[0]
        flat = np.stack([patch_grid(p, self.spec).reshape(self.spec.num_patches, -1)
                         for p in pixels])
        tokens = self.patch_embed(nn.Tensor(flat))
        cls = nn.concat([self.cls_token] * batch, axis=0)
        sequence = nn.concat([cls, tokens], axis=1) + self.positions
        encoded = self.encoder(sequence)
        return self.project(encoded[:, 0, :])

    def encode_images(self, images: Sequence[SyntheticImage]) -> nn.Tensor:
        """Convenience wrapper over a repository slice."""
        return self.forward(np.stack([img.pixels for img in images]))
