"""Vision substrate: synthetic images, patches and feature extractors."""

from .encoder import PatchFeatureExtractor, VisionEncoder
from .image import (ImageSpec, SyntheticImage, render_concept,
                    render_repository)
from .patches import extract_patches, patch_grid
from .pipeline import chunked_encode, resolve_workers
from .video import SyntheticVideo, frames_to_images, record_video

__all__ = ["ImageSpec", "SyntheticImage", "render_concept",
           "render_repository", "extract_patches", "patch_grid",
           "PatchFeatureExtractor", "VisionEncoder", "SyntheticVideo",
           "record_video", "frames_to_images", "chunked_encode",
           "resolve_workers"]
