"""Synthetic image substrate.

Images in the paper are unstructured pixel matrices whose *patches*
carry local properties ("white crown", "black tail" — Fig. 6).  The
renderer reproduces exactly that structure: a 24x24 RGB image divided
into a 3x3 patch grid where part slot *i* is painted into patch *i*
with its color's RGB signature plus a per-color texture, while
unassigned patches hold background noise.  Patch features therefore
genuinely encode the entity's visual attributes, which is the property
PCP mini-batch generation (§IV-A) and negative sampling (§IV-B) exploit.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from ..datasets.world import COLOR_RGB, Concept
from ..nn.init import SeedLike, rng_from

__all__ = ["ImageSpec", "SyntheticImage", "render_concept", "render_repository"]

#: Image geometry: GRID x GRID patches of PATCH x PATCH pixels, 3 channels.
GRID = 3
PATCH = 8
SIDE = GRID * PATCH
CHANNELS = 3


@dataclasses.dataclass(frozen=True)
class ImageSpec:
    """Geometry constants exposed for encoders and tests."""

    grid: int = GRID
    patch: int = PATCH
    channels: int = CHANNELS

    @property
    def side(self) -> int:
        return self.grid * self.patch

    @property
    def num_patches(self) -> int:
        return self.grid * self.grid


@dataclasses.dataclass(frozen=True)
class SyntheticImage:
    """An image plus its provenance (which concept it depicts)."""

    pixels: np.ndarray  # (SIDE, SIDE, 3) float32 in [0, 1]
    concept_index: int
    image_id: int


def _texture(color: int, rng: np.random.Generator) -> np.ndarray:
    """Per-color striped texture so colors differ beyond mean RGB."""
    base = np.zeros((PATCH, PATCH), dtype=np.float32)
    period = 2 + (color % 4)
    phase = int(rng.integers(period))
    base[(np.arange(PATCH) + phase) % period == 0, :] = 0.15
    return base


def render_concept(concept: Concept, rng: SeedLike = None,
                   noise: float = 0.08, occlusion_prob: float = 0.15) -> np.ndarray:
    """Render one noisy view of ``concept``.

    Each call produces a different "photo": background noise differs,
    attribute patches get jittered intensity, and with probability
    ``occlusion_prob`` one attribute patch is occluded (painted as
    background), mimicking view-dependent visibility.
    """
    rng = rng_from(rng)
    image = rng.uniform(0.35, 0.65, size=(SIDE, SIDE, CHANNELS)).astype(np.float32)
    items = concept.visual_items()
    occlude = -1
    if items and rng.random() < occlusion_prob:
        occlude = int(rng.integers(len(items)))
    for k, (part, color) in enumerate(items):
        if k == occlude:
            continue
        row, col = divmod(part, GRID)
        ys, xs = row * PATCH, col * PATCH
        rgb = COLOR_RGB[color] * float(rng.uniform(0.85, 1.15))
        block = np.clip(rgb, 0.0, 1.0)[None, None, :] * np.ones(
            (PATCH, PATCH, CHANNELS), dtype=np.float32)
        block += _texture(color, rng)[:, :, None]
        image[ys:ys + PATCH, xs:xs + PATCH] = np.clip(block, 0.0, 1.0)
    image += rng.normal(0.0, noise, size=image.shape).astype(np.float32)
    return np.clip(image, 0.0, 1.0)


def render_repository(concepts: Sequence[Concept], images_per_concept: int,
                      seed: SeedLike = 0, noise: float = 0.08) -> List[SyntheticImage]:
    """Render ``images_per_concept`` views of every concept.

    Returns a flat, shuffled image repository (the paper's I) with
    ground-truth concept provenance attached for evaluation.
    """
    rng = rng_from(seed)
    repository: List[SyntheticImage] = []
    image_id = 0
    for concept in concepts:
        for _ in range(images_per_concept):
            pixels = render_concept(concept, rng, noise=noise)
            repository.append(SyntheticImage(pixels, concept.index, image_id))
            image_id += 1
    order = rng.permutation(len(repository))
    return [repository[i] for i in order]
