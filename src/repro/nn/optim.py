"""First-order optimizers: SGD, Adam and AdamW, plus gradient clipping.

The paper trains with AdamW (§V-A); SGD and Adam are provided for the
ablation benches and tests.  Optimizers operate in place on the
parameters yielded by :meth:`repro.nn.layers.Module.parameters`.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .layers import Parameter

__all__ = ["SGD", "Adam", "AdamW", "clip_grad_norm"]


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most
    ``max_norm``; returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


class _Optimizer:
    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    @staticmethod
    def _check_slots(name: str, slots: List[np.ndarray],
                     arrays) -> List[np.ndarray]:
        arrays = list(arrays)
        if len(arrays) != len(slots):
            raise ValueError(f"optimizer state {name!r} holds {len(arrays)} "
                             f"arrays for {len(slots)} parameters")
        for slot, array in zip(slots, arrays):
            if np.shape(array) != slot.shape:
                raise ValueError(f"optimizer state {name!r} shape "
                                 f"{np.shape(array)} vs {slot.shape}")
        return arrays


class SGD(_Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def state_dict(self) -> dict:
        """Momentum buffers for checkpointing (arrays are copies)."""
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        """Restore buffers from :meth:`state_dict` output, in place."""
        velocity = self._check_slots("velocity", self._velocity,
                                     state["velocity"])
        for slot, array in zip(self._velocity, velocity):
            slot[...] = array

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data = p.data - self.lr * v
            else:
                p.data = p.data - self.lr * p.grad


class Adam(_Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def state_dict(self) -> dict:
        """Moments + step counter for checkpointing (arrays are copies).

        Restoring this exactly is what makes a resumed run's updates
        bit-identical to the uninterrupted one: the bias correction
        depends on ``step`` and the moments carry the whole history.
        """
        return {"step": self._step,
                "m": [m.copy() for m in self._m],
                "v": [v.copy() for v in self._v]}

    def load_state_dict(self, state: dict) -> None:
        """Restore moments from :meth:`state_dict` output, in place."""
        m = self._check_slots("m", self._m, state["m"])
        v = self._check_slots("v", self._v, state["v"])
        self._step = int(state["step"])
        for slot, array in zip(self._m, m):
            slot[...] = array
        for slot, array in zip(self._v, v):
            slot[...] = array

    def _update(self, p: Parameter, m: np.ndarray, v: np.ndarray) -> np.ndarray:
        m *= self.beta1
        m += (1 - self.beta1) * p.grad
        v *= self.beta2
        v += (1 - self.beta2) * (p.grad**2)
        m_hat = m / (1 - self.beta1**self._step)
        v_hat = v / (1 - self.beta2**self._step)
        return self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def step(self) -> None:
        self._step += 1
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            p.data = p.data - self._update(p, m, v)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    This is the optimizer the paper uses for all experiments.
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 5e-4,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.01) -> None:
        super().__init__(params, lr=lr, betas=betas, eps=eps)
        self.weight_decay = weight_decay

    def step(self) -> None:
        self._step += 1
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            p.data = p.data - self._update(p, m, v) - self.lr * self.weight_decay * p.data
