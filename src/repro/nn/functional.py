"""Differentiable functional building blocks used across the library.

These compose :class:`~repro.nn.tensor.Tensor` primitives into the
operations the paper's models need: numerically stable softmax and
log-softmax, cross-entropy, cosine similarity (the ``sim`` function of
Definition 1), L2 normalization, layer normalization, dropout and GELU.
"""

from __future__ import annotations

import numpy as np

from .init import SeedLike, rng_from
from .tensor import Tensor, as_tensor

__all__ = [
    "softmax", "log_softmax", "cross_entropy", "l2_normalize",
    "cosine_similarity_matrix", "layer_norm", "dropout", "gelu", "relu",
]

_EPS = 1e-8


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between row logits and integer class targets."""
    logp = log_softmax(logits, axis=-1)
    rows = np.arange(len(targets))
    picked = logp[rows, np.asarray(targets)]
    return -picked.mean()


def l2_normalize(x: Tensor, axis: int = -1) -> Tensor:
    """Project rows of ``x`` onto the unit sphere (safe at zero)."""
    x = as_tensor(x)
    norm = ((x * x).sum(axis=axis, keepdims=True) + _EPS).sqrt()
    return x / norm


def cosine_similarity_matrix(a: Tensor, b: Tensor) -> Tensor:
    """All-pairs cosine similarity: rows of ``a`` against rows of ``b``.

    This is the similarity function ``sim`` of Definition 1 in the paper,
    vectorized over candidate pairs.  Returns shape ``(len(a), len(b))``.
    """
    return l2_normalize(a) @ l2_normalize(b).transpose()


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis with affine parameters."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=-1, keepdims=True)
    normed = centered / (var + eps).sqrt()
    return normed * weight + bias


def dropout(x: Tensor, rate: float, rng: SeedLike = None, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or ``rate == 0``."""
    if not training or rate <= 0.0:
        return x
    rng = rng_from(rng)
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float32) / keep
    return x * Tensor(mask)


def gelu(x: Tensor) -> Tensor:
    """Tanh approximation of the Gaussian error linear unit."""
    inner = 0.7978845608028654 * (x + 0.044715 * (x * x * x))
    return 0.5 * x * (1.0 + inner.tanh())


def relu(x: Tensor) -> Tensor:
    return as_tensor(x).relu()
