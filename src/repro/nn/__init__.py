"""Deep-learning substrate: numpy autodiff, layers, optimizers, memory.

This package replaces the PyTorch dependency of the original CrossEM
implementation with a self-contained CPU engine.  See ``DESIGN.md`` for
the substitution rationale.
"""

from . import functional
from .attention import (CrossAttention, MultiHeadSelfAttention, TransformerBlock,
                        TransformerEncoder, sinusoidal_positions)
from .init import (kaiming_normal, normal, ones, rng_from, xavier_uniform, zeros)
from .layers import (MLP, Dropout, Embedding, LayerNorm, Linear, Module,
                     Parameter, Sequential)
from .memory import MemoryTracker
from .optim import SGD, Adam, AdamW, clip_grad_norm
from .tensor import Tensor, as_tensor, concat, is_grad_enabled, no_grad, stack

__all__ = [
    "functional", "Tensor", "as_tensor", "concat", "stack", "no_grad",
    "is_grad_enabled", "Parameter", "Module", "Linear", "Embedding",
    "LayerNorm", "Dropout", "Sequential", "MLP", "MultiHeadSelfAttention",
    "CrossAttention", "TransformerBlock", "TransformerEncoder",
    "sinusoidal_positions", "SGD", "Adam", "AdamW", "clip_grad_norm",
    "MemoryTracker", "rng_from", "xavier_uniform", "kaiming_normal",
    "normal", "zeros", "ones",
]
