"""Transformer components: multi-head attention, blocks and encoders.

These are the building blocks for the CLIP text tower (12-layer
transformer in the paper, miniaturized here), the ViT-style image tower,
and the fusion-encoder baselines (VisualBERT/ViLBERT-style).  Shapes
follow the convention ``(batch, sequence, dim)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .init import SeedLike, rng_from
from .layers import Dropout, LayerNorm, Linear, Module
from .tensor import Tensor

__all__ = ["MultiHeadSelfAttention", "CrossAttention", "TransformerBlock",
           "TransformerEncoder", "sinusoidal_positions"]


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Classic fixed sinusoidal positional encodings, shape (length, dim)."""
    positions = np.arange(length)[:, None]
    dims = np.arange(dim)[None, :]
    angles = positions / np.power(10000.0, (2 * (dims // 2)) / dim)
    encoding = np.zeros((length, dim), dtype=np.float32)
    encoding[:, 0::2] = np.sin(angles[:, 0::2])
    encoding[:, 1::2] = np.cos(angles[:, 1::2])
    return encoding


def _attend(q: Tensor, k: Tensor, v: Tensor, num_heads: int,
            mask: Optional[np.ndarray]) -> Tensor:
    """Scaled dot-product attention with head splitting.

    ``q`` has shape (B, Lq, D); ``k``/``v`` have shape (B, Lk, D).
    ``mask`` is a boolean array of shape (B, Lk) marking *valid* keys.
    """
    batch, len_q, dim = q.shape
    len_k = k.shape[1]
    head_dim = dim // num_heads

    def split(x: Tensor, length: int) -> Tensor:
        return x.reshape(batch, length, num_heads, head_dim).transpose(0, 2, 1, 3)

    qh, kh, vh = split(q, len_q), split(k, len_k), split(v, len_k)
    scores = (qh @ kh.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(head_dim))
    if mask is not None:
        bias = np.where(mask[:, None, None, :], 0.0, -1e9).astype(np.float32)
        scores = scores + Tensor(bias)
    weights = F.softmax(scores, axis=-1)
    mixed = weights @ vh
    return mixed.transpose(0, 2, 1, 3).reshape(batch, len_q, dim)


class MultiHeadSelfAttention(Module):
    """Standard multi-head self-attention with a key-padding mask."""

    def __init__(self, dim: int, num_heads: int, rng: SeedLike = None) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng_from(rng)
        self.num_heads = num_heads
        self.query = Linear(dim, dim, rng=rng)
        self.key = Linear(dim, dim, rng=rng)
        self.value = Linear(dim, dim, rng=rng)
        self.out = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        mixed = _attend(self.query(x), self.key(x), self.value(x),
                        self.num_heads, mask)
        return self.out(mixed)


class CrossAttention(Module):
    """Attention from a query sequence onto a separate context sequence.

    Used by the ViLBERT-style two-stream baseline (co-attention) and the
    IMRAM-style recurrent matching baseline.
    """

    def __init__(self, dim: int, num_heads: int, rng: SeedLike = None) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng_from(rng)
        self.num_heads = num_heads
        self.query = Linear(dim, dim, rng=rng)
        self.key = Linear(dim, dim, rng=rng)
        self.value = Linear(dim, dim, rng=rng)
        self.out = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor, context: Tensor,
                context_mask: Optional[np.ndarray] = None) -> Tensor:
        mixed = _attend(self.query(x), self.key(context), self.value(context),
                        self.num_heads, context_mask)
        return self.out(mixed)


class TransformerBlock(Module):
    """Pre-norm transformer block: attention + GELU MLP, both residual."""

    def __init__(self, dim: int, num_heads: int, mlp_ratio: float = 2.0,
                 dropout: float = 0.0, rng: SeedLike = None) -> None:
        super().__init__()
        rng = rng_from(rng)
        hidden = int(dim * mlp_ratio)
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.fc1 = Linear(dim, hidden, rng=rng)
        self.fc2 = Linear(hidden, dim, rng=rng)
        self.drop = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        x = x + self.attn(self.norm1(x), mask)
        x = x + self.drop(self.fc2(F.gelu(self.fc1(self.norm2(x)))))
        return x


class TransformerEncoder(Module):
    """A stack of :class:`TransformerBlock` with a final layer norm."""

    def __init__(self, dim: int, depth: int, num_heads: int,
                 mlp_ratio: float = 2.0, dropout: float = 0.0,
                 rng: SeedLike = None) -> None:
        super().__init__()
        rng = rng_from(rng)
        self.blocks = [TransformerBlock(dim, num_heads, mlp_ratio, dropout, rng)
                       for _ in range(depth)]
        self.final_norm = LayerNorm(dim)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        for block in self.blocks:
            x = block(x, mask)
        return self.final_norm(x)
