"""Neural-network module system: parameters, containers and basic layers.

A thin torch-like layer on top of the autodiff engine.  A
:class:`Module` discovers its parameters by walking its attributes, so
layers compose naturally; :meth:`Module.freeze` detaches a subtree from
training, which is how the reproduction freezes the CLIP image encoder
exactly as the paper does (§II-C).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from . import functional as F
from .init import SeedLike, normal, rng_from, xavier_uniform, zeros
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Linear", "Embedding", "LayerNorm", "Dropout",
           "Sequential", "MLP"]


class Parameter(Tensor):
    """A tensor that is updated by optimizers (``requires_grad=True``)."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and ``Module`` attributes in
    ``__init__`` and implement :meth:`forward`.  Instances are callable.
    """

    def __init__(self) -> None:
        self.training = True

    # -- forward ----------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- parameter discovery ------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all trainable parameters in this module subtree."""
        seen: set[int] = set()
        for param in self._walk_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param

    def _walk_parameters(self) -> Iterator[Parameter]:
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                if value.requires_grad:
                    yield value
            elif isinstance(value, Module):
                yield from value._walk_parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item._walk_parameters()
                    elif isinstance(item, Parameter) and item.requires_grad:
                        yield item

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all submodules, depth first."""
        yield self
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- training state ------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def freeze(self) -> "Module":
        """Permanently exclude this subtree's parameters from training."""
        for module in self.modules():
            for value in module.__dict__.values():
                if isinstance(value, Parameter):
                    value.requires_grad = False
                elif isinstance(value, (list, tuple)):
                    for item in value:
                        if isinstance(item, Parameter):
                            item.requires_grad = False
        return self

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- (de)serialization -----------------------------------------------------
    def state_dict(self) -> dict:
        """Flat name → array mapping of every parameter (trainable or not)."""
        state: dict[str, np.ndarray] = {}
        self._collect_state("", state)
        return state

    def _collect_state(self, prefix: str, state: dict) -> None:
        for name, value in self.__dict__.items():
            key = f"{prefix}{name}"
            if isinstance(value, Parameter):
                state[key] = value.data.copy()
            elif isinstance(value, Module):
                value._collect_state(key + ".", state)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._collect_state(f"{key}.{i}.", state)
                    elif isinstance(item, Parameter):
                        state[f"{key}.{i}"] = item.data.copy()

    def load_state_dict(self, state: dict) -> None:
        """Copy arrays from ``state`` into matching parameters in place."""
        own = {}
        self._collect_params("", own)
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for key, param in own.items():
            array = np.asarray(state[key], dtype=np.float32)
            if array.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {key}: {array.shape} vs {param.data.shape}")
            param.data = array.copy()

    def _collect_params(self, prefix: str, out: dict) -> None:
        for name, value in self.__dict__.items():
            key = f"{prefix}{name}"
            if isinstance(value, Parameter):
                out[key] = value
            elif isinstance(value, Module):
                value._collect_params(key + ".", out)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._collect_params(f"{key}.{i}.", out)
                    elif isinstance(item, Parameter):
                        out[f"{key}.{i}"] = item


class Linear(Module):
    """Affine map ``y = x W + b`` with Xavier-initialized weights."""

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True, rng: SeedLike = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to learned vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: SeedLike = None) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(normal((num_embeddings, dim), rng))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if ids.min(initial=0) < 0 or (ids.size and ids.max() >= self.num_embeddings):
            raise IndexError("embedding id out of range")
        return self.weight[ids]


class LayerNorm(Module):
    """Layer normalization over the final feature axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.weight = Parameter(np.ones(dim, dtype=np.float32))
        self.bias = Parameter(zeros((dim,)))
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, self.eps)


class Dropout(Module):
    """Inverted dropout with its own generator for reproducibility."""

    def __init__(self, rate: float, rng: SeedLike = None) -> None:
        super().__init__()
        self.rate = rate
        self._rng = rng_from(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self._rng, training=self.training)


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class _ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between layers."""

    def __init__(self, sizes: Iterable[int], rng: SeedLike = None,
                 bias: bool = True) -> None:
        super().__init__()
        rng = rng_from(rng)
        sizes = list(sizes)
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        layers: list[Module] = []
        for i, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(n_in, n_out, bias=bias, rng=rng))
            if i < len(sizes) - 2:
                layers.append(_ReLU())
        self.layers = layers

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
