"""Accounting of tensor memory, standing in for GPU memory monitoring.

The paper reports the maximum GPU memory occupied while training each
method (measured with NVIDIA Nsight).  This substrate has no GPU, so we
meter the same quantity at the level our engine controls: the total bytes
of live ``Tensor`` buffers (parameters, activations and gradients).  The
tracker observes every allocation made while a :class:`MemoryTracker`
context is active and records the high-water mark, which preserves the
paper's *relative* comparisons — a method that materializes more candidate
pairs or larger activation graphs reports a higher peak.
"""

from __future__ import annotations

import weakref

__all__ = ["MemoryTracker", "current_tracker"]

_ACTIVE_TRACKERS: list["MemoryTracker"] = []


class MemoryTracker:
    """Record the peak number of live tensor bytes inside a ``with`` block.

    Usage::

        tracker = MemoryTracker()
        with tracker:
            model.train_epoch(...)
        print(tracker.peak_bytes, tracker.peak_gb)

    Trackers nest; every active tracker observes every allocation.  Buffers
    are released from the ledger when the owning array is garbage
    collected, so the peak reflects simultaneous residency rather than
    cumulative traffic.
    """

    def __init__(self) -> None:
        self.current_bytes = 0
        self.peak_bytes = 0
        self._finalizers: list[weakref.finalize] = []

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "MemoryTracker":
        _ACTIVE_TRACKERS.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _ACTIVE_TRACKERS.remove(self)

    # -- ledger ----------------------------------------------------------
    def _on_alloc(self, owner: object, nbytes: int) -> None:
        self.current_bytes += nbytes
        if self.current_bytes > self.peak_bytes:
            self.peak_bytes = self.current_bytes
        self._finalizers.append(weakref.finalize(owner, self._on_free, nbytes))

    def _on_free(self, nbytes: int) -> None:
        self.current_bytes -= nbytes

    # -- reporting --------------------------------------------------------
    @property
    def peak_mb(self) -> float:
        """Peak live bytes expressed in mebibytes."""
        return self.peak_bytes / (1024.0**2)

    @property
    def peak_gb(self) -> float:
        """Peak live bytes expressed in gibibytes."""
        return self.peak_bytes / (1024.0**3)


def current_tracker() -> list["MemoryTracker"]:
    """Return the stack of active trackers (innermost last)."""
    return _ACTIVE_TRACKERS


def observe_allocation(owner: object, nbytes: int) -> None:
    """Report a fresh buffer of ``nbytes`` owned by ``owner`` to every
    active tracker.  Called by the :class:`~repro.nn.tensor.Tensor`
    constructor; cheap no-op when no tracker is active."""
    for tracker in _ACTIVE_TRACKERS:
        tracker._on_alloc(owner, nbytes)
