"""Parameter initialization and seeded random-number helpers.

All stochastic code in this repository takes either an explicit
``numpy.random.Generator`` or an integer seed, so runs are reproducible
end to end.  :func:`rng_from` is the single coercion point.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["rng_from", "xavier_uniform", "kaiming_normal", "normal", "zeros", "ones"]

SeedLike = Union[None, int, np.random.Generator]


def rng_from(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` to a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministic generator, an ``int`` a
    seeded one, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def xavier_uniform(shape: tuple, rng: SeedLike = None, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization for weight matrices."""
    rng = rng_from(rng)
    fan_in = shape[0] if len(shape) >= 1 else 1
    fan_out = shape[1] if len(shape) >= 2 else shape[0]
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def kaiming_normal(shape: tuple, rng: SeedLike = None) -> np.ndarray:
    """He initialization, appropriate before ReLU nonlinearities."""
    rng = rng_from(rng)
    fan_in = shape[0] if len(shape) >= 1 else 1
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def normal(shape: tuple, rng: SeedLike = None, std: float = 0.02) -> np.ndarray:
    """Small-std normal initialization (transformer embedding default)."""
    rng = rng_from(rng)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
