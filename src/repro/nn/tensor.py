"""Reverse-mode automatic differentiation over numpy arrays.

This module is the lowest layer of the deep-learning substrate that the
CrossEM reproduction is built on (the paper uses PyTorch; this engine
provides the same gradient semantics on CPU).  A :class:`Tensor` wraps a
``numpy.ndarray`` and records the operations applied to it; calling
:meth:`Tensor.backward` on a scalar result propagates gradients to every
tensor created with ``requires_grad=True``.

Design notes
------------
* Arrays are stored as ``float32`` by default, matching the precision the
  paper's models train in and keeping the memory meter realistic.
* Broadcasting follows numpy semantics; gradients of broadcast operands
  are reduced back to the operand shape by :func:`_unbroadcast`.
* The graph is a DAG of ``Tensor`` nodes; ``backward`` runs a topological
  sort and accumulates gradients with ``+=`` so shared subexpressions are
  handled correctly.
* ``no_grad`` disables graph recording, used for frozen encoders (the
  paper freezes the CLIP image tower and contrastive head).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from .memory import observe_allocation

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor", "concat", "stack"]

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager that disables autograd graph construction."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  Floating inputs are stored as
        ``float32`` unless they already carry another float dtype.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "__weakref__")

    def __init__(self, data: ArrayLike, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind in "iub":
            arr = arr.astype(np.float32)
        elif arr.dtype == np.float64:
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()
        observe_allocation(self, arr.nbytes)

    # -- construction helpers --------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # -- basic protocol ----------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy); detached from the graph."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(as_tensor(other).__neg__())

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        out_data = a @ b

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            if a.ndim == 1 and b.ndim == 1:
                grad_a, grad_b = grad * b, grad * a
            elif a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                grad_a = grad[..., None, :] @ np.swapaxes(b, -1, -2)
                grad_a = grad_a.reshape(grad.shape[:-1] + (a.shape[0],))
                grad_b = a[:, None] * grad[..., None, :]
            elif b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                grad_a = grad[..., :, None] * b
                grad_b = np.swapaxes(a, -1, -2) @ grad[..., None]
                grad_b = grad_b.reshape(grad.shape[:-1] + (b.shape[0],))
            else:
                grad_a = grad @ np.swapaxes(b, -1, -2)
                grad_b = np.swapaxes(a, -1, -2) @ grad
            if self.requires_grad:
                self._accumulate(_unbroadcast(np.asarray(grad_a), a.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(np.asarray(grad_b), b.shape))

        return Tensor._make(out_data, (self, other), backward)

    # -- elementwise nonlinearities -----------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        return self.__pow__(0.5)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # -- reductions -----------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            out_full = self.data.max(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            mask = self.data == out_full
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(np.broadcast_to(g, self.shape) * mask / counts)

        return Tensor._make(out_data, (self,), backward)

    # -- shape manipulation ------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(old_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # -- graph traversal -------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=self.data.dtype)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones, which requires this tensor to be a
        scalar (the usual loss case).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar")
            grad = np.ones_like(self.data)
        # Topological order via iterative DFS.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))
        # Seed and propagate in reverse topological order.
        grads: dict[int, np.ndarray] = {id(self): np.asarray(grad, dtype=self.data.dtype)}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                node._accumulate(node_grad)
            if node._backward is not None:
                # The op's closure accumulates into parents' .grad for leaf
                # tensors; for interior nodes we stage gradients in `grads`.
                _route_through(node, node_grad, grads)

    def detach_graph(self) -> None:
        """Drop references to parents so the graph can be collected."""
        self._parents = ()
        self._backward = None


def _route_through(node: "Tensor", node_grad: np.ndarray,
                   grads: dict[int, np.ndarray]) -> None:
    """Invoke ``node``'s backward closure, then move any gradient it
    deposited on *interior* parents into the staging dict so propagation
    continues; leaf tensors keep their accumulated ``.grad``."""
    node._backward(node_grad)
    for parent in node._parents:
        if parent._backward is not None and parent.grad is not None:
            existing = grads.get(id(parent))
            grads[id(parent)] = parent.grad if existing is None else existing + parent.grad
            parent.grad = None


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        parts = np.split(grad, len(tensors), axis=axis)
        for tensor, part in zip(tensors, parts):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(part, axis=axis))

    return Tensor._make(out_data, tensors, backward)
