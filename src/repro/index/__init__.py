"""Sublinear retrieval: IVF-PQ ANN index + mmap'd embedding store.

The matching hot path is a max-inner-product search over the frozen
image-tower embeddings.  This package replaces the brute-force GEMM
with a two-stage approximate search whose *output* stays exact:

* :mod:`repro.index.topk` — deterministic ``(-score, id)`` top-k, the
  total order every retrieval path (brute, ADC, re-rank) agrees on.
* :mod:`repro.index.ivfpq` — the IVF coarse quantizer + product-
  quantized ADC scan + exact full-precision re-rank, with an
  ``nprobe`` knob and an exhaustive (bit-identical-to-brute) fallback.
* :mod:`repro.index.store` — the ``REPROIX1`` checksummed shard
  container and the float32/int8 embedding store it memory-maps, so a
  repository larger than RAM opens lazily and only shortlist rows are
  ever read.
"""

from .ivfpq import (INDEX_KIND, IVFPQConfig, IVFPQIndex, SearchResult,
                    build_ivfpq, load_index, save_index)
from .store import (EmbeddingStore, IndexShardCorruptError,
                    MemoryBudgetExceeded, ShardReader, dequantize_int8,
                    quantize_int8, write_shard)
from .topk import deterministic_topk, deterministic_topk_rows

__all__ = [
    "INDEX_KIND", "IVFPQConfig", "IVFPQIndex", "SearchResult",
    "build_ivfpq", "load_index", "save_index",
    "EmbeddingStore", "IndexShardCorruptError", "MemoryBudgetExceeded",
    "ShardReader", "dequantize_int8", "quantize_int8", "write_shard",
    "deterministic_topk", "deterministic_topk_rows",
]
