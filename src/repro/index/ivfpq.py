"""IVF-PQ — the numpy-native sublinear retrieval index.

CrossEM's matching step is a max-inner-product search: every query (a
prompted text embedding) against every frozen image-tower embedding.
Brute force is one O(|V|·|I|·d) GEMM — exact, and fatal at repository
scale.  This module trades a *bounded, measured* amount of recall for
an asymptotic win, in the classic two-stage shape:

1. **IVF coarse quantization** — the repository is partitioned into
   ``nlist`` cells by k-means (the vectorized
   :func:`repro.core.minibatch.kmeans`, reused as the trainer).  A
   query scores the ``nlist`` centroids and probes only the ``nprobe``
   best cells: the scan touches ``~ nprobe/nlist`` of the data.
2. **PQ + ADC scan** — within cells, vectors are stored as ``pq_m``
   uint8 codes over per-subspace codebooks trained on coarse
   *residuals*.  A query builds one ``(pq_m, 2^pq_bits)`` lookup table
   of partial dot products; scoring a candidate is then ``pq_m`` table
   lookups instead of a ``d``-wide dot — the asymmetric-distance
   (ADC) estimate ``q·c_cell + Σ_j LUT[j, code_j]``, which is exact in
   the query and quantized only in the stored vector.

The ADC scores build a shortlist (``refine × k`` candidates) that is
**re-ranked exactly** against the full-precision embeddings, with ties
broken by ``(-score, vector id)`` via
:func:`~repro.index.topk.deterministic_topk`.  The exactness boundary
is therefore clean: *which* candidates reach the shortlist is
approximate; the scores and order of everything returned are exact.
With ``nprobe >= nlist`` the index skips ADC entirely and scores every
vector with the same GEMM brute force uses — bit-identical to the
oracle, which is what makes ``recall@k`` measurable at all (see
DESIGN.md §12).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.minibatch import kmeans
from ..nn.init import rng_from
from ..obs import get_logger, registry, span
from ..obs.trace import add_trace_event
from .store import EmbeddingStore, ShardReader, write_shard
from .topk import deterministic_topk

__all__ = ["IVFPQConfig", "IVFPQIndex", "SearchResult", "build_ivfpq",
           "save_index", "load_index"]

_log = get_logger("repro.index.ivfpq")

INDEX_KIND = "ivfpq"


@dataclasses.dataclass
class IVFPQConfig:
    """Build/search knobs of the IVF-PQ index.

    ``nlist`` cells, ``nprobe`` probed per query; ``pq_m`` subspaces of
    ``2**pq_bits`` codewords each (``pq_bits <= 8`` so codes stay
    uint8); ``refine * k`` ADC candidates survive into the exact
    re-rank.  ``train_sample`` caps the vectors the quantizers are
    trained on so builds stay near-linear on huge repositories.
    """

    nlist: int = 64
    nprobe: int = 8
    pq_m: int = 8
    pq_bits: int = 8
    refine: int = 8
    kmeans_iterations: int = 15
    train_sample: int = 16384
    seed: int = 0

    def __post_init__(self) -> None:
        if self.nlist < 1:
            raise ValueError("nlist must be at least 1")
        if self.nprobe < 1:
            raise ValueError("nprobe must be at least 1")
        if self.pq_m < 1:
            raise ValueError("pq_m must be at least 1")
        if not 1 <= self.pq_bits <= 8:
            raise ValueError("pq_bits must be in [1, 8] (uint8 codes)")
        if self.refine < 1:
            raise ValueError("refine must be at least 1")
        if self.train_sample < 2:
            raise ValueError("train_sample must be at least 2")


@dataclasses.dataclass
class SearchResult:
    """Batched search output.  ``ids``/``scores`` are ``(nq, k)`` with
    ``-1`` ids (and ``-inf`` scores) padding queries that found fewer
    than ``k`` vectors.  The remaining fields are per-query probe
    telemetry plus the batch's re-rank agreement proxy."""

    ids: np.ndarray
    scores: np.ndarray
    probes: np.ndarray
    candidates: np.ndarray
    shortlists: np.ndarray
    #: fraction of the final top-k the raw ADC ordering already had —
    #: a cheap online proxy for shortlist adequacy (1.0 means the
    #: re-rank only confirmed the ADC order)
    recall_proxy: float
    exhaustive: bool = False


def _centroids_from_labels(points: np.ndarray,
                           labels: np.ndarray) -> np.ndarray:
    """Per-cluster means in float32 (every label is populated — the
    shared kmeans reseeds empty clusters during training)."""
    k = int(labels.max()) + 1 if len(labels) else 0
    centroids = np.zeros((k, points.shape[1]), dtype=np.float64)
    counts = np.bincount(labels, minlength=k).astype(np.float64)
    np.add.at(centroids, labels, points.astype(np.float64))
    centroids /= np.maximum(counts, 1.0)[:, None]
    return centroids.astype(np.float32)


def _assign_nearest(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid labels via the ``‖x‖²+‖c‖²−2x·cᵀ`` expansion
    (ties toward the lower centroid id, matching argmin)."""
    dots = points @ centroids.T
    c_norms = (centroids.astype(np.float64) ** 2).sum(axis=1)
    p_norms = (points.astype(np.float64) ** 2).sum(axis=1)
    return (p_norms[:, None] + c_norms[None, :]
            - 2.0 * dots).argmin(axis=1).astype(np.int64)


def _pad_subspaces(matrix: np.ndarray, padded_dim: int) -> np.ndarray:
    if matrix.shape[1] == padded_dim:
        return matrix
    out = np.zeros((matrix.shape[0], padded_dim), dtype=np.float32)
    out[:, :matrix.shape[1]] = matrix
    return out


def build_ivfpq(embeddings: np.ndarray,
                config: Optional[IVFPQConfig] = None) -> "IVFPQIndex":
    """Train coarse + product quantizers on ``embeddings`` and encode
    every vector into its inverted list.  Deterministic under
    ``config.seed``."""
    config = config or IVFPQConfig()
    embeddings = np.ascontiguousarray(embeddings, dtype=np.float32)
    if embeddings.ndim != 2 or len(embeddings) < 2:
        raise ValueError("index needs a (n >= 2, dim) embedding matrix")
    n, dim = embeddings.shape
    rng = rng_from(config.seed)
    reg = registry()
    with span("index/build"):
        # -- training sample (build stays near-linear on huge inputs)
        if n > config.train_sample:
            sample_rows = np.sort(rng.choice(n, size=config.train_sample,
                                             replace=False))
            sample = embeddings[sample_rows]
        else:
            sample = embeddings
        # -- coarse quantizer: the shared vectorized k-means
        with span("index/build_coarse"):
            nlist = min(config.nlist, len(sample))
            labels = kmeans(sample, nlist, rng=rng,
                            iterations=config.kmeans_iterations)
            centroids = _centroids_from_labels(sample, labels)
            assignment = _assign_nearest(embeddings, centroids)
        # -- product quantizer over coarse residuals
        with span("index/build_pq"):
            pq_m = min(config.pq_m, dim)
            sub_dim = -(-dim // pq_m)  # ceil: dim zero-padded to m*sub
            padded_dim = sub_dim * pq_m
            residuals = _pad_subspaces(
                embeddings - centroids[assignment], padded_dim)
            sample_residuals = residuals[sample_rows] \
                if n > config.train_sample else residuals
            ksub = min(2 ** config.pq_bits, len(sample_residuals))
            codebooks = np.zeros((pq_m, ksub, sub_dim), dtype=np.float32)
            codes = np.zeros((n, pq_m), dtype=np.uint8)
            for j in range(pq_m):
                lo, hi = j * sub_dim, (j + 1) * sub_dim
                sub_labels = kmeans(sample_residuals[:, lo:hi], ksub,
                                    rng=rng,
                                    iterations=config.kmeans_iterations)
                book = _centroids_from_labels(sample_residuals[:, lo:hi],
                                              sub_labels)
                codebooks[j, :len(book)] = book
                # encode: argmin ‖r−c‖² == argmin (‖c‖² − 2 r·c)
                dots = residuals[:, lo:hi] @ codebooks[j].T
                c_norms = (codebooks[j].astype(np.float64) ** 2).sum(axis=1)
                codes[:, j] = (c_norms[None, :] - 2.0 * dots).argmin(axis=1)
        # -- inverted lists (CSR; ids ascending within each list)
        order = np.argsort(assignment, kind="stable")
        list_sizes = np.bincount(assignment, minlength=len(centroids))
        offsets = np.zeros(len(centroids) + 1, dtype=np.int64)
        np.cumsum(list_sizes, out=offsets[1:])
        index = IVFPQIndex(
            centroids=centroids, codebooks=codebooks,
            list_offsets=offsets, list_ids=order.astype(np.int64),
            list_codes=codes[order], embeddings=embeddings,
            nprobe=config.nprobe, refine=config.refine,
            meta={"seed": config.seed,
                  "train_sample": int(min(config.train_sample, n))})
    empties = int((list_sizes == 0).sum())
    reg.counter("index.build").inc()
    reg.gauge("index.lists.empty").set(empties)
    _log.info("ivfpq index built", vectors=n, dim=dim,
              nlist=len(centroids), pq_m=pq_m, ksub=ksub,
              empty_lists=empties)
    return index


class IVFPQIndex:
    """A built IVF-PQ index plus its exact re-rank source.

    ``embeddings`` is either an in-memory ``(count, dim)`` float32
    matrix (fresh build) or an :class:`~repro.index.store.EmbeddingStore`
    (loaded shard) — re-rank only ever *takes* shortlist rows from it,
    so a memory-mapped store never gets materialized.
    """

    def __init__(self, *, centroids: np.ndarray, codebooks: np.ndarray,
                 list_offsets: np.ndarray, list_ids: np.ndarray,
                 list_codes: np.ndarray,
                 embeddings: Union[np.ndarray, EmbeddingStore],
                 nprobe: int = 8, refine: int = 8,
                 meta: Optional[dict] = None) -> None:
        self.centroids = np.asarray(centroids, dtype=np.float32)
        self.codebooks = np.asarray(codebooks, dtype=np.float32)
        self.list_offsets = np.asarray(list_offsets, dtype=np.int64)
        self.list_ids = list_ids
        self.list_codes = list_codes
        self._source = embeddings
        self.nprobe = int(nprobe)
        self.refine = int(refine)
        self.meta = dict(meta or {})
        if isinstance(embeddings, EmbeddingStore):
            self.count, self.dim = embeddings.count, embeddings.dim
        else:
            self.count, self.dim = embeddings.shape
        self.nlist = len(self.centroids)
        self.pq_m = self.codebooks.shape[0]
        self.sub_dim = self.codebooks.shape[2]
        self.padded_dim = self.pq_m * self.sub_dim

    # -- re-rank operand access ------------------------------------------
    def _take(self, rows: np.ndarray) -> np.ndarray:
        if isinstance(self._source, EmbeddingStore):
            return self._source.take(rows)
        return self._source[rows]

    def _full_matrix(self) -> np.ndarray:
        """The whole repository (memmap view for stores) — only the
        exhaustive fallback touches this."""
        if isinstance(self._source, EmbeddingStore):
            return self._source.full
        return self._source

    # -- search -----------------------------------------------------------
    def search(self, queries: np.ndarray, k: int,
               nprobe: Optional[int] = None,
               refine: Optional[int] = None) -> SearchResult:
        """Batched top-``k`` max-inner-product search.

        Per query: probe the ``nprobe`` best cells, ADC-scan their
        codes through the LUT, exact-re-rank the ``refine * k``
        shortlist.  ``nprobe >= nlist`` falls back to scoring every
        vector exactly with the same GEMM shape brute force uses —
        bit-identical to the oracle.
        """
        queries = np.ascontiguousarray(np.atleast_2d(queries),
                                       dtype=np.float32)
        nq = queries.shape[0]
        kk = max(0, min(k, self.count))
        nprobe = self.nprobe if nprobe is None else int(nprobe)
        refine = self.refine if refine is None else int(refine)
        reg = registry()
        if nprobe >= self.nlist:
            with span("index/search_exhaustive"):
                result = self._search_exhaustive(queries, kk)
        else:
            with span("index/search"):
                result = self._search_probed(queries, kk, nprobe, refine)
        reg.counter("index.queries").inc(nq)
        # Histograms see per-batch means: one observation per search
        # call keeps telemetry off the per-query hot path.
        if nq:
            reg.histogram("index.probe.lists").observe(
                float(result.probes.mean()))
            reg.histogram("index.probe.candidates").observe(
                float(result.candidates.mean()))
            reg.histogram("index.shortlist").observe(
                float(result.shortlists.mean()))
        reg.gauge("index.recall_proxy").set(result.recall_proxy)
        add_trace_event("index", queries=nq, k=kk,
                        probes=int(result.probes.sum()),
                        candidates=int(result.candidates.sum()),
                        shortlist=int(result.shortlists.sum()),
                        recall_proxy=round(result.recall_proxy, 4),
                        exhaustive=result.exhaustive)
        return result

    def _search_exhaustive(self, queries: np.ndarray,
                           kk: int) -> SearchResult:
        # One (nq, d) x (d, n) GEMM — the same operation (and therefore
        # the same BLAS rounding) as CrossEM.score's brute force, so
        # the returned ordering is bit-identical to the oracle's.
        scores = queries @ self._full_matrix().T
        ids = np.empty((len(queries), kk), dtype=np.int64)
        out = np.empty((len(queries), kk), dtype=np.float32)
        for q in range(len(queries)):
            top = deterministic_topk(scores[q], kk)
            ids[q], out[q] = top, scores[q][top]
        n = np.int64(self.count)
        return SearchResult(
            ids=ids, scores=out,
            probes=np.full(len(queries), self.nlist, dtype=np.int64),
            candidates=np.full(len(queries), n, dtype=np.int64),
            shortlists=np.full(len(queries), n, dtype=np.int64),
            recall_proxy=1.0, exhaustive=True)

    def _search_probed(self, queries: np.ndarray, kk: int, nprobe: int,
                       refine: int) -> SearchResult:
        nq = len(queries)
        ids = np.full((nq, kk), -1, dtype=np.int64)
        scores = np.full((nq, kk), -np.inf, dtype=np.float32)
        probes = np.zeros(nq, dtype=np.int64)
        candidates = np.zeros(nq, dtype=np.int64)
        shortlists = np.zeros(nq, dtype=np.int64)
        # The whole batch's coarse scores, probe choices, ADC LUTs and
        # candidate gathers run as a handful of large numpy ops; only
        # shortlist selection and the exact re-rank stay per-query.
        coarse = queries @ self.centroids.T            # (nq, nlist)
        # Probe choice: O(nlist) row-wise argpartition, then a stable
        # sort of just the nprobe winners so cells scan best-first.
        # (Boundary ties are pivot-resolved — harmless, they only pick
        # which cells get scanned; the *returned* ordering stays pinned
        # by the exact re-rank.)
        if nprobe < self.nlist:
            head = np.argpartition(-coarse, nprobe - 1, axis=1)[:, :nprobe]
        else:
            head = np.tile(np.arange(self.nlist), (nq, 1))
        head_scores = np.take_along_axis(coarse, head, axis=1)
        probe_order = np.take_along_axis(
            head, np.argsort(-head_scores, axis=1, kind="stable"), axis=1)
        padded = _pad_subspaces(queries, self.padded_dim)
        subqueries = padded.reshape(nq, self.pq_m, self.sub_dim)
        # (nq, m, ksub): LUT[q, j, c] = q_j · codebook_j[c] — built as
        # pq_m BLAS matmuls, then laid out query-major for the flat
        # per-candidate gather below.
        luts = np.ascontiguousarray(
            np.matmul(subqueries.transpose(1, 0, 2),
                      self.codebooks.transpose(0, 2, 1)).transpose(1, 0, 2))
        ksub = self.codebooks.shape[1]
        code_cols = np.arange(self.pq_m, dtype=np.int64) * ksub
        offsets = np.asarray(self.list_offsets)
        lo = offsets[probe_order]                      # (nq, nprobe)
        sizes = offsets[probe_order + 1] - lo
        totals = sizes.sum(axis=1)
        seg_off = np.zeros(nq + 1, dtype=np.int64)
        np.cumsum(totals, out=seg_off[1:])
        grand = int(seg_off[-1])
        # Concatenate every query's probed [lo, hi) ranges in one
        # repeat+arange gather instead of a per-list python loop.
        lens_flat = sizes.ravel()
        shifts = lo.ravel() - (np.cumsum(lens_flat) - lens_flat)
        cand_pos = np.repeat(shifts, lens_flat) + np.arange(grand)
        cand_ids = np.asarray(self.list_ids)[cand_pos]
        cand_codes = np.asarray(self.list_codes)[cand_pos]
        base = np.repeat(
            coarse[np.arange(nq)[:, None], probe_order].ravel(), lens_flat)
        query_of = np.repeat(np.arange(nq, dtype=np.int64), totals)
        # The ADC scan for every candidate of every query: pq_m
        # flat-LUT lookups each, one fused gather + row sum.
        flat_index = cand_codes + (query_of * (self.pq_m * ksub))[:, None]
        flat_index += code_cols
        adc = base + luts.ravel()[flat_index].sum(axis=1)
        probes[:] = nprobe
        candidates[:] = totals
        # Shortlist selection: one argpartition per query (the only
        # inherently per-query step — segment lengths vary), collected
        # into a PAD-padded matrix so the exact re-rank can batch.
        pad_id = np.int64(np.iinfo(np.int64).max)
        take_cap = max(refine * kk, kk)
        take_max = int(min(take_cap, totals.max())) if nq else 0
        shortmat = np.full((nq, take_max), pad_id, dtype=np.int64)
        adcmat = np.full((nq, take_max), -np.inf, dtype=np.float32)
        done = np.zeros(nq, dtype=bool)
        escalate = []
        agreement, scored = 0.0, 0
        for q in range(nq):
            seg_lo, seg_hi = int(seg_off[q]), int(seg_off[q + 1])
            if seg_hi - seg_lo < kk:
                # The probed cells held fewer candidates than k —
                # empty or skewed lists after coarse assignment.
                # Escalate this query to an exact exhaustive scan
                # rather than answer short.
                done[q] = True
                if self.count:
                    escalate.append(q)
                continue
            adc_seg = adc[seg_lo:seg_hi]
            take = min(take_cap, seg_hi - seg_lo)
            if take < len(adc_seg):
                head = (-adc_seg).argpartition(take - 1)[:take]
            else:
                head = np.arange(len(adc_seg))
            shortmat[q, :take] = cand_ids[seg_lo + head]
            adcmat[q, :take] = adc_seg[head]
            shortlists[q] = take
        if escalate:
            esc = np.asarray(escalate, dtype=np.int64)
            # A >= 2-row operand keeps BLAS on the same GEMM kernel
            # (hence the same per-row rounding) as the full brute-force
            # scan — a lone row would dispatch a GEMV variant whose
            # sums differ in the last ulp.
            rows = esc if len(esc) > 1 else np.concatenate([esc, esc])
            exact = queries[rows] @ self._full_matrix().T
            for row, q in enumerate(esc):
                top = deterministic_topk(exact[row], kk)
                ids[q, :len(top)] = top
                scores[q, :len(top)] = exact[row][top]
                probes[q] = self.nlist
                candidates[q] = shortlists[q] = self.count
                agreement += 1.0
                scored += 1
        live = ~done
        if take_max and live.any():
            # Batched exact re-rank.  Rows are sorted ascending by id
            # (PAD sorts last), so the stable argsort on -scores breaks
            # ties toward the lower vector id — the same total order
            # deterministic_topk pins, now one call for the batch.
            order_ids = np.sort(shortmat, axis=1)
            gathered = self._take(
                np.minimum(order_ids, self.count - 1).ravel()
            ).reshape(nq, take_max, self.dim)
            exact = (gathered @ queries[:, :, None])[:, :, 0]
            exact[order_ids == pad_id] = -np.inf
            top = np.argsort(-exact, axis=1, kind="stable")[:, :kk]
            sel_ids = np.take_along_axis(order_ids, top, axis=1)
            sel_scores = np.take_along_axis(exact, top, axis=1)
            valid = sel_ids != pad_id
            # sel_* can be narrower than kk when fewer than kk
            # candidates were probed; the tail keeps its -1 / -inf pad.
            width = sel_ids.shape[1]
            full_ids = np.full((nq, kk), -1, dtype=np.int64)
            full_scores = np.full((nq, kk), -np.inf, dtype=np.float32)
            full_ids[:, :width] = np.where(valid, sel_ids, -1)
            full_scores[:, :width] = np.where(valid, sel_scores, -np.inf)
            ids[live] = full_ids[live]
            scores[live] = full_scores[live]
            # Recall proxy: how much of the exact top-k the raw ADC
            # ranking already had, per live query.
            adc_order = np.argsort(-adcmat, axis=1, kind="stable")[:, :kk]
            adc_head = np.take_along_axis(shortmat, adc_order, axis=1)
            for q in np.flatnonzero(live):
                found = int(valid[q].sum())
                if found:
                    agreement += len(
                        set(adc_head[q, :found].tolist())
                        & set(ids[q, :found].tolist())) / found
                    scored += 1
        return SearchResult(
            ids=ids, scores=scores, probes=probes, candidates=candidates,
            shortlists=shortlists,
            recall_proxy=agreement / scored if scored else 1.0)

    # -- introspection -----------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Occupancy and shape stats (the ``repro index stats`` body)."""
        sizes = np.diff(self.list_offsets)
        return {
            "kind": INDEX_KIND,
            "vectors": int(self.count),
            "dim": int(self.dim),
            "nlist": int(self.nlist),
            "nprobe": int(self.nprobe),
            "pq_m": int(self.pq_m),
            "pq_bits_used": int(np.ceil(np.log2(
                max(2, self.codebooks.shape[1])))),
            "ksub": int(self.codebooks.shape[1]),
            "refine": int(self.refine),
            "empty_lists": int((sizes == 0).sum()),
            "list_size_min": int(sizes.min()) if len(sizes) else 0,
            "list_size_mean": float(sizes.mean()) if len(sizes) else 0.0,
            "list_size_max": int(sizes.max()) if len(sizes) else 0,
            "code_bytes": int(np.asarray(self.list_codes).nbytes),
        }


# -- persistence -------------------------------------------------------------
_S_CENTROIDS = "coarse.centroids"
_S_CODEBOOKS = "pq.codebooks"
_S_OFFSETS = "lists.offsets"
_S_IDS = "lists.ids"
_S_CODES = "lists.codes"


def save_index(path, index: IVFPQIndex, meta: Optional[dict] = None):
    """Persist ``index`` (structure + full-precision and int8 embedding
    store) as one REPROIX1 shard; full-verifies the bytes after the
    atomic publish and returns the path."""
    embeddings = np.asarray(index._take(np.arange(index.count)),
                            dtype=np.float32)
    sections = {
        _S_CENTROIDS: index.centroids,
        _S_CODEBOOKS: index.codebooks,
        _S_OFFSETS: index.list_offsets,
        _S_IDS: np.asarray(index.list_ids, dtype=np.int64),
        _S_CODES: np.asarray(index.list_codes, dtype=np.uint8),
    }
    sections.update(EmbeddingStore.sections_for(embeddings))
    shard_meta = {"kind": INDEX_KIND, "count": index.count,
                  "dim": index.dim, "nlist": index.nlist,
                  "pq_m": index.pq_m, "nprobe": index.nprobe,
                  "refine": index.refine}
    shard_meta.update(index.meta)
    shard_meta.update(meta or {})
    written = write_shard(path, sections, shard_meta)
    # Re-open with a streamed digest check: the shard is an artifact
    # other processes will trust, so pay for full verification exactly
    # once, at publish time.
    ShardReader(written, verify="full")
    return written


def load_index(path, *, verify: str = "lazy",
               memory_budget_bytes: Optional[int] = None,
               nprobe: Optional[int] = None) -> IVFPQIndex:
    """Open a REPROIX1 index shard lazily: structure sections are
    memory-mapped, the embedding store only ever serves shortlist rows
    (or budget-guarded materializations).  ``nprobe`` overrides the
    persisted default."""
    reader = ShardReader(path, verify=verify)
    if reader.meta.get("kind") != INDEX_KIND:
        from .store import IndexShardCorruptError

        raise IndexShardCorruptError(
            f"shard {path} is not an {INDEX_KIND} index "
            f"(kind={reader.meta.get('kind')!r})")
    store = EmbeddingStore(reader, memory_budget_bytes=memory_budget_bytes)
    index = IVFPQIndex(
        centroids=np.asarray(reader.section(_S_CENTROIDS)),
        codebooks=np.asarray(reader.section(_S_CODEBOOKS)),
        list_offsets=np.asarray(reader.section(_S_OFFSETS)),
        list_ids=reader.section(_S_IDS),
        list_codes=reader.section(_S_CODES),
        embeddings=store,
        nprobe=int(nprobe if nprobe is not None
                   else reader.meta.get("nprobe", 8)),
        refine=int(reader.meta.get("refine", 8)),
        meta=reader.meta)
    registry().counter("index.load").inc()
    return index
