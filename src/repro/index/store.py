"""REPROIX1 — the memory-mapped, checksummed index shard container.

One shard file holds named numpy sections (coarse centroids, PQ
codebooks, inverted lists, the full-precision and int8-compressed
embedding matrices) in a layout a reader can map lazily::

    MAGIC (8 bytes) | header length (8-byte LE) | header JSON | payload

The header records the schema version, the caller's metadata, and for
every section its byte offset (64-byte aligned), dtype, shape and
SHA-256 digest.  The payload is the raw section bytes — *not* an npz —
so a reader can hand out ``np.memmap`` views straight into the file:
opening a shard reads only the header, and scoring a shortlist touches
only those vectors' pages.  That is what lets a repository larger than
RAM (or than the configured memory budget) be served without ever
loading it fully.

Integrity follows the REPROCK1 checkpoint pattern with one twist:
because a full-digest check would defeat lazy opening, verification is
tiered.  ``verify="lazy"`` (the serving default) checks magic, schema,
header well-formedness and that the file length matches the header's
payload length — every truncation and torn write is caught for free.
``verify="full"`` additionally streams each section through SHA-256 in
bounded chunks (never materializing a section), catching bit rot; the
build path and ``repro index stats --verify`` use it.  All damage is
reported as :class:`IndexShardCorruptError`, a
:class:`~repro.iosafe.CorruptArtifactError`, so the fault-handling
callers already have (quarantine + typed errors) applies unchanged.

Writes go through :func:`repro.iosafe.atomic_write_bytes`, so a crash
mid-build never leaves a half-written shard at the final path.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..iosafe import CorruptArtifactError, atomic_write_bytes, retry_io
from ..obs import get_logger, registry, span

__all__ = ["SHARD_MAGIC", "SHARD_SCHEMA_VERSION", "IndexShardCorruptError",
           "MemoryBudgetExceeded", "write_shard", "ShardReader",
           "EmbeddingStore", "quantize_int8", "dequantize_int8"]

_log = get_logger("repro.index.store")

SHARD_MAGIC = b"REPROIX1"
SHARD_SCHEMA_VERSION = 1

_HEADER_PREFIX = len(SHARD_MAGIC) + 8
#: a header larger than this is certainly garbage length bytes
_MAX_HEADER_BYTES = 64 * 1024 * 1024
#: section payloads start on this alignment (page-friendly mmap slices)
_ALIGN = 64
#: streaming digest chunk — bounds full-verify memory at ~4 MiB
_DIGEST_CHUNK = 4 * 1024 * 1024


class IndexShardCorruptError(CorruptArtifactError):
    """The shard's bytes fail magic/schema/length/digest validation."""


class MemoryBudgetExceeded(RuntimeError):
    """Materializing this data would exceed the configured memory
    budget; callers should stay on the memory-mapped path instead."""


def _align(offset: int) -> int:
    return int(math.ceil(offset / _ALIGN) * _ALIGN)


def write_shard(path: Union[str, Path], sections: Dict[str, np.ndarray],
                meta: Optional[dict] = None) -> Path:
    """Atomically publish ``sections`` + ``meta`` as a REPROIX1 shard.

    Every section is stored C-contiguous at a 64-byte-aligned offset
    with its own SHA-256 digest, so a reader can verify and map each
    independently.  Returns the path written.
    """
    if not sections:
        raise ValueError("a shard needs at least one section")
    entries: Dict[str, dict] = {}
    blobs: List[Tuple[int, bytes]] = []
    offset = 0
    for name in sorted(sections):
        array = np.ascontiguousarray(sections[name])
        raw = array.tobytes()
        offset = _align(offset)
        entries[name] = {
            "offset": offset,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "sha256": hashlib.sha256(raw).hexdigest(),
        }
        blobs.append((offset, raw))
        offset += len(raw)
    payload_bytes = offset
    header = json.dumps({
        "schema": SHARD_SCHEMA_VERSION,
        "payload_bytes": payload_bytes,
        "sections": entries,
        "meta": meta or {},
    }, sort_keys=True).encode()
    payload = bytearray(payload_bytes)
    for start, raw in blobs:
        payload[start:start + len(raw)] = raw
    blob = (SHARD_MAGIC + len(header).to_bytes(8, "little")
            + header + bytes(payload))
    with span("index/shard_write"):
        path = retry_io(lambda: atomic_write_bytes(path, blob),
                        name="index.shard.write")
    registry().counter("index.shard.write").inc()
    _log.debug("index shard written", path=str(path), bytes=len(blob),
               sections=len(entries))
    return path


class ShardReader:
    """Lazily opened REPROIX1 shard: header eagerly verified, sections
    handed out as read-only ``np.memmap`` views on demand.

    ``verify`` selects the integrity tier — ``"lazy"`` (structural:
    magic, schema, header JSON, exact file length) or ``"full"``
    (structural + streamed per-section SHA-256).  Both raise
    :class:`IndexShardCorruptError` on damage; lazy never reads the
    payload at all.
    """

    def __init__(self, path: Union[str, Path],
                 verify: str = "lazy") -> None:
        if verify not in ("lazy", "full"):
            raise ValueError(f"unknown verify tier {verify!r}")
        self.path = Path(path)
        self._maps: Dict[str, np.memmap] = {}
        header = retry_io(self._read_header, name="index.shard.open")
        self._sections: Dict[str, dict] = header["sections"]
        self.meta: dict = header.get("meta", {})
        self._data_start: int = header["data_start"]
        self._payload_bytes: int = header["payload_bytes"]
        if verify == "full":
            self.verify_payload()
        registry().counter("index.shard.open").inc()

    # -- header / structural validation ---------------------------------
    def _read_header(self) -> dict:
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            raise
        with open(self.path, "rb") as fh:
            prefix = fh.read(_HEADER_PREFIX)
            if len(prefix) < _HEADER_PREFIX:
                raise IndexShardCorruptError(
                    f"shard {self.path} truncated before header")
            if prefix[:len(SHARD_MAGIC)] != SHARD_MAGIC:
                raise IndexShardCorruptError(
                    f"shard {self.path} has bad magic")
            header_len = int.from_bytes(prefix[len(SHARD_MAGIC):], "little")
            if header_len <= 0 or header_len > _MAX_HEADER_BYTES or \
                    _HEADER_PREFIX + header_len > size:
                raise IndexShardCorruptError(
                    f"shard {self.path} header length out of range")
            raw_header = fh.read(header_len)
        if len(raw_header) < header_len:
            raise IndexShardCorruptError(
                f"shard {self.path} truncated inside header")
        try:
            header = json.loads(raw_header)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise IndexShardCorruptError(
                f"shard {self.path} header is not valid JSON") from exc
        if not isinstance(header, dict) or \
                not isinstance(header.get("sections"), dict):
            raise IndexShardCorruptError(
                f"shard {self.path} header missing sections")
        if header.get("schema") != SHARD_SCHEMA_VERSION:
            raise IndexShardCorruptError(
                f"unsupported shard schema {header.get('schema')!r} "
                f"(this build reads schema {SHARD_SCHEMA_VERSION})")
        data_start = _HEADER_PREFIX + header_len
        payload_bytes = header.get("payload_bytes")
        if not isinstance(payload_bytes, int) or \
                data_start + payload_bytes != size:
            raise IndexShardCorruptError(
                f"shard {self.path} length mismatch: header promises "
                f"{payload_bytes} payload bytes, file has "
                f"{size - data_start}")
        for name, entry in header["sections"].items():
            try:
                dtype = np.dtype(entry["dtype"])
                shape = tuple(int(d) for d in entry["shape"])
                offset = int(entry["offset"])
            except (KeyError, TypeError, ValueError) as exc:
                raise IndexShardCorruptError(
                    f"shard {self.path} section {name!r} entry is "
                    f"malformed") from exc
            nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
            if offset < 0 or offset + nbytes > payload_bytes:
                raise IndexShardCorruptError(
                    f"shard {self.path} section {name!r} overruns the "
                    f"payload")
        header["data_start"] = data_start
        return header

    # -- payload access --------------------------------------------------
    def section_names(self) -> List[str]:
        return sorted(self._sections)

    def section_entry(self, name: str) -> dict:
        if name not in self._sections:
            raise KeyError(f"shard {self.path} has no section {name!r}")
        return self._sections[name]

    def section_nbytes(self, name: str) -> int:
        entry = self.section_entry(name)
        dtype = np.dtype(entry["dtype"])
        return dtype.itemsize * int(np.prod(entry["shape"], dtype=np.int64))

    def section(self, name: str) -> np.ndarray:
        """A read-only ``np.memmap`` view of one section (cached); only
        the pages a caller slices are ever faulted in."""
        if name not in self._maps:
            entry = self.section_entry(name)
            self._maps[name] = np.memmap(
                self.path, mode="r", dtype=np.dtype(entry["dtype"]),
                offset=self._data_start + int(entry["offset"]),
                shape=tuple(int(d) for d in entry["shape"]))
        return self._maps[name]

    def verify_payload(self) -> None:
        """Stream every section through SHA-256 in bounded chunks;
        raises :class:`IndexShardCorruptError` on the first mismatch."""
        with span("index/shard_verify"), open(self.path, "rb") as fh:
            for name in self.section_names():
                entry = self._sections[name]
                digest = hashlib.sha256()
                fh.seek(self._data_start + int(entry["offset"]))
                remaining = self.section_nbytes(name)
                while remaining > 0:
                    chunk = fh.read(min(_DIGEST_CHUNK, remaining))
                    if not chunk:
                        raise IndexShardCorruptError(
                            f"shard {self.path} section {name!r} "
                            f"truncated mid-payload")
                    digest.update(chunk)
                    remaining -= len(chunk)
                if digest.hexdigest() != entry.get("sha256"):
                    registry().counter("index.shard.corrupt").inc()
                    raise IndexShardCorruptError(
                        f"shard {self.path} section {name!r} digest "
                        f"mismatch")

    def close(self) -> None:
        self._maps.clear()


# -- int8 embedding compression ---------------------------------------------
def quantize_int8(embeddings: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-vector int8 quantization: ``codes, scales`` with
    ``x ≈ codes * scales[:, None]``.  All-zero vectors get scale 0."""
    embeddings = np.asarray(embeddings, dtype=np.float32)
    peak = np.abs(embeddings).max(axis=1)
    scales = (peak / 127.0).astype(np.float32)
    safe = np.where(scales > 0, scales, 1.0).astype(np.float32)
    codes = np.clip(np.rint(embeddings / safe[:, None]), -127, 127)
    return codes.astype(np.int8), scales


def dequantize_int8(codes: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Inverse of :func:`quantize_int8` (lossy)."""
    return codes.astype(np.float32) * np.asarray(
        scales, dtype=np.float32)[:, None]


class EmbeddingStore:
    """The compressed, memory-mapped embedding repository.

    Holds the frozen image-tower matrix twice: full-precision float32
    (the exact re-rank operand) and int8-per-vector-scale (4x smaller,
    for budget-constrained bulk access).  Both live in one REPROIX1
    shard and are only ever sliced — :meth:`take` copies just the
    requested rows out of the map, and :meth:`materialize` refuses to
    inflate a matrix past the configured ``memory_budget_bytes``.
    """

    SECTION_FULL = "embeddings.f32"
    SECTION_INT8 = "embeddings.int8"
    SECTION_SCALES = "embeddings.int8_scales"

    def __init__(self, reader: ShardReader,
                 memory_budget_bytes: Optional[int] = None) -> None:
        self.reader = reader
        self.memory_budget_bytes = memory_budget_bytes
        entry = reader.section_entry(self.SECTION_FULL)
        self.count, self.dim = (int(entry["shape"][0]),
                                int(entry["shape"][1]))
        registry().gauge("index.store.mapped_bytes").set(
            reader.section_nbytes(self.SECTION_FULL)
            + reader.section_nbytes(self.SECTION_INT8)
            + reader.section_nbytes(self.SECTION_SCALES))

    # -- construction ----------------------------------------------------
    @staticmethod
    def sections_for(embeddings: np.ndarray) -> Dict[str, np.ndarray]:
        """The store's shard sections for ``embeddings`` (callers merge
        these with their own sections before :func:`write_shard`)."""
        embeddings = np.asarray(embeddings, dtype=np.float32)
        if embeddings.ndim != 2:
            raise ValueError("embeddings must be a 2-D matrix")
        codes, scales = quantize_int8(embeddings)
        return {EmbeddingStore.SECTION_FULL: embeddings,
                EmbeddingStore.SECTION_INT8: codes,
                EmbeddingStore.SECTION_SCALES: scales}

    @classmethod
    def create(cls, path: Union[str, Path], embeddings: np.ndarray,
               meta: Optional[dict] = None) -> Path:
        """Write a standalone embedding-store shard (full-verified)."""
        written = write_shard(path, cls.sections_for(embeddings), meta)
        ShardReader(written, verify="full")
        return written

    @classmethod
    def open(cls, path: Union[str, Path], *, verify: str = "lazy",
             memory_budget_bytes: Optional[int] = None) -> "EmbeddingStore":
        return cls(ShardReader(path, verify=verify),
                   memory_budget_bytes=memory_budget_bytes)

    # -- access ----------------------------------------------------------
    @property
    def full(self) -> np.ndarray:
        """The float32 matrix as a read-only memmap view."""
        return self.reader.section(self.SECTION_FULL)

    def take(self, rows: np.ndarray, precision: str = "full") -> np.ndarray:
        """Copy ``rows`` out of the map — the only pages touched are the
        ones those rows live on, so shortlist re-ranks stay cheap no
        matter how large the repository is."""
        rows = np.asarray(rows, dtype=np.int64)
        if precision == "full":
            return np.asarray(self.full[rows], dtype=np.float32)
        if precision == "int8":
            codes = self.reader.section(self.SECTION_INT8)[rows]
            scales = self.reader.section(self.SECTION_SCALES)[rows]
            return dequantize_int8(np.asarray(codes), np.asarray(scales))
        raise ValueError(f"unknown precision {precision!r}")

    def materialize(self, precision: str = "full") -> np.ndarray:
        """The whole matrix as an in-memory array — guarded by the
        budget: serving a repository bigger than RAM must never take
        this path by accident."""
        nbytes = self.reader.section_nbytes(
            self.SECTION_FULL if precision == "full" else self.SECTION_INT8)
        if self.memory_budget_bytes is not None and \
                nbytes > self.memory_budget_bytes:
            raise MemoryBudgetExceeded(
                f"materializing {nbytes} bytes of {precision} embeddings "
                f"exceeds the {self.memory_budget_bytes}-byte budget; use "
                f"take() on the memory-mapped store instead")
        return self.take(np.arange(self.count), precision=precision)
