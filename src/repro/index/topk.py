"""Deterministic top-k selection shared by every retrieval path.

``np.argpartition`` is the right asymptotic tool for top-k (O(n) per
row versus argsort's O(n log n)) but its choice *among tied scores at
the k-th boundary* is an implementation detail of introselect: two
paths that score the same candidates in a different memory layout (the
brute-force GEMM row versus an index shortlist) can legally return
different tied subsets.  That breaks the exactness contract the ANN
index needs — "index-backed top-k with an exhaustive probe is
bit-identical to brute force".

:func:`deterministic_topk` pins the total order to ``(-score, index)``:
highest score first, lowest index among equals.  It keeps the
argpartition O(n) selection, then widens the candidate set to *every*
element tied with the k-th value before sorting, so the returned ids
are a pure function of the scores — never of the partition's internal
pivot walk.
"""

from __future__ import annotations

import numpy as np

__all__ = ["deterministic_topk", "deterministic_topk_rows"]


def deterministic_topk(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries of 1-D ``scores``, ordered
    by ``(-score, index)``.

    Ties at the selection boundary are resolved toward the smallest
    index, so the result depends only on the score values.  ``k`` is
    clamped to ``len(scores)``; ``k <= 0`` returns an empty array.
    """
    scores = np.asarray(scores)
    n = scores.shape[0]
    if k <= 0 or n == 0:
        return np.zeros(0, dtype=np.int64)
    if k >= n:
        candidates = np.arange(n, dtype=np.int64)
    else:
        # O(n) selection first, then widen to the full tie class of the
        # k-th value so the boundary is score-determined, not pivot-
        # determined.
        rough = np.argpartition(-scores, k - 1)[:k]
        kth = scores[rough].min()
        candidates = np.flatnonzero(scores >= kth).astype(np.int64)
    order = np.lexsort((candidates, -scores[candidates]))
    return candidates[order[:min(k, n)]]


def deterministic_topk_rows(scores: np.ndarray, k: int) -> np.ndarray:
    """Row-wise :func:`deterministic_topk` over a 2-D score matrix;
    returns an ``(rows, min(k, cols))`` index array."""
    scores = np.atleast_2d(np.asarray(scores))
    kk = max(0, min(k, scores.shape[1]))
    out = np.empty((scores.shape[0], kk), dtype=np.int64)
    for row in range(scores.shape[0]):
        out[row] = deterministic_topk(scores[row], kk)
    return out
