"""Command-line interface: ``python -m repro <command>``.

Five commands cover the common workflows without writing code:

* ``stats`` — print the Table-I-style statistics of a benchmark.
* ``match`` — fit a matcher on a benchmark and report H@k / MRR.
* ``serve`` — fit a matcher, then answer match queries as a resilient
  JSON-lines service on stdin/stdout (deadlines, circuit breakers,
  load shedding, graceful degradation — README "Serving").  Every
  response carries a ``trace_id``; sampled request traces export with
  the metrics.
* ``clean`` — run the data-cleaning detectors over a benchmark's
  repository with injected corruption (demo of the future-work module).
* ``load`` — open-loop load generation against the serving layer
  (README "Load testing & SLOs"): ``load run`` drives one workload
  (Poisson / bursty / uniform arrivals, heavy-tailed query mix) and
  writes a latency/outcome report, ``load sweep`` steps offered rates
  and emits a latency/throughput frontier artifact with its SLO knee,
  ``load replay`` re-offers the arrival spacing and query shapes
  recorded in an exported trace JSONL.
* ``obs`` — telemetry analysis, offline and live: ``obs report``
  renders the span profile, bucket latency histograms and slowest
  traces, ``obs diff`` compares two exports (or frontier artifacts)
  with regression thresholds (non-zero exit on breach, the CI gate),
  ``obs slo`` evaluates an SLO spec against a load report or frontier
  — or, with ``--connect``, judges a *running* fleet from live scrape
  deltas (non-zero exit on violation), ``obs prom`` re-renders an
  export as OpenMetrics text, and ``obs scrape --connect`` pulls a
  point-in-time fleet snapshot off a live server or router without
  stopping it (README "Fleet observability").

Dataset commands accept the benchmark positionally or via
``--benchmark``.  ``match`` and ``serve`` additionally expose the
telemetry layer: ``--log-level`` overrides ``REPRO_LOG_LEVEL`` and
``--metrics-out PATH`` writes the run's metrics registry, span profile
and sampled traces as JSONL (:mod:`repro.obs.export` documents the
schema); ``serve`` also drops a scrape-ready ``.prom`` snapshot next to
the JSONL.

Numeric options are validated at parse time (fractions in their open
interval, counts at least 1) so a typo is an argparse error naming the
flag, not a stack trace from deep inside training.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]

_BENCHMARKS = ("cub", "sun", "fb2k", "fb6k", "fb10k")
_LOG_LEVELS = ("debug", "info", "warning", "error", "off")


# -- parse-time validators --------------------------------------------------
def _open_fraction(text: str) -> float:
    """A float strictly inside (0, 1)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not 0.0 < value < 1.0:
        raise argparse.ArgumentTypeError(
            f"must be strictly between 0 and 1, got {text}")
    return value


def _positive_int(text: str) -> int:
    """An integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1, got {text}")
    return value


def _non_negative_int(text: str) -> int:
    """An integer >= 0 (a shard slot)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be non-negative, got {text}")
    return value


def _positive_float(text: str) -> float:
    """A float > 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {text}")
    return value


def _non_negative_float(text: str) -> float:
    """A float >= 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be non-negative, got {text}")
    return value


def _address(text: str) -> str:
    """A HOST:PORT spec, validated now, parsed again where used."""
    from .loadgen.socketdrv import parse_address

    try:
        parse_address(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return text


def _rate(text: str) -> float:
    """A float in (0, 1] (a failure-rate threshold)."""
    value = _positive_float(text)
    if value > 1.0:
        raise argparse.ArgumentTypeError(f"must be at most 1, got {text}")
    return value


def _unit_interval(text: str) -> float:
    """A float in [0, 1] (a sampling rate; 0 = head-sample nothing)."""
    value = _non_negative_float(text)
    if value > 1.0:
        raise argparse.ArgumentTypeError(f"must be at most 1, got {text}")
    return value


def _rate_list(text: str) -> List[float]:
    """Comma-separated, strictly ascending, positive rates (req/s)."""
    parts = [part.strip() for part in text.split(",") if part.strip()]
    if not parts:
        raise argparse.ArgumentTypeError("needs at least one rate")
    values = [_positive_float(part) for part in parts]
    if any(b <= a for a, b in zip(values, values[1:])):
        raise argparse.ArgumentTypeError(
            f"rates must be strictly ascending, got {text}")
    return values


def _load(name: str, seed: int):
    from .datasets import (cub_bundle, fb_bundle, load_cub, load_fbimg,
                           load_sun, sun_bundle)

    if name == "cub":
        return cub_bundle(seed), load_cub(seed)
    if name == "sun":
        return sun_bundle(seed), load_sun(seed)
    return fb_bundle(seed), load_fbimg(name, seed)


def _cmd_stats(args: argparse.Namespace) -> int:
    _, dataset = _load(args.benchmark, args.seed)
    print(f"{dataset.name}:")
    for key, value in dataset.statistics().items():
        print(f"  {key:16s} {value}")
    return 0


def _make_matcher(args: argparse.Namespace, bundle):
    """Build the (unfitted) matcher a command asked for."""
    from .core import (CrossEM, CrossEMConfig, CrossEMPlus,
                       CrossEMPlusConfig)

    aggregator = "sage" if args.benchmark.startswith("fb") else "gnn"
    if args.method == "plus":
        return CrossEMPlus(bundle, CrossEMPlusConfig(
            epochs=args.epochs, lr=args.lr, aggregator=aggregator,
            seed=args.seed))
    return CrossEM(bundle, CrossEMConfig(
        prompt=args.method, epochs=args.epochs, lr=args.lr,
        aggregator=aggregator, seed=args.seed))


def _cmd_match(args: argparse.Namespace) -> int:
    from .datasets import train_test_split
    from .obs import (configure_logging, export_jsonl, registry,
                      reset_spans)

    if args.log_level:
        configure_logging(args.log_level)
    # A fresh registry/profile per invocation keeps --metrics-out
    # self-contained when main() is driven in-process (tests, notebooks).
    reg = registry()
    reg.reset()
    reset_spans()

    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2

    bundle, dataset = _load(args.benchmark, args.seed)
    split = train_test_split(dataset, args.test_fraction, seed=args.seed)
    matcher = _make_matcher(args, bundle)
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                resume_from=args.checkpoint_dir if args.resume else None)
    result = matcher.evaluate(dataset, list(split.test))
    print(f"{dataset.name} / {args.method}: {result}")
    # Efficiency goes through the registry (not just stdout) so
    # --metrics-out captures it even for zero-epoch runs.
    reg.gauge("efficiency.seconds_per_epoch").set(
        matcher.efficiency.seconds_per_epoch)
    reg.gauge("efficiency.peak_memory_mb").set(
        matcher.efficiency.peak_memory_mb)
    if matcher.efficiency.seconds_per_epoch:
        print(f"efficiency: {matcher.efficiency}")
    if args.save:
        from .core import save_matcher

        saved = save_matcher(matcher, args.save)
        print(f"saved tuned matcher to {saved}")
    if args.metrics_out:
        rows = export_jsonl(args.metrics_out,
                            meta={"benchmark": args.benchmark,
                                  "method": args.method,
                                  "epochs": args.epochs,
                                  "seed": args.seed})
        print(f"wrote {rows} metric rows to {args.metrics_out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .obs import (configure_logging, export_jsonl, export_prom,
                      registry, reset_spans, trace_recorder)
    from .serve import MatchService, ServeConfig, serve_loop

    if args.log_level:
        configure_logging(args.log_level)
    reg = registry()
    reg.reset()
    reset_spans()
    trace_recorder().reset()

    if (args.shard_slot is None) != (args.shard_count is None):
        print("--shard-slot and --shard-count must be given together",
              file=sys.stderr)
        return 2
    if args.shard_count is not None and \
            not args.shard_slot < args.shard_count:
        print("--shard-slot must be below --shard-count", file=sys.stderr)
        return 2
    if args.port_file and not args.listen:
        print("--port-file requires --listen", file=sys.stderr)
        return 2
    bundle, dataset = _load(args.benchmark, args.seed)
    matcher = _make_matcher(args, bundle)
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices)
    _attach_index_from_args(matcher, args)
    config = ServeConfig(
        capacity=args.capacity, workers=args.workers,
        default_budget_ms=args.default_budget_ms,
        top_k_default=args.top_k, full_floor_ms=args.full_floor_ms,
        stale_capacity=args.stale_capacity,
        breaker_window=args.breaker_window,
        breaker_failure_threshold=args.breaker_threshold,
        breaker_min_calls=args.breaker_min_calls,
        breaker_cooldown_ms=args.breaker_cooldown_ms,
        trace_sample_rate=args.trace_sample_rate,
        trace_capacity=args.trace_capacity,
        shard_slot=args.shard_slot, shard_count=args.shard_count)
    service = MatchService(matcher, config=config).warmup()
    exit_code = 0
    if args.listen:
        from .loadgen.socketdrv import parse_address
        from .netserve import NetServeConfig, NetServer

        host, port = parse_address(args.listen)
        server = NetServer(service, NetServeConfig(
            host=host, port=port,
            batch_window_ms=args.batch_window_ms,
            max_batch=args.max_batch, max_pending=args.max_pending,
            conn_inflight=args.conn_inflight,
            batch_workers=args.batch_workers,
            drain_timeout_s=args.drain_timeout_s))

        def _announce(bound) -> None:
            # stderr, flushed: scripts poll for this line (or the port)
            shard = "" if args.shard_count is None else \
                f", shard {args.shard_slot}/{args.shard_count}"
            print(f"listening on {bound[0]}:{bound[1]} — "
                  f"{dataset.name} / {args.method}, "
                  f"window {args.batch_window_ms:g}ms, "
                  f"max batch {args.max_batch}{shard}", file=sys.stderr,
                  flush=True)
            if args.port_file:
                # atomic: a supervisor polling this file never reads a
                # half-written address
                from .iosafe import atomic_write_bytes

                atomic_write_bytes(
                    Path(args.port_file),
                    f"{bound[0]}:{bound[1]}\n".encode("utf-8"))

        exit_code = server.run(ready=_announce)
        print(f"drained ({'clean' if exit_code == 0 else 'timed out'})",
              file=sys.stderr)
    else:
        # Diagnostics go to stderr; stdout carries only response JSONL.
        print(f"serving {dataset.name} / {args.method}: "
              f"{len(matcher.vertex_ids)} vertices, {len(matcher.images)} "
              f"images — one JSON request per stdin line", file=sys.stderr)
        served = serve_loop(service, sys.stdin, sys.stdout)
        print(f"served {served} responses", file=sys.stderr)
    if args.metrics_out:
        rows = export_jsonl(args.metrics_out,
                            meta={"benchmark": args.benchmark,
                                  "method": args.method,
                                  "command": "serve",
                                  "seed": args.seed})
        print(f"wrote {rows} metric rows to {args.metrics_out}",
              file=sys.stderr)
        prom_path = export_prom(Path(args.metrics_out).with_suffix(".prom"))
        print(f"wrote OpenMetrics snapshot to {prom_path}", file=sys.stderr)
    return exit_code


def _cmd_route(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from .loadgen.socketdrv import parse_address
    from .obs import export_jsonl, export_prom
    from .shard import (RouterConfig, ShardRouter, SupervisorConfig,
                        WorkerSupervisor)

    _reset_telemetry(args)
    host, port = parse_address(args.listen)
    work_dir = Path(args.work_dir) if args.work_dir else \
        Path(tempfile.mkdtemp(prefix="repro-shards-"))

    def command_for_slot(slot: int, port_file: Path) -> list:
        # each worker is an ordinary `repro serve --listen` on an
        # ephemeral port, fitted identically (same benchmark, same
        # seed) and told which slice of the image space it owns
        command = [sys.executable, "-m", "repro",
                   "--seed", str(args.seed),
                   "serve", args.benchmark,
                   "--method", args.method,
                   "--epochs", str(args.epochs), "--lr", str(args.lr),
                   "--top-k", str(args.top_k),
                   "--capacity", str(args.capacity),
                   "--workers", str(args.workers),
                   "--batch-window-ms", str(args.batch_window_ms),
                   "--listen", "127.0.0.1:0",
                   "--port-file", str(port_file),
                   "--shard-slot", str(slot),
                   "--shard-count", str(args.shards)]
        if args.default_budget_ms is not None:
            command += ["--default-budget-ms",
                        str(args.default_budget_ms)]
        if args.log_level:
            command += ["--log-level", args.log_level]
        return command

    supervisor = WorkerSupervisor(
        command_for_slot, args.shards, work_dir,
        SupervisorConfig(spawn_timeout_s=args.spawn_timeout_s,
                         backoff_base_s=args.restart_backoff_s,
                         flap_max=args.flap_max,
                         flap_window_s=args.flap_window_s))
    print(f"spawning {args.shards} shard workers "
          f"({args.benchmark} / {args.method}; logs in {work_dir})",
          file=sys.stderr, flush=True)
    try:
        supervisor.start(wait_healthy=True)
    except RuntimeError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    router = ShardRouter(supervisor, RouterConfig(
        host=host, port=port,
        shard_timeout_ms=args.shard_timeout_ms,
        hedge_fraction=args.hedge_fraction,
        conn_inflight=args.conn_inflight,
        drain_timeout_s=args.drain_timeout_s,
        breaker_window=args.breaker_window,
        breaker_failure_threshold=args.breaker_threshold,
        breaker_min_calls=args.breaker_min_calls,
        breaker_cooldown_ms=args.breaker_cooldown_ms,
        trace_sample_rate=args.trace_sample_rate,
        trace_capacity=args.trace_capacity))

    def _announce(bound) -> None:
        # stderr, flushed: scripts poll for this line (or the port)
        print(f"routing on {bound[0]}:{bound[1]} — {args.shards} shards "
              f"({args.benchmark} / {args.method})", file=sys.stderr,
              flush=True)

    exit_code = router.run(ready=_announce)
    print(f"drained ({'clean' if exit_code == 0 else 'timed out'})",
          file=sys.stderr)
    if args.metrics_out:
        rows = export_jsonl(args.metrics_out,
                            meta={"benchmark": args.benchmark,
                                  "method": args.method,
                                  "command": "route",
                                  "shards": args.shards,
                                  "seed": args.seed})
        print(f"wrote {rows} metric rows to {args.metrics_out}",
              file=sys.stderr)
        prom_path = export_prom(Path(args.metrics_out).with_suffix(".prom"))
        print(f"wrote OpenMetrics snapshot to {prom_path}", file=sys.stderr)
    return exit_code


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from .obs.diff import load_rows
    from .obs.report import format_report

    print(format_report(load_rows(args.path), top=args.top))
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from .obs.diff import (DEFAULT_WATCH, diff_rows, find_regressions,
                           format_diff, load_rows)

    entries = diff_rows(load_rows(args.old), load_rows(args.new))
    watch = tuple(args.watch) if args.watch else DEFAULT_WATCH
    regressions = find_regressions(entries, threshold_pct=args.threshold_pct,
                                   min_delta=args.min_delta, watch=watch)
    print(format_diff(entries, regressions, changed_only=args.changed_only))
    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed past "
              f"+{args.threshold_pct:g}% (min delta {args.min_delta:g}):",
              file=sys.stderr)
        for entry in regressions:
            print(f"  {entry.name}: {entry.old:.6g} -> {entry.new:.6g} "
                  f"({entry.pct:+.1f}%)", file=sys.stderr)
        return 1
    return 0


def _cmd_obs_prom(args: argparse.Namespace) -> int:
    from .iosafe import atomic_write_bytes
    from .obs.diff import load_rows
    from .obs.promtext import render_openmetrics

    text = render_openmetrics(load_rows(args.path), prefix=args.prefix)
    if args.output:
        atomic_write_bytes(args.output, text.encode("utf-8"))
        print(f"wrote OpenMetrics snapshot to {args.output}",
              file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _reset_telemetry(args: argparse.Namespace) -> None:
    from .obs import configure_logging, registry, reset_spans, trace_recorder

    if getattr(args, "log_level", None):
        configure_logging(args.log_level)
    registry().reset()
    reset_spans()
    trace_recorder().reset()


def _fit_for_load(args: argparse.Namespace):
    """Fit the matcher a load command drives (once per invocation)."""
    bundle, dataset = _load(args.benchmark, args.seed)
    matcher = _make_matcher(args, bundle)
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices)
    _attach_index_from_args(matcher, args)
    return matcher, dataset


def _service_for_load(matcher, args: argparse.Namespace):
    """A fresh warmed service over an already-fitted matcher.

    Fresh per run/sweep point because a drained service's admission
    queue is closed for good; the expensive part (the fitted matcher
    and its encoded repository) is shared across points.
    """
    from .serve import MatchService, ServeConfig

    config = ServeConfig(capacity=args.capacity, workers=args.workers,
                         default_budget_ms=args.default_budget_ms,
                         trace_sample_rate=args.trace_sample_rate)
    return MatchService(matcher, config=config).warmup()


def _load_config_from_args(args: argparse.Namespace, *,
                           rate: Optional[float] = None,
                           replay=None):
    from .loadgen import LoadConfig

    if replay is not None:
        return LoadConfig(process="replay", duration=args.duration,
                          seed=args.seed, replay=replay)
    return LoadConfig(process=args.process,
                      rate=args.rate if rate is None else rate,
                      duration=args.duration, seed=args.seed,
                      burst_rate=args.burst_rate,
                      on_seconds=args.on_seconds,
                      off_seconds=args.off_seconds,
                      skew=args.skew, budget_ms=args.budget_ms,
                      bad_fraction=args.bad_fraction)


_SLO_FIELDS = ("p50_ms", "p95_ms", "p99_ms", "availability",
               "max_degraded", "max_shed")


def _spec_from_args(args: argparse.Namespace):
    """The SLO spec a command was given — ``--spec FILE`` or inline
    objective flags; ``None`` when neither was provided."""
    from .obs.slo import SLOSpec, load_spec

    if getattr(args, "spec", None):
        return load_spec(args.spec)
    objectives = {field: getattr(args, field) for field in _SLO_FIELDS
                  if getattr(args, field, None) is not None}
    if not objectives:
        return None
    return SLOSpec(name=getattr(args, "slo_name", "cli"), **objectives)


def _emit_load_artifacts(report, args: argparse.Namespace) -> None:
    from pathlib import Path

    from .obs import export_jsonl, export_prom

    report.publish()
    summary = report.summary()
    print(f"offered {summary['offered']} requests over "
          f"{summary['duration_s']:.2f}s "
          f"({summary['offered_rate']:.1f}/s offered, "
          f"{summary['achieved_rate']:.1f}/s answered)")
    print(f"outcomes: " + " ".join(
        f"{outcome}={count}" for outcome, count
        in summary["outcomes"].items() if count))
    print(f"latency (from intended arrival): "
          f"p50={summary['p50_ms']:.1f}ms p95={summary['p95_ms']:.1f}ms "
          f"p99={summary['p99_ms']:.1f}ms max={summary['max_ms']:.1f}ms")
    print(f"availability={summary['availability']:.4f} "
          f"max_injector_lag={summary['max_lag_ms']:.1f}ms")
    if args.output:
        saved = report.save(args.output)
        print(f"wrote load report to {saved}", file=sys.stderr)
    if args.metrics_out:
        rows = export_jsonl(args.metrics_out,
                            meta={"benchmark": args.benchmark,
                                  "command": "load",
                                  "seed": args.seed})
        print(f"wrote {rows} metric rows to {args.metrics_out}",
              file=sys.stderr)
        prom_path = export_prom(Path(args.metrics_out).with_suffix(".prom"))
        print(f"wrote OpenMetrics snapshot to {prom_path}", file=sys.stderr)


def _remote_vertices(args: argparse.Namespace):
    """``(address, vertex space)`` for a ``--connect`` run: the server's
    ``info`` handshake replaces local fitting entirely."""
    from .loadgen import fetch_info, parse_address

    address = parse_address(args.connect)
    info = fetch_info(address)
    print(f"connected to {address[0]}:{address[1]}: "
          f"{len(info['vertices'])} vertices, {info['images']} images, "
          f"window {info.get('batch_window_ms', '?')}ms, "
          f"max batch {info.get('max_batch', '?')}", file=sys.stderr)
    return address, info["vertices"]


def _cmd_load_run(args: argparse.Namespace) -> int:
    from .loadgen import SocketDriver, build_schedule, run_schedule

    _reset_telemetry(args)
    if args.connect:
        address, vertices = _remote_vertices(args)
        target, source = SocketDriver(address), args.connect
    else:
        matcher, dataset = _fit_for_load(args)
        vertices, source = matcher.vertex_ids, dataset.name
        target = _service_for_load(matcher, args)
    config = _load_config_from_args(args)
    schedule = build_schedule(config, vertices)
    print(f"load run on {source}: {len(schedule)} requests, "
          f"{config.process} arrivals at {config.rate:g}/s for "
          f"{config.duration:g}s", file=sys.stderr)
    report = run_schedule(target, schedule,
                          meta={"benchmark": args.benchmark,
                                "connect": args.connect,
                                "config": config.describe()})
    _emit_load_artifacts(report, args)
    return 0


def _cmd_load_sweep(args: argparse.Namespace) -> int:
    from .loadgen import build_schedule, run_schedule
    from .obs.frontier import format_frontier, save_frontier, sweep_frontier

    spec = _spec_from_args(args)
    if spec is None:
        print("load sweep needs an SLO: --spec FILE or at least one "
              "objective flag (e.g. --p99-ms)", file=sys.stderr)
        return 2
    _reset_telemetry(args)
    if args.connect:
        from .loadgen import SocketDriver

        address, vertices = _remote_vertices(args)

        def make_target():
            # fresh connection per point: each measurement starts from
            # a clean server-side outstanding count
            return SocketDriver(address)
    else:
        matcher, _ = _fit_for_load(args)
        vertices = matcher.vertex_ids

        def make_target():
            return _service_for_load(matcher, args)

    def run_point(rate: float) -> dict:
        config = _load_config_from_args(args, rate=rate)
        schedule = build_schedule(config, vertices)
        report = run_schedule(make_target(), schedule)
        return report.summary()

    doc = sweep_frontier(
        run_point, args.rates, spec,
        meta={"benchmark": args.benchmark, "seed": args.seed,
              "connect": args.connect,
              "process": args.process, "duration": args.duration,
              "workers": args.workers, "capacity": args.capacity},
        progress=lambda message: print(message, file=sys.stderr))
    print(format_frontier(doc))
    if args.output:
        saved = save_frontier(args.output, doc)
        print(f"wrote frontier artifact to {saved}", file=sys.stderr)
    return 0 if doc["knee"] is not None else 1


def _cmd_load_replay(args: argparse.Namespace) -> int:
    from .loadgen import run_schedule, schedule_from_traces
    from .obs.export import read_jsonl

    _reset_telemetry(args)
    schedule, skipped = schedule_from_traces(read_jsonl(args.trace),
                                             speedup=args.speedup)
    if skipped:
        print(f"skipped {skipped} non-replayable trace row(s) "
              f"(no recorded start or request shape)", file=sys.stderr)
    if not schedule:
        print(f"{args.trace} holds no replayable traces", file=sys.stderr)
        return 2
    for index, (_, request) in enumerate(schedule):
        request["id"] = f"replay-{index}"
    matcher, dataset = _fit_for_load(args)
    span_s = schedule[-1][0] if schedule else 0.0
    print(f"replaying {len(schedule)} requests over {span_s:.2f}s "
          f"(speedup {args.speedup:g}x) against {dataset.name}",
          file=sys.stderr)
    service = _service_for_load(matcher, args)
    report = run_schedule(service, schedule,
                          meta={"benchmark": args.benchmark,
                                "trace": str(args.trace),
                                "speedup": args.speedup,
                                "skipped": skipped})
    _emit_load_artifacts(report, args)
    return 0


def _cmd_obs_scrape(args: argparse.Namespace) -> int:
    import json as _json

    from .iosafe import atomic_write_bytes
    from .loadgen.socketdrv import parse_address
    from .obs.export import SCHEMA_VERSION
    from .obs.promtext import render_openmetrics
    from .obs.scrape import fetch_stats

    address = parse_address(args.connect)
    try:
        stats = fetch_stats(address, timeout=args.timeout)
    except (OSError, RuntimeError, ValueError) as exc:
        print(f"scrape of {address[0]}:{address[1]} failed: {exc}",
              file=sys.stderr)
        return 1
    metrics = list(stats.get("metrics") or [])
    spans = list(stats.get("spans") or [])
    shards = stats.get("shards")
    where = f"{address[0]}:{address[1]}"
    if isinstance(shards, dict):
        print(f"scraped {where}: {shards.get('answered')}/"
              f"{shards.get('total')} shards answered, "
              f"{len(metrics)} metric rows", file=sys.stderr)
    else:
        print(f"scraped {where}: {len(metrics)} metric rows "
              f"(single process)", file=sys.stderr)
    if args.out:
        # the same shape the exporter writes, so obs report / diff /
        # prom consume a live scrape and a --metrics-out file alike
        meta = {"type": "meta", "schema_version": SCHEMA_VERSION,
                "command": "obs scrape", "connect": args.connect,
                "captured_unix": stats.get("captured_unix")}
        if isinstance(shards, dict):
            meta["shards"] = shards
        rows = [meta] + metrics + spans
        payload = "".join(_json.dumps(row, sort_keys=True) + "\n"
                          for row in rows)
        atomic_write_bytes(args.out, payload.encode("utf-8"))
        print(f"wrote {len(rows)} rows to {args.out}", file=sys.stderr)
    text = render_openmetrics(metrics + spans, prefix=args.prefix)
    if args.prom:
        atomic_write_bytes(args.prom, text.encode("utf-8"))
        print(f"wrote OpenMetrics snapshot to {args.prom}",
              file=sys.stderr)
    elif not args.out:
        sys.stdout.write(text)
    return 0


def _live_slo(spec, args: argparse.Namespace) -> int:
    """Judge a live fleet: scrape deltas over a sliding window."""
    import time as _time
    from collections import deque

    from .loadgen.socketdrv import parse_address
    from .obs.scrape import combine_summaries, delta_summary, fetch_stats
    from .obs.slo import evaluate_slo, format_slo

    address = parse_address(args.connect)

    def scrape() -> dict:
        return fetch_stats(address, timeout=args.timeout)

    try:
        previous = scrape()
    except (OSError, RuntimeError, ValueError) as exc:
        print(f"scrape of {address[0]}:{address[1]} failed: {exc}",
              file=sys.stderr)
        return 1
    per_shard_previous = previous.get("per_shard") or {}
    window: deque = deque(maxlen=args.windows)
    print(f"judging {address[0]}:{address[1]} against {spec.name!r}: "
          f"{args.windows} window(s) of {args.interval:g}s",
          file=sys.stderr)
    result = None
    for tick in range(1, args.windows + 1):
        _time.sleep(args.interval)
        try:
            current = scrape()
        except (OSError, RuntimeError, ValueError) as exc:
            print(f"scrape failed mid-run: {exc}", file=sys.stderr)
            return 1
        window.append(delta_summary(previous.get("metrics") or [],
                                    current.get("metrics") or []))
        per_shard_current = current.get("per_shard") or {}
        for slot in sorted(per_shard_current):
            before = per_shard_previous.get(slot)
            after = per_shard_current.get(slot)
            if not isinstance(after, dict):
                print(f"  shard {slot}: UNREACHABLE (scrape failed)",
                      file=sys.stderr)
                continue
            if not isinstance(before, dict):
                continue  # first sight of this shard: no delta yet
            shard_result = evaluate_slo(spec, delta_summary(
                before.get("metrics") or [], after.get("metrics") or []))
            print(format_slo(shard_result, label=f"shard {slot}"))
        result = evaluate_slo(spec, combine_summaries(window))
        print(format_slo(result,
                         label=f"fleet, window {tick}/{args.windows}"))
        previous, per_shard_previous = current, per_shard_current
    return 0 if result is not None and result.ok else 1


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    import json as _json

    from .obs.frontier import is_frontier_doc
    from .obs.slo import evaluate_slo, format_slo

    spec = _spec_from_args(args)
    if spec is None:
        print("obs slo needs an SLO: --spec FILE or at least one "
              "objective flag (e.g. --p99-ms)", file=sys.stderr)
        return 2
    if args.connect:
        return _live_slo(spec, args)
    if not args.path:
        print("obs slo needs a report file (or --connect HOST:PORT "
              "to judge a live fleet)", file=sys.stderr)
        return 2
    doc = _json.loads(open(args.path, encoding="utf-8").read())
    if is_frontier_doc(doc):
        knee = doc.get("knee")
        if knee is None:
            print("frontier has no knee: the lowest swept rate already "
                  "violated its SLOs", file=sys.stderr)
            return 1
        summary = knee.get("summary", {})
        print(f"evaluating frontier knee ({knee.get('rate'):g} req/s)")
    elif "summary" in doc:
        summary = doc["summary"]
    else:
        summary = doc  # already a bare summary dict
    result = evaluate_slo(spec, summary)
    print(format_slo(result))
    return 0 if result.ok else 1


def _attach_index_from_args(matcher, args: argparse.Namespace) -> None:
    """Load and attach an ANN index shard when ``--index`` was given."""
    index_path = getattr(args, "index", None)
    if not index_path:
        return
    from .index import load_index

    index = load_index(index_path, nprobe=getattr(args, "nprobe", None))
    matcher.attach_index(index)
    print(f"attached ANN index {index_path}: {index.count} vectors, "
          f"nlist={index.nlist}, nprobe={index.nprobe}", file=sys.stderr)


def _cmd_index_build(args: argparse.Namespace) -> int:
    from .index import IVFPQConfig, save_index
    from .obs import configure_logging

    if args.log_level:
        configure_logging(args.log_level)
    bundle, dataset = _load(args.benchmark, args.seed)
    matcher = _make_matcher(args, bundle)
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices)
    config = IVFPQConfig(
        nlist=args.nlist, nprobe=args.nprobe, pq_m=args.pq_m,
        pq_bits=args.pq_bits, refine=args.refine,
        kmeans_iterations=args.kmeans_iterations,
        train_sample=args.train_sample, seed=args.seed)
    index = matcher.build_index(config)
    saved = save_index(args.output, index,
                       meta={"benchmark": args.benchmark,
                             "method": args.method, "seed": args.seed})
    print(f"wrote index shard to {saved}")
    for key, value in index.describe().items():
        print(f"  {key:16s} {value}")
    return 0


def _cmd_index_stats(args: argparse.Namespace) -> int:
    from .index import ShardReader, load_index

    index = load_index(args.path, verify="full" if args.verify else "lazy")
    print(f"{args.path}:")
    for key, value in index.describe().items():
        print(f"  {key:16s} {value}")
    reader = ShardReader(args.path)
    print("sections:")
    for name in reader.section_names():
        entry = reader.section_entry(name)
        print(f"  {name:24s} {entry['dtype']:8s} "
              f"{str(tuple(entry['shape'])):16s} "
              f"{reader.section_nbytes(name):>12d} bytes")
    if args.verify:
        print("payload digests verified")
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    import numpy as np

    from .core import CrossEM, CrossEMConfig, clean_repository
    from .vision.image import SyntheticImage

    bundle, dataset = _load(args.benchmark, args.seed)
    rng = np.random.default_rng(args.seed)
    images = list(dataset.images)
    for k in range(args.inject):
        pixels = (rng.random((24, 24, 3)) * 0.05).astype(np.float32)
        images.append(SyntheticImage(pixels, -1, 10_000 + k))
    matcher = CrossEM(bundle, CrossEMConfig(prompt="hard", epochs=0))
    matcher.fit(dataset.graph, images, dataset.entity_vertices)
    flags = clean_repository(matcher, z_threshold=args.z_threshold)
    print(f"{dataset.name}: flagged {len(flags)} of {len(images)} images "
          f"({args.inject} corrupted injected)")
    for flag in flags[:10]:
        injected = flag.image_position >= len(dataset.images)
        print(f"  @{flag.image_position:<5d} score={flag.score:+.3f} "
              f"{'<- injected' if injected else ''}")
    return 0


def _add_benchmark_argument(command: argparse.ArgumentParser) -> None:
    """Accept the benchmark either positionally or as ``--benchmark``."""
    command.add_argument("benchmark", nargs="?", choices=_BENCHMARKS,
                         help="benchmark to run on")
    command.add_argument("--benchmark", dest="benchmark_opt",
                         choices=_BENCHMARKS, help=argparse.SUPPRESS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CrossEM cross-modal entity matching (ICDE 2025 repro)")
    parser.add_argument("--seed", type=int, default=0)
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="print benchmark statistics")
    _add_benchmark_argument(stats)
    stats.set_defaults(func=_cmd_stats)

    match = commands.add_parser("match", help="fit a matcher and evaluate")
    _add_benchmark_argument(match)
    match.add_argument("--method", default="plus",
                       choices=("baseline", "hard", "soft", "plus"))
    match.add_argument("--epochs", type=_positive_int, default=10)
    match.add_argument("--lr", type=float, default=1e-3)
    match.add_argument("--test-fraction", type=_open_fraction, default=0.5)
    match.add_argument("--save", default=None,
                       help="path to save the tuned matcher (.npz)")
    match.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="write crash-safe training checkpoints here")
    match.add_argument("--checkpoint-every", type=_positive_int, default=1,
                       metavar="K", help="checkpoint cadence in epochs")
    match.add_argument("--resume", action="store_true",
                       help="resume from the newest valid checkpoint in "
                            "--checkpoint-dir (trains fresh if none)")
    match.add_argument("--log-level", default=None, choices=_LOG_LEVELS,
                       help="override REPRO_LOG_LEVEL for this run")
    match.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write metrics + span profile as JSONL")
    match.set_defaults(func=_cmd_match)

    serve = commands.add_parser(
        "serve", help="answer match queries as a JSON-lines service")
    _add_benchmark_argument(serve)
    serve.add_argument("--method", default="plus",
                       choices=("baseline", "hard", "soft", "plus"))
    serve.add_argument("--epochs", type=_positive_int, default=1,
                       help="training epochs before serving starts")
    serve.add_argument("--lr", type=float, default=1e-3)
    serve.add_argument("--top-k", type=_positive_int, default=1,
                       help="matches returned when a request names none")
    serve.add_argument("--capacity", type=_positive_int, default=16,
                       help="work-queue slots before requests are shed")
    serve.add_argument("--workers", type=_positive_int, default=1,
                       help="worker threads draining the queue")
    serve.add_argument("--default-budget-ms", type=_positive_float,
                       default=None, metavar="MS",
                       help="deadline applied to requests without one")
    serve.add_argument("--full-floor-ms", type=_non_negative_float,
                       default=0.0, metavar="MS",
                       help="skip the full tier when less budget remains")
    serve.add_argument("--stale-capacity", type=_positive_int, default=1024,
                       help="per-vertex stale results kept for fallback")
    serve.add_argument("--breaker-window", type=_positive_int, default=8,
                       help="circuit-breaker sliding window (calls)")
    serve.add_argument("--breaker-threshold", type=_rate, default=0.5,
                       metavar="RATE",
                       help="failure rate in the window that opens it")
    serve.add_argument("--breaker-min-calls", type=_positive_int, default=3,
                       help="calls in the window before it can open")
    serve.add_argument("--breaker-cooldown-ms", type=_positive_float,
                       default=2000.0, metavar="MS",
                       help="open time before a half-open probe")
    serve.add_argument("--trace-sample-rate", type=_unit_interval,
                       default=1.0, metavar="RATE",
                       help="head-sampling rate for request traces "
                            "(errors/degraded/deadline always kept)")
    serve.add_argument("--trace-capacity", type=_positive_int, default=256,
                       help="sampled traces retained in memory")
    serve.add_argument("--log-level", default=None, choices=_LOG_LEVELS,
                       help="override REPRO_LOG_LEVEL for this run")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write metrics + spans + traces as JSONL on "
                            "exit (plus an OpenMetrics .prom snapshot)")
    serve.add_argument("--index", default=None, metavar="SHARD",
                       help="route full-tier top-k through this ANN "
                            "index shard (repro index build)")
    serve.add_argument("--nprobe", type=_positive_int, default=None,
                       help="override the shard's probed-cell count")
    serve.add_argument("--listen", type=_address, default=None,
                       metavar="HOST:PORT",
                       help="serve over TCP instead of stdin/stdout "
                            "(port 0 binds an ephemeral port); SIGTERM "
                            "drains gracefully")
    serve.add_argument("--batch-window-ms", type=_non_negative_float,
                       default=2.0, metavar="MS",
                       help="micro-batch coalescing window for --listen "
                            "(0 disables batching)")
    serve.add_argument("--max-batch", type=_positive_int, default=16,
                       help="flush a micro-batch at this many requests "
                            "without waiting out the window")
    serve.add_argument("--max-pending", type=_positive_int, default=256,
                       help="requests queued + in flight before the "
                            "batcher sheds (--listen)")
    serve.add_argument("--conn-inflight", type=_positive_int, default=32,
                       help="per-connection outstanding-response cap "
                            "(--listen)")
    serve.add_argument("--batch-workers", type=_positive_int, default=2,
                       help="threads running fused scoring (--listen)")
    serve.add_argument("--drain-timeout-s", type=_positive_float,
                       default=30.0, metavar="S",
                       help="seconds the drain waits for in-flight work")
    serve.add_argument("--port-file", default=None, metavar="PATH",
                       help="write the bound HOST:PORT here once "
                            "listening (the shard supervisor's spawn "
                            "handshake; requires --listen)")
    serve.add_argument("--shard-slot", type=_non_negative_int,
                       default=None, metavar="SLOT",
                       help="serve only image positions p with "
                            "p %% shard-count == slot (requires "
                            "--shard-count)")
    serve.add_argument("--shard-count", type=_positive_int, default=None,
                       metavar="N",
                       help="total shards in the partition this worker "
                            "belongs to")
    serve.set_defaults(func=_cmd_serve)

    route = commands.add_parser(
        "route", help="scatter/gather router over N shard workers")
    _add_benchmark_argument(route)
    route.add_argument("--shards", type=_positive_int, default=3,
                       metavar="N", help="worker processes to spawn")
    route.add_argument("--listen", type=_address, required=True,
                       metavar="HOST:PORT",
                       help="router bind address (port 0 = ephemeral); "
                            "SIGTERM drains router then workers")
    route.add_argument("--method", default="hard",
                       choices=("baseline", "hard", "soft", "plus"))
    route.add_argument("--epochs", type=_positive_int, default=1,
                       help="training epochs in each worker")
    route.add_argument("--lr", type=float, default=1e-3)
    route.add_argument("--top-k", type=_positive_int, default=1,
                       help="worker default when a request names none")
    route.add_argument("--capacity", type=_positive_int, default=16,
                       help="per-worker queue slots before shedding")
    route.add_argument("--workers", type=_positive_int, default=1,
                       help="scoring threads per worker process")
    route.add_argument("--batch-window-ms", type=_non_negative_float,
                       default=2.0, metavar="MS",
                       help="per-worker micro-batch window")
    route.add_argument("--default-budget-ms", type=_positive_float,
                       default=None, metavar="MS",
                       help="worker deadline for requests without one")
    route.add_argument("--work-dir", default=None, metavar="DIR",
                       help="port/pid/log files per worker land here "
                            "(default: a fresh temp dir)")
    route.add_argument("--shard-timeout-ms", type=_positive_float,
                       default=2000.0, metavar="MS",
                       help="ceiling on waiting for any one shard")
    route.add_argument("--hedge-fraction", type=_positive_float,
                       default=0.5, metavar="F",
                       help="hedge an unanswered shard after this "
                            "fraction of its budget (>= 1 disables)")
    route.add_argument("--conn-inflight", type=_positive_int, default=64,
                       help="per-connection outstanding-request cap")
    route.add_argument("--spawn-timeout-s", type=_positive_float,
                       default=300.0, metavar="S",
                       help="per-worker budget to fit and answer info")
    route.add_argument("--restart-backoff-s", type=_positive_float,
                       default=0.5, metavar="S",
                       help="first-restart backoff (doubles per death)")
    route.add_argument("--flap-max", type=_positive_int, default=5,
                       help="deaths in the flap window that mark a "
                            "worker dead for good")
    route.add_argument("--flap-window-s", type=_positive_float,
                       default=60.0, metavar="S",
                       help="sliding window the deaths are counted in")
    route.add_argument("--breaker-window", type=_positive_int, default=8,
                       help="per-shard breaker sliding window (calls)")
    route.add_argument("--breaker-threshold", type=_rate, default=0.5,
                       metavar="RATE",
                       help="failure rate in the window that opens it")
    route.add_argument("--breaker-min-calls", type=_positive_int,
                       default=3,
                       help="calls in the window before it can open")
    route.add_argument("--breaker-cooldown-ms", type=_positive_float,
                       default=1000.0, metavar="MS",
                       help="open time before a half-open probe")
    route.add_argument("--drain-timeout-s", type=_positive_float,
                       default=30.0, metavar="S",
                       help="seconds the drain waits for in-flight work")
    route.add_argument("--trace-sample-rate", type=_unit_interval,
                       default=1.0, metavar="RATE",
                       help="head-sampling rate for routed-request "
                            "traces (errors/partial always kept)")
    route.add_argument("--trace-capacity", type=_positive_int,
                       default=256,
                       help="sampled traces retained in memory")
    route.add_argument("--log-level", default=None, choices=_LOG_LEVELS,
                       help="override REPRO_LOG_LEVEL for this run")
    route.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write router metrics as JSONL on exit "
                            "(plus an OpenMetrics .prom snapshot)")
    route.set_defaults(func=_cmd_route)

    # shared flag groups for the load subcommands (argparse parents)
    load_service = argparse.ArgumentParser(add_help=False)
    load_service.add_argument("--method", default="hard",
                              choices=("baseline", "hard", "soft", "plus"))
    load_service.add_argument("--epochs", type=_positive_int, default=1,
                              help="training epochs before the run")
    load_service.add_argument("--lr", type=float, default=1e-3)
    load_service.add_argument("--capacity", type=_positive_int, default=16,
                              help="work-queue slots before shedding")
    load_service.add_argument("--workers", type=_positive_int, default=1,
                              help="worker threads draining the queue")
    load_service.add_argument("--default-budget-ms", type=_positive_float,
                              default=None, metavar="MS",
                              help="deadline applied to requests without one")
    load_service.add_argument("--trace-sample-rate", type=_unit_interval,
                              default=0.0, metavar="RATE",
                              help="head-sampling rate for request traces "
                                   "(default 0: flagged traces only)")
    load_service.add_argument("--log-level", default=None,
                              choices=_LOG_LEVELS,
                              help="override REPRO_LOG_LEVEL for this run")
    load_service.add_argument("--output", default=None, metavar="PATH",
                              help="write the run artifact (JSON) here")
    load_service.add_argument("--metrics-out", default=None, metavar="PATH",
                              help="write metrics + spans + traces as "
                                   "JSONL (plus a .prom snapshot)")
    load_service.add_argument("--index", default=None, metavar="SHARD",
                              help="route full-tier top-k through this "
                                   "ANN index shard (repro index build)")
    load_service.add_argument("--nprobe", type=_positive_int, default=None,
                              help="override the shard's probed-cell "
                                   "count")

    load_shape = argparse.ArgumentParser(add_help=False)
    load_shape.add_argument("--process", default="poisson",
                            choices=("poisson", "bursty", "uniform"),
                            help="arrival process of the offered workload")
    load_shape.add_argument("--duration", type=_positive_float, default=1.0,
                            metavar="S", help="run length in seconds")
    load_shape.add_argument("--burst-rate", type=_positive_float,
                            default=None, metavar="R",
                            help="bursty: on-phase rate (default 4x base)")
    load_shape.add_argument("--on-seconds", type=_positive_float,
                            default=0.25, metavar="S")
    load_shape.add_argument("--off-seconds", type=_positive_float,
                            default=0.25, metavar="S")
    load_shape.add_argument("--skew", type=_non_negative_float, default=1.1,
                            help="Zipf exponent of vertex popularity "
                                 "(0 = uniform)")
    load_shape.add_argument("--budget-ms", type=_positive_float,
                            default=None, metavar="MS",
                            help="deadline attached to every query")
    load_shape.add_argument("--bad-fraction", type=_unit_interval,
                            default=0.0, metavar="F",
                            help="fraction of dirty (unknown-vertex) "
                                 "queries")

    slo_flags = argparse.ArgumentParser(add_help=False)
    slo_flags.add_argument("--spec", default=None, metavar="FILE",
                           help="SLO spec as JSON (overrides the flags)")
    slo_flags.add_argument("--slo-name", default="cli",
                           help="name recorded on a flag-built spec")
    slo_flags.add_argument("--p50-ms", type=_positive_float, default=None)
    slo_flags.add_argument("--p95-ms", type=_positive_float, default=None)
    slo_flags.add_argument("--p99-ms", type=_positive_float, default=None)
    slo_flags.add_argument("--availability", type=_unit_interval,
                           default=None,
                           help="minimum answered fraction (ok + degraded)")
    slo_flags.add_argument("--max-degraded", type=_unit_interval,
                           default=None)
    slo_flags.add_argument("--max-shed", type=_unit_interval, default=None)

    load = commands.add_parser(
        "load", help="open-loop load generation against the serving layer")
    load_commands = load.add_subparsers(dest="load_command", required=True)

    load_run = load_commands.add_parser(
        "run", parents=[load_service, load_shape],
        help="drive one workload and report outcomes + latency")
    _add_benchmark_argument(load_run)
    load_run.add_argument("--rate", type=_positive_float, default=50.0,
                          metavar="R",
                          help="offered rate in requests/second "
                               "(base rate for bursty)")
    load_run.add_argument("--connect", type=_address, default=None,
                          metavar="HOST:PORT",
                          help="drive a running TCP server "
                               "(repro serve --listen) instead of "
                               "fitting an in-process service")
    load_run.set_defaults(func=_cmd_load_run)

    load_sweep = load_commands.add_parser(
        "sweep", parents=[load_service, load_shape, slo_flags],
        help="step offered rates and emit the SLO frontier + knee")
    _add_benchmark_argument(load_sweep)
    load_sweep.add_argument("--rates", type=_rate_list, required=True,
                            metavar="R1,R2,...",
                            help="ascending offered rates to sweep")
    load_sweep.add_argument("--connect", type=_address, default=None,
                            metavar="HOST:PORT",
                            help="sweep a running TCP server "
                                 "(repro serve --listen); one fresh "
                                 "connection per rate point")
    load_sweep.set_defaults(func=_cmd_load_sweep)

    load_replay = load_commands.add_parser(
        "replay", parents=[load_service],
        help="re-offer the workload recorded in an exported trace JSONL")
    load_replay.add_argument("trace",
                             help="metrics JSONL export holding trace rows")
    _add_benchmark_argument(load_replay)
    load_replay.add_argument("--speedup", type=_positive_float, default=1.0,
                             help="replay-rate multiplier (2 = twice as "
                                  "fast as recorded)")
    load_replay.set_defaults(func=_cmd_load_replay)

    obs = commands.add_parser(
        "obs",
        help="analyse exported telemetry (report / diff / slo / prom)")
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)

    report = obs_commands.add_parser(
        "report", help="span profile + slowest traces of one export")
    report.add_argument("path", help="metrics JSONL file to report on")
    report.add_argument("--top", type=_positive_int, default=5,
                        help="slowest traces to render")
    report.set_defaults(func=_cmd_obs_report)

    diff = obs_commands.add_parser(
        "diff", help="compare two exports; non-zero exit on regression")
    diff.add_argument("old", help="baseline export (JSONL or bench JSON)")
    diff.add_argument("new", help="candidate export (JSONL or bench JSON)")
    diff.add_argument("--threshold-pct", type=_positive_float, default=25.0,
                      metavar="PCT",
                      help="relative increase on a watched metric that "
                           "counts as a regression")
    diff.add_argument("--min-delta", type=_non_negative_float, default=0.0,
                      metavar="ABS",
                      help="ignore increases smaller than this (noise "
                           "floor for micro-benchmarks)")
    diff.add_argument("--watch", action="append", default=None,
                      metavar="GLOB",
                      help="metric-name glob where bigger is worse "
                           "(repeatable; default: time-shaped names)")
    diff.add_argument("--changed-only", action="store_true",
                      help="hide metrics whose value did not move")
    diff.set_defaults(func=_cmd_obs_diff)

    slo = obs_commands.add_parser(
        "slo", parents=[slo_flags],
        help="evaluate an SLO spec against a load report, frontier, or "
             "live fleet (--connect); non-zero exit on violation")
    slo.add_argument("path", nargs="?", default=None,
                     help="load report JSON, frontier artifact, or bare "
                          "summary dict (omit with --connect)")
    slo.add_argument("--connect", type=_address, default=None,
                     metavar="HOST:PORT",
                     help="judge a running server/router from live "
                          "scrape deltas instead of a file")
    slo.add_argument("--interval", type=_positive_float, default=5.0,
                     metavar="S",
                     help="seconds between live scrapes (--connect)")
    slo.add_argument("--windows", type=_positive_int, default=3,
                     help="scrape deltas in the sliding judgement "
                          "window; also the live run's length")
    slo.add_argument("--timeout", type=_positive_float, default=10.0,
                     metavar="S", help="per-scrape socket timeout")
    slo.set_defaults(func=_cmd_obs_slo)

    scrape = obs_commands.add_parser(
        "scrape", help="one-shot live scrape of a running server or "
                       "router (stats op); OpenMetrics to stdout")
    scrape.add_argument("--connect", type=_address, required=True,
                        metavar="HOST:PORT",
                        help="server (repro serve --listen) or router "
                             "(repro route) to scrape")
    scrape.add_argument("--prom", default=None, metavar="FILE",
                        help="write the OpenMetrics text here instead "
                             "of stdout")
    scrape.add_argument("--out", default=None, metavar="FILE",
                        help="also write the raw rows as metrics JSONL "
                             "(consumable by obs report / diff / prom)")
    scrape.add_argument("--prefix", default="repro",
                        help="metric name prefix for OpenMetrics")
    scrape.add_argument("--timeout", type=_positive_float, default=10.0,
                        metavar="S", help="socket timeout")
    scrape.set_defaults(func=_cmd_obs_scrape)

    prom = obs_commands.add_parser(
        "prom", help="render an export as OpenMetrics text")
    prom.add_argument("path", help="metrics JSONL file (or bench JSON)")
    prom.add_argument("-o", "--output", default=None,
                      help="write here instead of stdout")
    prom.add_argument("--prefix", default="repro",
                      help="metric name prefix")
    prom.set_defaults(func=_cmd_obs_prom)

    index = commands.add_parser(
        "index", help="build and inspect ANN retrieval index shards")
    index_commands = index.add_subparsers(dest="index_command",
                                          required=True)

    index_build = index_commands.add_parser(
        "build", help="fit a matcher and build an IVF-PQ shard over "
                      "its image embeddings")
    _add_benchmark_argument(index_build)
    index_build.add_argument("--method", default="hard",
                             choices=("baseline", "hard", "soft", "plus"))
    index_build.add_argument("--epochs", type=_positive_int, default=1,
                             help="training epochs before indexing")
    index_build.add_argument("--lr", type=float, default=1e-3)
    index_build.add_argument("--output", required=True, metavar="SHARD",
                             help="path of the REPROIX1 shard to write")
    index_build.add_argument("--nlist", type=_positive_int, default=64,
                             help="coarse k-means cells")
    index_build.add_argument("--nprobe", type=_positive_int, default=8,
                             help="default cells probed per query")
    index_build.add_argument("--pq-m", type=_positive_int, default=8,
                             help="product-quantizer subspaces")
    index_build.add_argument("--pq-bits", type=int, default=8,
                             choices=range(1, 9), metavar="BITS",
                             help="bits per PQ code (1-8)")
    index_build.add_argument("--refine", type=_positive_int, default=8,
                             help="exact re-rank shortlist, in "
                                  "multiples of k")
    index_build.add_argument("--kmeans-iterations", type=_positive_int,
                             default=15, metavar="N",
                             help="k-means refinement iterations")
    index_build.add_argument("--train-sample", type=_positive_int,
                             default=16384, metavar="N",
                             help="vectors sampled for quantizer "
                                  "training")
    index_build.add_argument("--log-level", default=None,
                             choices=_LOG_LEVELS,
                             help="override REPRO_LOG_LEVEL for this run")
    index_build.set_defaults(func=_cmd_index_build)

    index_stats = index_commands.add_parser(
        "stats", help="describe an index shard and its sections")
    index_stats.add_argument("path", help="REPROIX1 shard to inspect")
    index_stats.add_argument("--verify", action="store_true",
                             help="stream full section digests instead "
                                  "of the lazy structural check")
    index_stats.set_defaults(func=_cmd_index_stats)

    clean = commands.add_parser("clean", help="run the cleaning detectors")
    _add_benchmark_argument(clean)
    clean.add_argument("--inject", type=int, default=3,
                       help="corrupted images to inject")
    clean.add_argument("--z-threshold", type=float, default=1.5)
    clean.set_defaults(func=_cmd_clean)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "benchmark_opt", None):
        args.benchmark = args.benchmark_opt
    if getattr(args, "benchmark", "-") is None and \
            not getattr(args, "connect", None):
        # --connect runs need no local fit, hence no benchmark
        parser.error("a benchmark is required (positional or --benchmark)")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
