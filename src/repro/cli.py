"""Command-line interface: ``python -m repro <command>``.

Three commands cover the common workflows without writing code:

* ``stats`` — print the Table-I-style statistics of a benchmark.
* ``match`` — fit a matcher on a benchmark and report H@k / MRR.
* ``clean`` — run the data-cleaning detectors over a benchmark's
  repository with injected corruption (demo of the future-work module).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]

_BENCHMARKS = ("cub", "sun", "fb2k", "fb6k", "fb10k")


def _load(name: str, seed: int):
    from .datasets import (cub_bundle, fb_bundle, load_cub, load_fbimg,
                           load_sun, sun_bundle)

    if name == "cub":
        return cub_bundle(seed), load_cub(seed)
    if name == "sun":
        return sun_bundle(seed), load_sun(seed)
    return fb_bundle(seed), load_fbimg(name, seed)


def _cmd_stats(args: argparse.Namespace) -> int:
    _, dataset = _load(args.benchmark, args.seed)
    print(f"{dataset.name}:")
    for key, value in dataset.statistics().items():
        print(f"  {key:16s} {value}")
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    from .core import (CrossEM, CrossEMConfig, CrossEMPlus,
                       CrossEMPlusConfig)
    from .datasets import train_test_split

    bundle, dataset = _load(args.benchmark, args.seed)
    split = train_test_split(dataset, args.test_fraction, seed=args.seed)
    aggregator = "sage" if args.benchmark.startswith("fb") else "gnn"
    if args.method == "plus":
        matcher = CrossEMPlus(bundle, CrossEMPlusConfig(
            epochs=args.epochs, lr=args.lr, aggregator=aggregator,
            seed=args.seed))
    else:
        matcher = CrossEM(bundle, CrossEMConfig(
            prompt=args.method, epochs=args.epochs, lr=args.lr,
            aggregator=aggregator, seed=args.seed))
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices)
    result = matcher.evaluate(dataset, list(split.test))
    print(f"{dataset.name} / {args.method}: {result}")
    if matcher.efficiency and matcher.efficiency.seconds_per_epoch:
        print(f"efficiency: {matcher.efficiency}")
    if args.save:
        from .core import save_matcher

        save_matcher(matcher, args.save)
        print(f"saved tuned matcher to {args.save}")
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    import numpy as np

    from .core import CrossEM, CrossEMConfig, clean_repository
    from .vision.image import SyntheticImage

    bundle, dataset = _load(args.benchmark, args.seed)
    rng = np.random.default_rng(args.seed)
    images = list(dataset.images)
    for k in range(args.inject):
        pixels = (rng.random((24, 24, 3)) * 0.05).astype(np.float32)
        images.append(SyntheticImage(pixels, -1, 10_000 + k))
    matcher = CrossEM(bundle, CrossEMConfig(prompt="hard", epochs=0))
    matcher.fit(dataset.graph, images, dataset.entity_vertices)
    flags = clean_repository(matcher, z_threshold=args.z_threshold)
    print(f"{dataset.name}: flagged {len(flags)} of {len(images)} images "
          f"({args.inject} corrupted injected)")
    for flag in flags[:10]:
        injected = flag.image_position >= len(dataset.images)
        print(f"  @{flag.image_position:<5d} score={flag.score:+.3f} "
              f"{'<- injected' if injected else ''}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CrossEM cross-modal entity matching (ICDE 2025 repro)")
    parser.add_argument("--seed", type=int, default=0)
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="print benchmark statistics")
    stats.add_argument("benchmark", choices=_BENCHMARKS)
    stats.set_defaults(func=_cmd_stats)

    match = commands.add_parser("match", help="fit a matcher and evaluate")
    match.add_argument("benchmark", choices=_BENCHMARKS)
    match.add_argument("--method", default="plus",
                       choices=("baseline", "hard", "soft", "plus"))
    match.add_argument("--epochs", type=int, default=10)
    match.add_argument("--lr", type=float, default=1e-3)
    match.add_argument("--test-fraction", type=float, default=0.5)
    match.add_argument("--save", default=None,
                       help="path to save the tuned matcher (.npz)")
    match.set_defaults(func=_cmd_match)

    clean = commands.add_parser("clean", help="run the cleaning detectors")
    clean.add_argument("benchmark", choices=_BENCHMARKS)
    clean.add_argument("--inject", type=int, default=3,
                       help="corrupted images to inject")
    clean.add_argument("--z-threshold", type=float, default=1.5)
    clean.set_defaults(func=_cmd_clean)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
