"""Command-line interface: ``python -m repro <command>``.

Three commands cover the common workflows without writing code:

* ``stats`` — print the Table-I-style statistics of a benchmark.
* ``match`` — fit a matcher on a benchmark and report H@k / MRR.
* ``clean`` — run the data-cleaning detectors over a benchmark's
  repository with injected corruption (demo of the future-work module).

Every command accepts the benchmark positionally or via ``--benchmark``.
``match`` additionally exposes the telemetry layer: ``--log-level``
overrides ``REPRO_LOG_LEVEL`` and ``--metrics-out PATH`` writes the
run's metrics registry plus span profile as JSONL
(:mod:`repro.obs.export` documents the schema).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]

_BENCHMARKS = ("cub", "sun", "fb2k", "fb6k", "fb10k")
_LOG_LEVELS = ("debug", "info", "warning", "error", "off")


def _load(name: str, seed: int):
    from .datasets import (cub_bundle, fb_bundle, load_cub, load_fbimg,
                           load_sun, sun_bundle)

    if name == "cub":
        return cub_bundle(seed), load_cub(seed)
    if name == "sun":
        return sun_bundle(seed), load_sun(seed)
    return fb_bundle(seed), load_fbimg(name, seed)


def _cmd_stats(args: argparse.Namespace) -> int:
    _, dataset = _load(args.benchmark, args.seed)
    print(f"{dataset.name}:")
    for key, value in dataset.statistics().items():
        print(f"  {key:16s} {value}")
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    from .core import (CrossEM, CrossEMConfig, CrossEMPlus,
                       CrossEMPlusConfig)
    from .datasets import train_test_split
    from .obs import (configure_logging, export_jsonl, registry,
                      reset_spans)

    if args.log_level:
        configure_logging(args.log_level)
    # A fresh registry/profile per invocation keeps --metrics-out
    # self-contained when main() is driven in-process (tests, notebooks).
    reg = registry()
    reg.reset()
    reset_spans()

    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2

    bundle, dataset = _load(args.benchmark, args.seed)
    split = train_test_split(dataset, args.test_fraction, seed=args.seed)
    aggregator = "sage" if args.benchmark.startswith("fb") else "gnn"
    if args.method == "plus":
        matcher = CrossEMPlus(bundle, CrossEMPlusConfig(
            epochs=args.epochs, lr=args.lr, aggregator=aggregator,
            seed=args.seed))
    else:
        matcher = CrossEM(bundle, CrossEMConfig(
            prompt=args.method, epochs=args.epochs, lr=args.lr,
            aggregator=aggregator, seed=args.seed))
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                resume_from=args.checkpoint_dir if args.resume else None)
    result = matcher.evaluate(dataset, list(split.test))
    print(f"{dataset.name} / {args.method}: {result}")
    # Efficiency goes through the registry (not just stdout) so
    # --metrics-out captures it even for zero-epoch runs.
    reg.gauge("efficiency.seconds_per_epoch").set(
        matcher.efficiency.seconds_per_epoch)
    reg.gauge("efficiency.peak_memory_mb").set(
        matcher.efficiency.peak_memory_mb)
    if matcher.efficiency.seconds_per_epoch:
        print(f"efficiency: {matcher.efficiency}")
    if args.save:
        from .core import save_matcher

        saved = save_matcher(matcher, args.save)
        print(f"saved tuned matcher to {saved}")
    if args.metrics_out:
        rows = export_jsonl(args.metrics_out,
                            meta={"benchmark": args.benchmark,
                                  "method": args.method,
                                  "epochs": args.epochs,
                                  "seed": args.seed})
        print(f"wrote {rows} metric rows to {args.metrics_out}")
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    import numpy as np

    from .core import CrossEM, CrossEMConfig, clean_repository
    from .vision.image import SyntheticImage

    bundle, dataset = _load(args.benchmark, args.seed)
    rng = np.random.default_rng(args.seed)
    images = list(dataset.images)
    for k in range(args.inject):
        pixels = (rng.random((24, 24, 3)) * 0.05).astype(np.float32)
        images.append(SyntheticImage(pixels, -1, 10_000 + k))
    matcher = CrossEM(bundle, CrossEMConfig(prompt="hard", epochs=0))
    matcher.fit(dataset.graph, images, dataset.entity_vertices)
    flags = clean_repository(matcher, z_threshold=args.z_threshold)
    print(f"{dataset.name}: flagged {len(flags)} of {len(images)} images "
          f"({args.inject} corrupted injected)")
    for flag in flags[:10]:
        injected = flag.image_position >= len(dataset.images)
        print(f"  @{flag.image_position:<5d} score={flag.score:+.3f} "
              f"{'<- injected' if injected else ''}")
    return 0


def _add_benchmark_argument(command: argparse.ArgumentParser) -> None:
    """Accept the benchmark either positionally or as ``--benchmark``."""
    command.add_argument("benchmark", nargs="?", choices=_BENCHMARKS,
                         help="benchmark to run on")
    command.add_argument("--benchmark", dest="benchmark_opt",
                         choices=_BENCHMARKS, help=argparse.SUPPRESS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CrossEM cross-modal entity matching (ICDE 2025 repro)")
    parser.add_argument("--seed", type=int, default=0)
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="print benchmark statistics")
    _add_benchmark_argument(stats)
    stats.set_defaults(func=_cmd_stats)

    match = commands.add_parser("match", help="fit a matcher and evaluate")
    _add_benchmark_argument(match)
    match.add_argument("--method", default="plus",
                       choices=("baseline", "hard", "soft", "plus"))
    match.add_argument("--epochs", type=int, default=10)
    match.add_argument("--lr", type=float, default=1e-3)
    match.add_argument("--test-fraction", type=float, default=0.5)
    match.add_argument("--save", default=None,
                       help="path to save the tuned matcher (.npz)")
    match.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="write crash-safe training checkpoints here")
    match.add_argument("--checkpoint-every", type=int, default=1,
                       metavar="K", help="checkpoint cadence in epochs")
    match.add_argument("--resume", action="store_true",
                       help="resume from the newest valid checkpoint in "
                            "--checkpoint-dir (trains fresh if none)")
    match.add_argument("--log-level", default=None, choices=_LOG_LEVELS,
                       help="override REPRO_LOG_LEVEL for this run")
    match.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write metrics + span profile as JSONL")
    match.set_defaults(func=_cmd_match)

    clean = commands.add_parser("clean", help="run the cleaning detectors")
    _add_benchmark_argument(clean)
    clean.add_argument("--inject", type=int, default=3,
                       help="corrupted images to inject")
    clean.add_argument("--z-threshold", type=float, default=1.5)
    clean.set_defaults(func=_cmd_clean)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "benchmark_opt", None):
        args.benchmark = args.benchmark_opt
    if getattr(args, "benchmark", "-") is None:
        parser.error("a benchmark is required (positional or --benchmark)")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
