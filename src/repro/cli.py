"""Command-line interface: ``python -m repro <command>``.

Five commands cover the common workflows without writing code:

* ``stats`` — print the Table-I-style statistics of a benchmark.
* ``match`` — fit a matcher on a benchmark and report H@k / MRR.
* ``serve`` — fit a matcher, then answer match queries as a resilient
  JSON-lines service on stdin/stdout (deadlines, circuit breakers,
  load shedding, graceful degradation — README "Serving").  Every
  response carries a ``trace_id``; sampled request traces export with
  the metrics.
* ``clean`` — run the data-cleaning detectors over a benchmark's
  repository with injected corruption (demo of the future-work module).
* ``obs`` — offline analysis of exported telemetry: ``obs report``
  renders the span profile and slowest traces, ``obs diff`` compares
  two exports with regression thresholds (non-zero exit on breach, the
  CI gate), ``obs prom`` re-renders an export as OpenMetrics text.

Dataset commands accept the benchmark positionally or via
``--benchmark``.  ``match`` and ``serve`` additionally expose the
telemetry layer: ``--log-level`` overrides ``REPRO_LOG_LEVEL`` and
``--metrics-out PATH`` writes the run's metrics registry, span profile
and sampled traces as JSONL (:mod:`repro.obs.export` documents the
schema); ``serve`` also drops a scrape-ready ``.prom`` snapshot next to
the JSONL.

Numeric options are validated at parse time (fractions in their open
interval, counts at least 1) so a typo is an argparse error naming the
flag, not a stack trace from deep inside training.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]

_BENCHMARKS = ("cub", "sun", "fb2k", "fb6k", "fb10k")
_LOG_LEVELS = ("debug", "info", "warning", "error", "off")


# -- parse-time validators --------------------------------------------------
def _open_fraction(text: str) -> float:
    """A float strictly inside (0, 1)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not 0.0 < value < 1.0:
        raise argparse.ArgumentTypeError(
            f"must be strictly between 0 and 1, got {text}")
    return value


def _positive_int(text: str) -> int:
    """An integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1, got {text}")
    return value


def _positive_float(text: str) -> float:
    """A float > 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {text}")
    return value


def _non_negative_float(text: str) -> float:
    """A float >= 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be non-negative, got {text}")
    return value


def _rate(text: str) -> float:
    """A float in (0, 1] (a failure-rate threshold)."""
    value = _positive_float(text)
    if value > 1.0:
        raise argparse.ArgumentTypeError(f"must be at most 1, got {text}")
    return value


def _unit_interval(text: str) -> float:
    """A float in [0, 1] (a sampling rate; 0 = head-sample nothing)."""
    value = _non_negative_float(text)
    if value > 1.0:
        raise argparse.ArgumentTypeError(f"must be at most 1, got {text}")
    return value


def _load(name: str, seed: int):
    from .datasets import (cub_bundle, fb_bundle, load_cub, load_fbimg,
                           load_sun, sun_bundle)

    if name == "cub":
        return cub_bundle(seed), load_cub(seed)
    if name == "sun":
        return sun_bundle(seed), load_sun(seed)
    return fb_bundle(seed), load_fbimg(name, seed)


def _cmd_stats(args: argparse.Namespace) -> int:
    _, dataset = _load(args.benchmark, args.seed)
    print(f"{dataset.name}:")
    for key, value in dataset.statistics().items():
        print(f"  {key:16s} {value}")
    return 0


def _make_matcher(args: argparse.Namespace, bundle):
    """Build the (unfitted) matcher a command asked for."""
    from .core import (CrossEM, CrossEMConfig, CrossEMPlus,
                       CrossEMPlusConfig)

    aggregator = "sage" if args.benchmark.startswith("fb") else "gnn"
    if args.method == "plus":
        return CrossEMPlus(bundle, CrossEMPlusConfig(
            epochs=args.epochs, lr=args.lr, aggregator=aggregator,
            seed=args.seed))
    return CrossEM(bundle, CrossEMConfig(
        prompt=args.method, epochs=args.epochs, lr=args.lr,
        aggregator=aggregator, seed=args.seed))


def _cmd_match(args: argparse.Namespace) -> int:
    from .datasets import train_test_split
    from .obs import (configure_logging, export_jsonl, registry,
                      reset_spans)

    if args.log_level:
        configure_logging(args.log_level)
    # A fresh registry/profile per invocation keeps --metrics-out
    # self-contained when main() is driven in-process (tests, notebooks).
    reg = registry()
    reg.reset()
    reset_spans()

    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2

    bundle, dataset = _load(args.benchmark, args.seed)
    split = train_test_split(dataset, args.test_fraction, seed=args.seed)
    matcher = _make_matcher(args, bundle)
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                resume_from=args.checkpoint_dir if args.resume else None)
    result = matcher.evaluate(dataset, list(split.test))
    print(f"{dataset.name} / {args.method}: {result}")
    # Efficiency goes through the registry (not just stdout) so
    # --metrics-out captures it even for zero-epoch runs.
    reg.gauge("efficiency.seconds_per_epoch").set(
        matcher.efficiency.seconds_per_epoch)
    reg.gauge("efficiency.peak_memory_mb").set(
        matcher.efficiency.peak_memory_mb)
    if matcher.efficiency.seconds_per_epoch:
        print(f"efficiency: {matcher.efficiency}")
    if args.save:
        from .core import save_matcher

        saved = save_matcher(matcher, args.save)
        print(f"saved tuned matcher to {saved}")
    if args.metrics_out:
        rows = export_jsonl(args.metrics_out,
                            meta={"benchmark": args.benchmark,
                                  "method": args.method,
                                  "epochs": args.epochs,
                                  "seed": args.seed})
        print(f"wrote {rows} metric rows to {args.metrics_out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .obs import (configure_logging, export_jsonl, export_prom,
                      registry, reset_spans, trace_recorder)
    from .serve import MatchService, ServeConfig, serve_loop

    if args.log_level:
        configure_logging(args.log_level)
    reg = registry()
    reg.reset()
    reset_spans()
    trace_recorder().reset()

    bundle, dataset = _load(args.benchmark, args.seed)
    matcher = _make_matcher(args, bundle)
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices)
    config = ServeConfig(
        capacity=args.capacity, workers=args.workers,
        default_budget_ms=args.default_budget_ms,
        top_k_default=args.top_k, full_floor_ms=args.full_floor_ms,
        stale_capacity=args.stale_capacity,
        breaker_window=args.breaker_window,
        breaker_failure_threshold=args.breaker_threshold,
        breaker_min_calls=args.breaker_min_calls,
        breaker_cooldown_ms=args.breaker_cooldown_ms,
        trace_sample_rate=args.trace_sample_rate,
        trace_capacity=args.trace_capacity)
    service = MatchService(matcher, config=config).warmup()
    # Diagnostics go to stderr; stdout carries only response JSONL.
    print(f"serving {dataset.name} / {args.method}: "
          f"{len(matcher.vertex_ids)} vertices, {len(matcher.images)} "
          f"images — one JSON request per stdin line", file=sys.stderr)
    served = serve_loop(service, sys.stdin, sys.stdout)
    print(f"served {served} responses", file=sys.stderr)
    if args.metrics_out:
        rows = export_jsonl(args.metrics_out,
                            meta={"benchmark": args.benchmark,
                                  "method": args.method,
                                  "command": "serve",
                                  "seed": args.seed})
        print(f"wrote {rows} metric rows to {args.metrics_out}",
              file=sys.stderr)
        prom_path = export_prom(Path(args.metrics_out).with_suffix(".prom"))
        print(f"wrote OpenMetrics snapshot to {prom_path}", file=sys.stderr)
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from .obs.diff import load_rows
    from .obs.report import format_report

    print(format_report(load_rows(args.path), top=args.top))
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from .obs.diff import (DEFAULT_WATCH, diff_rows, find_regressions,
                           format_diff, load_rows)

    entries = diff_rows(load_rows(args.old), load_rows(args.new))
    watch = tuple(args.watch) if args.watch else DEFAULT_WATCH
    regressions = find_regressions(entries, threshold_pct=args.threshold_pct,
                                   min_delta=args.min_delta, watch=watch)
    print(format_diff(entries, regressions, changed_only=args.changed_only))
    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed past "
              f"+{args.threshold_pct:g}% (min delta {args.min_delta:g}):",
              file=sys.stderr)
        for entry in regressions:
            print(f"  {entry.name}: {entry.old:.6g} -> {entry.new:.6g} "
                  f"({entry.pct:+.1f}%)", file=sys.stderr)
        return 1
    return 0


def _cmd_obs_prom(args: argparse.Namespace) -> int:
    from .iosafe import atomic_write_bytes
    from .obs.diff import load_rows
    from .obs.promtext import render_openmetrics

    text = render_openmetrics(load_rows(args.path), prefix=args.prefix)
    if args.output:
        atomic_write_bytes(args.output, text.encode("utf-8"))
        print(f"wrote OpenMetrics snapshot to {args.output}",
              file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    import numpy as np

    from .core import CrossEM, CrossEMConfig, clean_repository
    from .vision.image import SyntheticImage

    bundle, dataset = _load(args.benchmark, args.seed)
    rng = np.random.default_rng(args.seed)
    images = list(dataset.images)
    for k in range(args.inject):
        pixels = (rng.random((24, 24, 3)) * 0.05).astype(np.float32)
        images.append(SyntheticImage(pixels, -1, 10_000 + k))
    matcher = CrossEM(bundle, CrossEMConfig(prompt="hard", epochs=0))
    matcher.fit(dataset.graph, images, dataset.entity_vertices)
    flags = clean_repository(matcher, z_threshold=args.z_threshold)
    print(f"{dataset.name}: flagged {len(flags)} of {len(images)} images "
          f"({args.inject} corrupted injected)")
    for flag in flags[:10]:
        injected = flag.image_position >= len(dataset.images)
        print(f"  @{flag.image_position:<5d} score={flag.score:+.3f} "
              f"{'<- injected' if injected else ''}")
    return 0


def _add_benchmark_argument(command: argparse.ArgumentParser) -> None:
    """Accept the benchmark either positionally or as ``--benchmark``."""
    command.add_argument("benchmark", nargs="?", choices=_BENCHMARKS,
                         help="benchmark to run on")
    command.add_argument("--benchmark", dest="benchmark_opt",
                         choices=_BENCHMARKS, help=argparse.SUPPRESS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CrossEM cross-modal entity matching (ICDE 2025 repro)")
    parser.add_argument("--seed", type=int, default=0)
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="print benchmark statistics")
    _add_benchmark_argument(stats)
    stats.set_defaults(func=_cmd_stats)

    match = commands.add_parser("match", help="fit a matcher and evaluate")
    _add_benchmark_argument(match)
    match.add_argument("--method", default="plus",
                       choices=("baseline", "hard", "soft", "plus"))
    match.add_argument("--epochs", type=_positive_int, default=10)
    match.add_argument("--lr", type=float, default=1e-3)
    match.add_argument("--test-fraction", type=_open_fraction, default=0.5)
    match.add_argument("--save", default=None,
                       help="path to save the tuned matcher (.npz)")
    match.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="write crash-safe training checkpoints here")
    match.add_argument("--checkpoint-every", type=_positive_int, default=1,
                       metavar="K", help="checkpoint cadence in epochs")
    match.add_argument("--resume", action="store_true",
                       help="resume from the newest valid checkpoint in "
                            "--checkpoint-dir (trains fresh if none)")
    match.add_argument("--log-level", default=None, choices=_LOG_LEVELS,
                       help="override REPRO_LOG_LEVEL for this run")
    match.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write metrics + span profile as JSONL")
    match.set_defaults(func=_cmd_match)

    serve = commands.add_parser(
        "serve", help="answer match queries as a JSON-lines service")
    _add_benchmark_argument(serve)
    serve.add_argument("--method", default="plus",
                       choices=("baseline", "hard", "soft", "plus"))
    serve.add_argument("--epochs", type=_positive_int, default=1,
                       help="training epochs before serving starts")
    serve.add_argument("--lr", type=float, default=1e-3)
    serve.add_argument("--top-k", type=_positive_int, default=1,
                       help="matches returned when a request names none")
    serve.add_argument("--capacity", type=_positive_int, default=16,
                       help="work-queue slots before requests are shed")
    serve.add_argument("--workers", type=_positive_int, default=1,
                       help="worker threads draining the queue")
    serve.add_argument("--default-budget-ms", type=_positive_float,
                       default=None, metavar="MS",
                       help="deadline applied to requests without one")
    serve.add_argument("--full-floor-ms", type=_non_negative_float,
                       default=0.0, metavar="MS",
                       help="skip the full tier when less budget remains")
    serve.add_argument("--stale-capacity", type=_positive_int, default=1024,
                       help="per-vertex stale results kept for fallback")
    serve.add_argument("--breaker-window", type=_positive_int, default=8,
                       help="circuit-breaker sliding window (calls)")
    serve.add_argument("--breaker-threshold", type=_rate, default=0.5,
                       metavar="RATE",
                       help="failure rate in the window that opens it")
    serve.add_argument("--breaker-min-calls", type=_positive_int, default=3,
                       help="calls in the window before it can open")
    serve.add_argument("--breaker-cooldown-ms", type=_positive_float,
                       default=2000.0, metavar="MS",
                       help="open time before a half-open probe")
    serve.add_argument("--trace-sample-rate", type=_unit_interval,
                       default=1.0, metavar="RATE",
                       help="head-sampling rate for request traces "
                            "(errors/degraded/deadline always kept)")
    serve.add_argument("--trace-capacity", type=_positive_int, default=256,
                       help="sampled traces retained in memory")
    serve.add_argument("--log-level", default=None, choices=_LOG_LEVELS,
                       help="override REPRO_LOG_LEVEL for this run")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write metrics + spans + traces as JSONL on "
                            "exit (plus an OpenMetrics .prom snapshot)")
    serve.set_defaults(func=_cmd_serve)

    obs = commands.add_parser(
        "obs", help="analyse exported telemetry (report / diff / prom)")
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)

    report = obs_commands.add_parser(
        "report", help="span profile + slowest traces of one export")
    report.add_argument("path", help="metrics JSONL file to report on")
    report.add_argument("--top", type=_positive_int, default=5,
                        help="slowest traces to render")
    report.set_defaults(func=_cmd_obs_report)

    diff = obs_commands.add_parser(
        "diff", help="compare two exports; non-zero exit on regression")
    diff.add_argument("old", help="baseline export (JSONL or bench JSON)")
    diff.add_argument("new", help="candidate export (JSONL or bench JSON)")
    diff.add_argument("--threshold-pct", type=_positive_float, default=25.0,
                      metavar="PCT",
                      help="relative increase on a watched metric that "
                           "counts as a regression")
    diff.add_argument("--min-delta", type=_non_negative_float, default=0.0,
                      metavar="ABS",
                      help="ignore increases smaller than this (noise "
                           "floor for micro-benchmarks)")
    diff.add_argument("--watch", action="append", default=None,
                      metavar="GLOB",
                      help="metric-name glob where bigger is worse "
                           "(repeatable; default: time-shaped names)")
    diff.add_argument("--changed-only", action="store_true",
                      help="hide metrics whose value did not move")
    diff.set_defaults(func=_cmd_obs_diff)

    prom = obs_commands.add_parser(
        "prom", help="render an export as OpenMetrics text")
    prom.add_argument("path", help="metrics JSONL file (or bench JSON)")
    prom.add_argument("-o", "--output", default=None,
                      help="write here instead of stdout")
    prom.add_argument("--prefix", default="repro",
                      help="metric name prefix")
    prom.set_defaults(func=_cmd_obs_prom)

    clean = commands.add_parser("clean", help="run the cleaning detectors")
    _add_benchmark_argument(clean)
    clean.add_argument("--inject", type=int, default=3,
                       help="corrupted images to inject")
    clean.add_argument("--z-threshold", type=float, default=1.5)
    clean.set_defaults(func=_cmd_clean)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "benchmark_opt", None):
        args.benchmark = args.benchmark_opt
    if getattr(args, "benchmark", "-") is None:
        parser.error("a benchmark is required (positional or --benchmark)")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
