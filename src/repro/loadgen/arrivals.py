"""Arrival processes: *when* requests are offered to the service.

Every generator here returns a list of intended arrival *offsets* in
seconds from the start of the run.  The schedule is computed up front
(before a single request is sent) because the harness is **open-loop**:
when the service stalls, the next arrival's intended time does not move
— that is precisely what lets the recorder charge queueing delay to the
service instead of silently pausing the workload (coordinated
omission; see DESIGN.md §11).

All randomness flows through an injectable ``random.Random``, so a
seed pins the entire offered workload — identical schedules across the
two sides of an A/B run or a CI re-run.

* :func:`uniform_arrivals` — deterministic, evenly spaced.  No
  variance at all, which makes it the right process for CI smoke
  sweeps and fake-clock tests.
* :func:`poisson_arrivals` — exponential inter-arrival gaps, the
  classic memoryless open-loop model of many independent clients.
* :func:`bursty_arrivals` — an on/off modulated-rate Poisson process:
  alternating phases at a burst rate and a (possibly zero) base rate.
  The memorylessness of the exponential makes truncating a gap at a
  phase boundary statistically exact, not an approximation.
* :func:`replay_offsets` / :func:`schedule_from_traces` — replay the
  inter-arrival spacing (and query shapes) recorded in a schema-v2
  trace export, optionally sped up.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["uniform_arrivals", "poisson_arrivals", "bursty_arrivals",
           "replay_offsets", "schedule_from_traces"]


def uniform_arrivals(rate: float, duration: float) -> List[float]:
    """Evenly spaced offsets at ``rate`` requests/second."""
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    gap = 1.0 / rate
    count = int(duration * rate)
    return [i * gap for i in range(count)]


def poisson_arrivals(rate: float, duration: float,
                     rng: random.Random) -> List[float]:
    """Poisson-process offsets: i.i.d. exponential gaps at ``rate``."""
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    offsets: List[float] = []
    t = rng.expovariate(rate)
    while t < duration:
        offsets.append(t)
        t += rng.expovariate(rate)
    return offsets


def bursty_arrivals(base_rate: float, burst_rate: float, on_seconds: float,
                    off_seconds: float, duration: float,
                    rng: random.Random) -> List[float]:
    """On/off modulated-rate Poisson offsets.

    The run alternates an *on* phase at ``burst_rate`` with an *off*
    phase at ``base_rate`` (0 silences the off phase entirely),
    starting with *on*.  Within a phase arrivals are Poisson; at a
    phase boundary the pending gap is simply discarded and redrawn at
    the new rate — exact for exponential gaps, since the time already
    waited carries no information (memorylessness).
    """
    if base_rate < 0 or burst_rate <= 0:
        raise ValueError("burst_rate must be positive, base_rate >= 0")
    if on_seconds <= 0 or off_seconds <= 0 or duration <= 0:
        raise ValueError("phase lengths and duration must be positive")
    offsets: List[float] = []
    t, phase_end, on = 0.0, on_seconds, True
    while t < duration:
        rate = burst_rate if on else base_rate
        if rate == 0.0:
            t = phase_end
        else:
            t += rng.expovariate(rate)
            if t < min(phase_end, duration):
                offsets.append(t)
                continue
            t = min(t, phase_end)
        if t >= phase_end:
            t = phase_end
            on = not on
            phase_end += on_seconds if on else off_seconds
    return offsets


def replay_offsets(starts: Sequence[float],
                   speedup: float = 1.0) -> List[float]:
    """Recorded clock readings → offsets from the first, compressed by
    ``speedup`` (2.0 replays the trace at twice the recorded rate)."""
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    if not starts:
        return []
    ordered = sorted(float(s) for s in starts)
    epoch = ordered[0]
    return [(s - epoch) / speedup for s in ordered]


def _request_shape(trace_row: dict) -> Optional[dict]:
    """The query shape a serve trace recorded, if any.

    ``MatchService`` appends a ``request`` event (vertex / top_k /
    budget_ms) to the root span of every successfully parsed request;
    traces without one (parse failures, sheds, pre-event exports)
    cannot be replayed and are skipped.
    """
    spans = trace_row.get("spans") or {}
    for event in spans.get("events", ()):
        if event.get("kind") == "request":
            attrs = event.get("attrs", {})
            if "vertex" not in attrs:
                return None
            request = {"vertex": attrs["vertex"]}
            if attrs.get("top_k") is not None:
                request["top_k"] = attrs["top_k"]
            if attrs.get("budget_ms") is not None:
                request["budget_ms"] = attrs["budget_ms"]
            return request
    return None


def schedule_from_traces(rows: Sequence[dict], *, speedup: float = 1.0
                         ) -> Tuple[List[Tuple[float, dict]], int]:
    """Replayable ``(offset, request)`` pairs from exported trace rows.

    Uses each trace's recorded ``started`` clock reading for spacing
    (the absolute values are process-relative; only the gaps matter)
    and its ``request`` event for the query shape.  Returns the
    schedule plus the number of trace rows that could not be replayed.
    """
    entries: List[Tuple[float, dict]] = []
    skipped = 0
    for row in rows:
        if row.get("type") != "trace":
            continue
        started = row.get("started")
        request = _request_shape(row)
        if started is None or request is None:
            skipped += 1
            continue
        entries.append((float(started), request))
    entries.sort(key=lambda entry: entry[0])
    offsets = replay_offsets([started for started, _ in entries], speedup)
    return ([(offset, request) for offset, (_, request)
             in zip(offsets, entries)], skipped)
