"""Query mixes: *what* the offered requests look like.

Real product-matching traffic is not uniform over the catalog: a few
hot entities take most of the queries while a long tail is touched
rarely, and a fraction of the stream is dirty — ids that resolve to
nothing, odd ``top_k`` asks (APrompt4EM's generalized-EM framing names
exactly these gap cases).  Driving a serve layer with uniform queries
over-reports its capacity, because every cache tier looks artificially
effective when nothing is cold.

:class:`QueryMix` samples that shape deterministically:

* **heavy-tailed popularity** — vertices are ranked by a seeded
  shuffle and drawn Zipf-like with weight ``(rank+1)^-skew``; skew 0
  degenerates to uniform, ~1.1 matches the classic web-traffic fit;
* **mixed top_k** — weighted choice over a handful of k values, so
  the batch shapes downstream vary like real clients';
* **dirty fraction** — with probability ``bad_fraction`` the query
  names a vertex outside the catalog, exercising the ``bad_request``
  path under load instead of only in unit tests.

All draws come from one seeded ``random.Random``, so a (seed,
vertices) pair pins the exact request sequence.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["QueryMix"]


class QueryMix:
    """Deterministic heavy-tailed request generator over a vertex set."""

    def __init__(self, vertices: Sequence[int], *,
                 skew: float = 1.1,
                 top_k_weights: Sequence[Tuple[int, float]] = ((1, 0.7),
                                                              (3, 0.2),
                                                              (5, 0.1)),
                 budget_ms: Optional[float] = None,
                 bad_fraction: float = 0.0,
                 rng: Optional[random.Random] = None) -> None:
        if not vertices:
            raise ValueError("a query mix needs at least one vertex")
        if skew < 0:
            raise ValueError("skew must be non-negative")
        if not 0.0 <= bad_fraction <= 1.0:
            raise ValueError("bad_fraction must be in [0, 1]")
        if budget_ms is not None and budget_ms <= 0:
            raise ValueError("budget_ms must be positive")
        if not top_k_weights or any(k < 1 or w < 0
                                    for k, w in top_k_weights):
            raise ValueError("top_k_weights needs positive ks and "
                             "non-negative weights")
        self._rng = rng if rng is not None else random.Random(0)
        self.budget_ms = budget_ms
        self.bad_fraction = float(bad_fraction)
        # popularity ranking: a seeded shuffle decides *which* vertices
        # are hot, the Zipf weights decide *how* hot
        ranked = list(vertices)
        self._rng.shuffle(ranked)
        self._ranked = ranked
        weights = [(rank + 1) ** -skew for rank in range(len(ranked))]
        self._cum_popularity = list(itertools.accumulate(weights))
        self._top_ks = [k for k, _ in top_k_weights]
        self._cum_top_k = list(itertools.accumulate(
            w for _, w in top_k_weights))
        if self._cum_top_k[-1] <= 0:
            raise ValueError("top_k_weights must not all be zero")

    def _weighted(self, cumulative: List[float]) -> int:
        point = self._rng.random() * cumulative[-1]
        return bisect.bisect_right(cumulative, point)

    def sample(self) -> dict:
        """One request body (without an id; the harness assigns those)."""
        request: Dict[str, object] = {}
        if self.bad_fraction and self._rng.random() < self.bad_fraction:
            # an id guaranteed outside any catalog: vertices are >= 0
            request["vertex"] = -1 - self._rng.randrange(1 << 16)
        else:
            index = min(self._weighted(self._cum_popularity),
                        len(self._ranked) - 1)
            request["vertex"] = int(self._ranked[index])
        index = min(self._weighted(self._cum_top_k),
                    len(self._top_ks) - 1)
        request["top_k"] = int(self._top_ks[index])
        if self.budget_ms is not None:
            request["budget_ms"] = self.budget_ms
        return request
