"""What a load run measured: outcomes, latency distributions, artifact.

The harness classifies every response into exactly one outcome off the
fields the serve layer already emits — no side channel:

* ``ok`` — ``ok: true`` and not degraded;
* ``degraded`` — answered below the full tier (``degraded: true``);
* ``shed`` — a typed ``overloaded`` rejection from admission control;
* ``deadline`` — a typed ``deadline_exceeded`` error;
* ``error`` — any other structured error (bad request, internal);
* ``lost`` — submitted but never answered before shutdown (should be
  zero; anything else is a harness or drain bug worth seeing).

Latency is **always measured from the request's intended arrival
time** on the schedule, never from when the harness managed to send
it.  Every sample lands in a fixed-bucket log-scale
:class:`~repro.obs.hist.BucketHistogram` (exact counts, mergeable, no
reservoir distortion in the tail) — one overall, plus one per outcome
so "how slow were the degraded answers" is answerable after the fact.

A report serialises to a JSON artifact (``repro load run --output``)
and publishes into the metrics registry (``load.*`` instruments, with
the latency histogram bucket-backed so the ``.prom`` export carries a
classic ``le`` family).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional

from ..obs.hist import DEFAULT_LATENCY_BOUNDS_MS, BucketHistogram

__all__ = ["OUTCOMES", "classify_response", "Sample", "LoadReport"]

REPORT_SCHEMA = "repro.loadreport/1"

OUTCOMES = ("ok", "degraded", "shed", "deadline", "error", "lost")

#: outcomes that count as "the service answered" for availability
ANSWERED = ("ok", "degraded")


def classify_response(response: dict) -> str:
    """Map one serve-layer response onto an outcome (see module doc)."""
    if response.get("ok"):
        return "degraded" if response.get("degraded") else "ok"
    code = (response.get("error") or {}).get("type")
    if code == "overloaded":
        return "shed"
    if code == "deadline_exceeded":
        return "deadline"
    return "error"


class Sample(NamedTuple):
    """One recorded request (kept in memory, not in the artifact)."""

    intended_offset: float
    outcome: str
    latency_ms: float


class LoadReport:
    """Thread-safe accumulator for one load run's measurements."""

    def __init__(self, *, meta: Optional[dict] = None,
                 bounds=DEFAULT_LATENCY_BOUNDS_MS) -> None:
        self.meta = dict(meta or {})
        self._bounds = list(bounds)
        self.latency = BucketHistogram(self._bounds)
        self.by_outcome: Dict[str, BucketHistogram] = {}
        self.outcomes: Dict[str, int] = {outcome: 0 for outcome in OUTCOMES}
        self.samples: List[Sample] = []
        self.offered = 0
        self.max_lag_ms = 0.0
        self.duration_s = 0.0
        self._lock = threading.Lock()

    # -- recording (called from the injector and worker emit threads) ------
    def note_offered(self) -> None:
        with self._lock:
            self.offered += 1

    def note_lag(self, lag_seconds: float) -> None:
        """How far behind schedule the injector fell when dispatching —
        the open-loop health indicator (a large lag means the *harness*
        could not keep up, and the measurement is suspect)."""
        with self._lock:
            self.max_lag_ms = max(self.max_lag_ms, lag_seconds * 1e3)

    def record(self, intended_offset: float, outcome: str,
               latency_ms: float) -> None:
        if outcome not in self.outcomes:
            raise ValueError(f"unknown outcome {outcome!r}")
        latency_ms = max(0.0, float(latency_ms))
        with self._lock:
            self.outcomes[outcome] += 1
            self.latency.observe(latency_ms)
            hist = self.by_outcome.get(outcome)
            if hist is None:
                hist = self.by_outcome[outcome] = \
                    BucketHistogram(self._bounds)
            hist.observe(latency_ms)
            self.samples.append(Sample(intended_offset, outcome,
                                       latency_ms))

    def finish(self, duration_s: float) -> "LoadReport":
        with self._lock:
            self.duration_s = float(duration_s)
        return self

    # -- derived views ------------------------------------------------------
    def answered_latency(self) -> BucketHistogram:
        """The latency distribution of answered (ok + degraded)
        requests — what the SLO latency objectives are judged on."""
        merged = BucketHistogram(self._bounds)
        for outcome in ANSWERED:
            hist = self.by_outcome.get(outcome)
            if hist is not None:
                merged.merge(hist)
        return merged

    def summary(self) -> dict:
        """The flat dict the SLO engine and frontier sweeps consume."""
        with self._lock:
            outcomes = dict(self.outcomes)
            offered = self.offered
            duration = self.duration_s
            max_lag = self.max_lag_ms
        answered = sum(outcomes[o] for o in ANSWERED)
        latency = self.answered_latency()
        fraction = (lambda n: n / offered if offered else 0.0)
        return {
            "offered": offered,
            "answered": answered,
            "outcomes": outcomes,
            "availability": fraction(answered),
            "degraded_fraction": fraction(outcomes["degraded"]),
            "shed_fraction": fraction(outcomes["shed"]),
            "error_fraction": fraction(outcomes["error"]
                                       + outcomes["deadline"]
                                       + outcomes["lost"]),
            "duration_s": duration,
            "offered_rate": offered / duration if duration else 0.0,
            "achieved_rate": answered / duration if duration else 0.0,
            "p50_ms": latency.quantile(50.0),
            "p95_ms": latency.quantile(95.0),
            "p99_ms": latency.quantile(99.0),
            "mean_ms": latency.mean,
            "max_ms": latency.max if latency.count else 0.0,
            "max_lag_ms": max_lag,
        }

    # -- artifact & registry publication ------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "meta": self.meta,
            "summary": self.summary(),
            "latency": self.latency.to_dict(),
            "latency_by_outcome": {
                outcome: hist.to_dict()
                for outcome, hist in sorted(self.by_outcome.items())},
        }

    def save(self, path) -> Path:
        from ..iosafe import atomic_write_bytes

        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        return atomic_write_bytes(Path(path), payload.encode("utf-8"))

    def publish(self, reg=None) -> None:
        """Mirror the run into the metrics registry (``load.*``) so the
        JSONL/OpenMetrics exporters carry it with everything else."""
        from ..obs import registry

        reg = reg if reg is not None else registry()
        summary = self.summary()
        reg.counter("load.offered_total").inc(summary["offered"])
        for outcome, count in summary["outcomes"].items():
            reg.counter(f"load.outcome.{outcome}").inc(count)
        reg.gauge("load.offered_rate").set(summary["offered_rate"])
        reg.gauge("load.achieved_rate").set(summary["achieved_rate"])
        reg.gauge("load.availability").set(summary["availability"])
        reg.gauge("load.max_lag_ms").set(summary["max_lag_ms"])
        reg.histogram("load.latency_ms", buckets=self._bounds) \
            .merge_bucket(self.latency)
