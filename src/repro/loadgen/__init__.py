"""Open-loop load generation for the serving layer (``repro load``).

The instrument that makes scale claims falsifiable: drives
:class:`~repro.serve.service.MatchService` (in-process or over the
``serve_loop`` pipes) with realistic arrival processes and query
mixes, and records latency without coordinated omission.

* :mod:`repro.loadgen.arrivals` — Poisson, bursty (on/off modulated
  rate), uniform, and trace-replay arrival schedules.
* :mod:`repro.loadgen.mix` — heavy-tailed (Zipf) query popularity,
  mixed ``top_k``, optional dirty-query fraction.
* :mod:`repro.loadgen.harness` — the open-loop driver: every latency
  is measured from the request's *intended* arrival time on an
  injectable fake-clock-testable schedule.
* :mod:`repro.loadgen.report` — outcome classification
  (ok/degraded/shed/deadline/error/lost), exact mergeable
  fixed-bucket latency histograms, JSON artifacts, registry
  publication.
* :mod:`repro.loadgen.socketdrv` — the same harness pointed at a
  networked server (``repro serve --listen``) over one TCP
  connection, plus the ``info`` handshake that replaces local
  fitting for remote runs.

SLO evaluation and latency/throughput frontier sweeps over these runs
live in :mod:`repro.obs.slo` and :mod:`repro.obs.frontier`.
See DESIGN.md §11 for why open-loop + intended-start timing is the
only honest way to measure an overloaded service.
"""

from .arrivals import (bursty_arrivals, poisson_arrivals, replay_offsets,
                       schedule_from_traces, uniform_arrivals)
from .harness import LoadConfig, LoadHarness, build_schedule, run_schedule
from .mix import QueryMix
from .report import OUTCOMES, LoadReport, Sample, classify_response
from .socketdrv import SocketDriver, fetch_info, parse_address, probe_info

__all__ = [
    "uniform_arrivals", "poisson_arrivals", "bursty_arrivals",
    "replay_offsets", "schedule_from_traces",
    "QueryMix",
    "LoadConfig", "LoadHarness", "build_schedule", "run_schedule",
    "OUTCOMES", "LoadReport", "Sample", "classify_response",
    "SocketDriver", "fetch_info", "parse_address", "probe_info",
]
