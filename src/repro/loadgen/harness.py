"""The open-loop load harness: schedule up front, measure from intent.

**Open-loop vs closed-loop.**  A closed-loop driver sends a request,
waits for the answer, then sends the next: the workload politely slows
down exactly when the service struggles, so a 100 ms stall costs *one*
sample 100 ms and every other sample looks great.  Real traffic is not
polite — independent clients keep arriving during a stall.  This
harness is open-loop: the full schedule of intended arrival times is
computed before the run (``repro.loadgen.arrivals``), and a request
whose slot has passed is dispatched immediately rather than skipped.

**Coordinated omission.**  Recording service time (response minus
*send*) under that backlog still hides the stall: queued requests were
delayed, but their delay is charged to nobody.  Every latency here is
measured from the request's **intended** arrival time on the schedule
— ``completion − intended_start`` — so queueing delay lands on the
requests that actually suffered it.  A single 100 ms stall therefore
shows up as a monotonically decreasing latency ramp across the queued
requests (100, 90, 80, … ms at 100 req/s), exactly what a client at
the original arrival times would have experienced.

The clock and sleeper are injectable, so the whole schedule semantics
— lag accounting, intended-start timing, the recovery ramp — is
provable on a deterministic fake clock (see
``tests/loadgen/test_harness.py``).

Two drive modes, chosen by the target's shape:

* a **callable** ``request -> response`` (e.g. ``MatchService.handle``
  or a stub) is driven synchronously — one in flight, but lateness is
  still accounted open-loop;
* a :class:`~repro.serve.service.MatchService` is driven through its
  worker pool (``start``/``submit``/``shutdown``): dispatch never
  waits for completions, sheds are recorded from the rejection on the
  submit path, and responses are matched back to their intended times
  by request id as the workers emit them.
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import Callable, List, Optional, Sequence, Tuple

from .arrivals import bursty_arrivals, poisson_arrivals, uniform_arrivals
from .mix import QueryMix
from .report import LoadReport, classify_response

__all__ = ["LoadConfig", "LoadHarness", "build_schedule", "run_schedule"]

PROCESSES = ("poisson", "bursty", "uniform", "replay")

#: (intended offset seconds, request body) — the unit of offered work
Scheduled = Tuple[float, dict]


@dataclasses.dataclass
class LoadConfig:
    """Shape of one offered workload (arrival process + query mix)."""

    #: arrival process: poisson | bursty | uniform | replay
    process: str = "poisson"
    #: offered rate in requests/second (base rate for bursty)
    rate: float = 50.0
    #: run length in seconds (replay: taken from the trace)
    duration: float = 1.0
    #: workload seed — pins arrivals *and* the query mix
    seed: int = 0
    #: bursty: on-phase rate (default 4x the base rate)
    burst_rate: Optional[float] = None
    #: bursty: phase lengths in seconds
    on_seconds: float = 0.25
    off_seconds: float = 0.25
    #: heavy-tail exponent of the vertex popularity (0 = uniform)
    skew: float = 1.1
    #: per-request deadline attached to every query (None = unbounded)
    budget_ms: Optional[float] = None
    #: fraction of dirty queries (unknown vertices)
    bad_fraction: float = 0.0
    #: replay process: the pre-built (offset, request) schedule
    replay: Optional[Sequence[Scheduled]] = None

    def __post_init__(self) -> None:
        if self.process not in PROCESSES:
            raise ValueError(f"unknown arrival process {self.process!r}; "
                             f"expected one of {PROCESSES}")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.burst_rate is not None and self.burst_rate <= 0:
            raise ValueError("burst_rate must be positive")
        if self.on_seconds <= 0 or self.off_seconds <= 0:
            raise ValueError("phase lengths must be positive")
        if not 0.0 <= self.bad_fraction <= 1.0:
            raise ValueError("bad_fraction must be in [0, 1]")
        if self.skew < 0:
            raise ValueError("skew must be non-negative")
        if self.budget_ms is not None and self.budget_ms <= 0:
            raise ValueError("budget_ms must be positive")
        if self.process == "replay" and self.replay is None:
            raise ValueError("process 'replay' needs a replay schedule")

    def describe(self) -> dict:
        """The config as artifact metadata (replay schedule elided)."""
        doc = dataclasses.asdict(self)
        doc["replay"] = None if self.replay is None else len(self.replay)
        return doc


def build_schedule(config: LoadConfig,
                   vertices: Sequence[int]) -> List[Scheduled]:
    """The full offered workload, deterministic in ``config.seed``.

    Arrival offsets and the query mix draw from *separate* seeded RNG
    streams, so changing the arrival process never reshuffles which
    queries are asked — A/B runs compare like with like.
    """
    if config.process == "replay":
        schedule = [(float(offset), dict(request))
                    for offset, request in config.replay]
    else:
        # string seeds hash deterministically inside random.Random
        # (unlike tuple hashing, which PYTHONHASHSEED randomises)
        arrivals_rng = random.Random(f"arrivals:{config.seed}")
        if config.process == "uniform":
            offsets = uniform_arrivals(config.rate, config.duration)
        elif config.process == "poisson":
            offsets = poisson_arrivals(config.rate, config.duration,
                                       arrivals_rng)
        else:
            burst = config.burst_rate if config.burst_rate is not None \
                else 4.0 * config.rate
            offsets = bursty_arrivals(config.rate, burst,
                                      config.on_seconds,
                                      config.off_seconds,
                                      config.duration, arrivals_rng)
        mix = QueryMix(vertices, skew=config.skew,
                       budget_ms=config.budget_ms,
                       bad_fraction=config.bad_fraction,
                       rng=random.Random(f"mix:{config.seed}"))
        schedule = [(offset, mix.sample()) for offset in offsets]
    for index, (_, request) in enumerate(schedule):
        request["id"] = f"lg-{index}"
    return schedule


def run_schedule(target, schedule: Sequence[Scheduled], *,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 meta: Optional[dict] = None) -> LoadReport:
    """Drive ``schedule`` into ``target`` and measure from intent."""
    report = LoadReport(meta=meta)
    if callable(target):
        _run_sync(target, schedule, report, clock, sleep)
    else:
        _run_service(target, schedule, report, clock, sleep)
    return report


def _wait_until(intended: float, report: LoadReport,
                clock: Callable[[], float],
                sleep: Callable[[float], None]) -> None:
    now = clock()
    if now < intended:
        sleep(intended - now)
    else:
        # behind schedule: dispatch immediately, never skip — the
        # request still exists, and its latency clock already started
        report.note_lag(now - intended)


def _run_sync(send: Callable[[dict], dict], schedule: Sequence[Scheduled],
              report: LoadReport, clock, sleep) -> None:
    epoch = clock()
    for offset, request in schedule:
        intended = epoch + offset
        _wait_until(intended, report, clock, sleep)
        report.note_offered()
        response = send(request)
        report.record(offset, classify_response(response),
                      (clock() - intended) * 1e3)
    report.finish(clock() - epoch)


def _run_service(service, schedule: Sequence[Scheduled],
                 report: LoadReport, clock, sleep) -> None:
    intended_by_id = {}
    offsets_by_id = {}

    def emit(response: dict) -> None:
        end = clock()
        request_id = response.get("id")
        intended = intended_by_id.pop(request_id, None)
        if intended is None:
            return  # not ours (or already accounted): ignore
        report.record(offsets_by_id.pop(request_id),
                      classify_response(response),
                      (end - intended) * 1e3)

    service.start(emit)
    epoch = clock()
    try:
        for offset, request in schedule:
            intended = epoch + offset
            _wait_until(intended, report, clock, sleep)
            request_id = request["id"]
            intended_by_id[request_id] = intended
            offsets_by_id[request_id] = offset
            report.note_offered()
            rejection = service.submit(request)
            if rejection is not None:  # shed on the admission path
                emit(rejection)
    finally:
        service.shutdown()
    report.finish(clock() - epoch)
    # anything still unanswered after drain is lost — should be zero
    for request_id, intended in list(intended_by_id.items()):
        intended_by_id.pop(request_id, None)
        report.record(offsets_by_id.pop(request_id), "lost",
                      (clock() - intended) * 1e3)


class LoadHarness:
    """One config + vertex space, reusable across runs and sweeps."""

    def __init__(self, config: LoadConfig,
                 vertices: Sequence[int] = (), *,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if config.process != "replay" and not vertices:
            raise ValueError("synthetic processes need a vertex space")
        self.config = config
        self.vertices = list(vertices)
        self._clock = clock
        self._sleep = sleep

    def schedule(self) -> List[Scheduled]:
        return build_schedule(self.config, self.vertices)

    def run(self, target) -> LoadReport:
        report = run_schedule(target, self.schedule(),
                              clock=self._clock, sleep=self._sleep,
                              meta={"config": self.config.describe()})
        return report
