"""Driving a networked server from the load harness.

:class:`SocketDriver` speaks the TCP front end's JSONL protocol
(:mod:`repro.netserve`) behind exactly the duck-type
``run_schedule`` already drives — ``start(emit)`` / ``submit(request)``
/ ``shutdown()`` — so ``repro load run --connect HOST:PORT`` reuses
every line of the open-loop harness, the coordinated-omission
accounting, and the report format unchanged.  The only difference is
where the latency goes: over a socket it includes framing, the server's
micro-batch window, and the wire.

The shutdown handshake mirrors the server's drain semantics: the
driver half-closes the write side (``SHUT_WR``), the server sees EOF,
answers everything still in flight on the connection, flushes, and
closes — the reader thread then drains those trailing responses before
``shutdown()`` returns, so the harness's lost-request sweep sees a
fully-accounted run.

:func:`fetch_info` performs the ``info`` handshake on a throwaway
connection, giving remote runs their vertex space without fitting a
local matcher; :func:`probe_info` is its never-raising form — a typed
``unavailable`` response instead of an exception — which is what the
shard supervisor's health checks poll (:mod:`repro.shard`).
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Callable, Optional, Tuple

from ..obs import get_logger

__all__ = ["SocketDriver", "fetch_info", "parse_address", "probe_info"]

_log = get_logger("repro.loadgen.socketdrv")


def parse_address(spec: str) -> Tuple[str, int]:
    """``HOST:PORT`` → ``(host, port)``; raises ``ValueError`` loudly.

    Host defaults to localhost when the spec is just ``:PORT``.
    """
    host, sep, port_text = spec.rpartition(":")
    if not sep or not port_text.isdigit():
        raise ValueError(f"expected HOST:PORT, got {spec!r}")
    port = int(port_text)
    if port >= 65536:
        raise ValueError(f"port out of range in {spec!r}")
    # port 0 is legal on the listen side (bind an ephemeral port);
    # connecting to it fails naturally
    return (host or "127.0.0.1", port)


def fetch_info(address: Tuple[str, int], *,
               timeout: float = 10.0, attempts: int = 2) -> dict:
    """The server's ``info`` payload, via a short-lived connection.

    ``timeout`` bounds every socket operation of one attempt (connect
    *and* the answer read — the socket timeout set by
    ``create_connection`` persists onto reads), so a hung server costs
    at most ``attempts * timeout`` instead of stalling the harness
    forever.  One retry by default: a server mid-restart or a dropped
    SYN should not fail a whole load run, but a genuinely dead one
    should fail it fast.
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    last: Exception = ConnectionError("unreachable")
    for _ in range(attempts):
        try:
            return _fetch_info_once(address, timeout)
        except (OSError, ValueError, RuntimeError) as exc:
            # OSError covers refused/reset/timeout; ValueError a
            # garbled response line; RuntimeError a typed server error
            last = exc
            _log.warning("info handshake failed", host=address[0],
                         port=address[1], error=f"{type(exc).__name__}: "
                                                f"{exc}")
    raise last


def _fetch_info_once(address: Tuple[str, int], timeout: float) -> dict:
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(b'{"op":"info","id":"info"}\n')
        stream = sock.makefile("rb")
        line = stream.readline()
    if not line:
        raise ConnectionError(f"server at {address[0]}:{address[1]} "
                              f"closed without answering info")
    response = json.loads(line)
    if not response.get("ok"):
        raise RuntimeError(f"info request failed: {response.get('error')}")
    return response["info"]


def probe_info(address: Tuple[str, int], *, timeout: float = 2.0,
               attempts: int = 1) -> dict:
    """:func:`fetch_info` as a health check: never raises.

    Returns ``{"ok": True, "info": {...}}`` from a live server, or a
    synthesized typed failure ``{"ok": False, "error": {"type":
    "unavailable", ...}}`` matching the serve error taxonomy — so a
    poller (the shard supervisor, a script) branches on a response
    shape it already knows instead of a zoo of socket exceptions.
    """
    try:
        return {"ok": True,
                "info": fetch_info(address, timeout=timeout,
                                   attempts=attempts)}
    except Exception as exc:
        return {"ok": False,
                "error": {"type": "unavailable",
                          "message": f"info probe of {address[0]}:"
                                     f"{address[1]} failed: "
                                     f"{type(exc).__name__}: {exc}"}}


class SocketDriver:
    """One TCP connection driven open-loop by ``run_schedule``.

    Not a pool: one driver is one connection, the way one harness run
    is one client.  Sweeps construct a fresh driver per point so every
    measurement starts from a clean connection (and a server-side
    outstanding count of zero).
    """

    def __init__(self, address: Tuple[str, int], *,
                 connect_timeout: float = 10.0,
                 drain_timeout: float = 30.0) -> None:
        self.address = address
        self.connect_timeout = connect_timeout
        self.drain_timeout = drain_timeout
        self._sock: Optional[socket.socket] = None
        self._reader: Optional[threading.Thread] = None
        self._emit: Optional[Callable[[dict], None]] = None
        self._send_lock = threading.Lock()
        self._down = threading.Event()

    # -- run_schedule duck-type -------------------------------------------
    def start(self, emit: Callable[[dict], None]) -> None:
        """Connect and start draining responses into ``emit``."""
        if self._sock is not None:
            raise RuntimeError("driver already started")
        self._emit = emit
        self._sock = socket.create_connection(
            self.address, timeout=self.connect_timeout)
        # reads block until the server answers or closes; the drain
        # handshake (not a read timeout) is what ends the stream
        self._sock.settimeout(None)
        self._reader = threading.Thread(target=self._reader_main,
                                        name="socketdrv-reader",
                                        daemon=True)
        self._reader.start()

    def submit(self, request: Any) -> Optional[dict]:
        """Send one request line; returns ``None`` when written or a
        typed ``unavailable`` response when the connection is gone —
        the harness accounts it like any server-side rejection instead
        of crashing the dispatch loop mid-schedule."""
        line = json.dumps(request, separators=(",", ":")).encode("utf-8") \
            + b"\n"
        if not self._down.is_set():
            try:
                with self._send_lock:
                    self._sock.sendall(line)
                return None
            except OSError as exc:
                self._down.set()
                _log.warning("connection lost mid-run", error=str(exc))
        request_id = request.get("id") if isinstance(request, dict) else None
        return {"id": request_id, "ok": False,
                "error": {"type": "unavailable",
                          "message": "connection to server lost"},
                "elapsed_ms": 0.0}

    def shutdown(self) -> None:
        """Half-close, drain trailing responses, then tear down."""
        sock, reader = self._sock, self._reader
        if sock is None:
            return
        try:
            sock.shutdown(socket.SHUT_WR)  # server sees EOF, flushes
        except OSError:
            pass
        if reader is not None:
            reader.join(timeout=self.drain_timeout)
            if reader.is_alive():
                _log.warning("reader did not drain in time; closing "
                             "socket under it")
        try:
            sock.close()
        except OSError:
            pass
        self._sock = None
        self._reader = None

    # -- internals ---------------------------------------------------------
    def _reader_main(self) -> None:
        stream = self._sock.makefile("rb")
        try:
            for raw in stream:
                if not raw.strip():
                    continue
                try:
                    response = json.loads(raw)
                except ValueError:
                    _log.warning("undecodable response line dropped")
                    continue
                self._emit(response)
        except (OSError, ValueError) as exc:
            _log.warning("response stream failed", error=str(exc))
        finally:
            self._down.set()
