"""Directed labeled graphs — the unified representation of the data lake.

Implements the paper's graph definition (§II-A): ``G = (V, E, L)`` with
labels on both vertices and edges, plus the traversal primitives the
prompt generators need — BFS, *d*-hop induced subgraphs (Definition 3's
neighborhood) and neighbor iteration.

Vertices are integer ids; :class:`Vertex` carries the label and an
optional ``kind`` tag (``"entity"`` vs ``"attribute"``) that the data
mapping assigns so downstream code can distinguish entity vertices from
attribute-value vertices without parsing labels.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = ["Vertex", "Edge", "Graph"]


@dataclasses.dataclass(frozen=True)
class Vertex:
    """A labeled graph vertex."""

    vertex_id: int
    label: str
    kind: str = "entity"


@dataclasses.dataclass(frozen=True)
class Edge:
    """A labeled directed edge ``source -> target``."""

    source: int
    target: int
    label: str = ""


class Graph:
    """Directed labeled multigraph with O(1) neighbor access."""

    def __init__(self) -> None:
        self._vertices: Dict[int, Vertex] = {}
        self._out: Dict[int, List[Edge]] = {}
        self._in: Dict[int, List[Edge]] = {}
        self._edges: List[Edge] = []

    # -- construction --------------------------------------------------------
    def add_vertex(self, label: str, kind: str = "entity",
                   vertex_id: Optional[int] = None) -> int:
        """Add a vertex; returns its id.  Explicit ids must be fresh."""
        if vertex_id is None:
            vertex_id = len(self._vertices)
            while vertex_id in self._vertices:
                vertex_id += 1
        elif vertex_id in self._vertices:
            raise ValueError(f"vertex id {vertex_id} already exists")
        self._vertices[vertex_id] = Vertex(vertex_id, label, kind)
        self._out[vertex_id] = []
        self._in[vertex_id] = []
        return vertex_id

    def add_edge(self, source: int, target: int, label: str = "") -> Edge:
        """Add a directed labeled edge between existing vertices."""
        if source not in self._vertices or target not in self._vertices:
            raise KeyError("both endpoints must exist before adding an edge")
        edge = Edge(source, target, label)
        self._edges.append(edge)
        self._out[source].append(edge)
        self._in[target].append(edge)
        return edge

    # -- accessors ---------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices.values())

    def vertex_ids(self) -> List[int]:
        return list(self._vertices)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def vertex(self, vertex_id: int) -> Vertex:
        return self._vertices[vertex_id]

    def label(self, vertex_id: int) -> str:
        """L(v) — the label of a vertex."""
        return self._vertices[vertex_id].label

    def __contains__(self, vertex_id: int) -> bool:
        return vertex_id in self._vertices

    def out_edges(self, vertex_id: int) -> List[Edge]:
        return list(self._out[vertex_id])

    def in_edges(self, vertex_id: int) -> List[Edge]:
        return list(self._in[vertex_id])

    def neighbors(self, vertex_id: int) -> List[int]:
        """Successors then predecessors, deduplicated, insertion order."""
        seen: Set[int] = set()
        result: List[int] = []
        for edge in self._out[vertex_id]:
            if edge.target not in seen:
                seen.add(edge.target)
                result.append(edge.target)
        for edge in self._in[vertex_id]:
            if edge.source not in seen:
                seen.add(edge.source)
                result.append(edge.source)
        return result

    def entity_ids(self) -> List[int]:
        """Ids of vertices tagged as entities (the matchable side)."""
        return [v.vertex_id for v in self._vertices.values() if v.kind == "entity"]

    # -- traversal -------------------------------------------------------------
    def bfs_order(self, start: int, max_hops: Optional[int] = None) -> List[Tuple[int, int]]:
        """Breadth-first (vertex, hop) pairs from ``start`` (undirected
        reachability), bounded at ``max_hops`` when given."""
        if start not in self._vertices:
            raise KeyError(f"unknown vertex {start}")
        visited: Set[int] = {start}
        order: List[Tuple[int, int]] = [(start, 0)]
        queue: deque[Tuple[int, int]] = deque([(start, 0)])
        while queue:
            node, hop = queue.popleft()
            if max_hops is not None and hop >= max_hops:
                continue
            for neighbor in self.neighbors(node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    order.append((neighbor, hop + 1))
                    queue.append((neighbor, hop + 1))
        return order

    def d_hop_vertices(self, vertex_id: int, d: int) -> List[int]:
        """Vertices within ``d`` hops of ``vertex_id`` (excluding itself)."""
        return [v for v, hop in self.bfs_order(vertex_id, d) if hop > 0]

    def d_hop_subgraph(self, vertex_id: int, d: int) -> "Graph":
        """The induced *d*-hop subgraph d(v) = (V_d, E_d) of the paper:
        vertices within ``d`` hops of ``v`` (including ``v``), edges with
        both endpoints inside."""
        keep = {v for v, _ in self.bfs_order(vertex_id, d)}
        sub = Graph()
        for vid in sorted(keep):
            vertex = self._vertices[vid]
            sub.add_vertex(vertex.label, vertex.kind, vertex_id=vid)
        for edge in self._edges:
            if edge.source in keep and edge.target in keep:
                sub.add_edge(edge.source, edge.target, edge.label)
        return sub

    # -- interop ---------------------------------------------------------------
    def to_networkx(self):
        """Export as a :class:`networkx.MultiDiGraph` (labels as attrs)."""
        import networkx as nx

        g = nx.MultiDiGraph()
        for vertex in self._vertices.values():
            g.add_node(vertex.vertex_id, label=vertex.label, kind=vertex.kind)
        for edge in self._edges:
            g.add_edge(edge.source, edge.target, label=edge.label)
        return g

    def merge(self, other: "Graph") -> Dict[int, int]:
        """Copy ``other`` into self; returns old-id → new-id mapping."""
        mapping: Dict[int, int] = {}
        for vertex in other.vertices():
            mapping[vertex.vertex_id] = self.add_vertex(vertex.label, vertex.kind)
        for edge in other.edges():
            self.add_edge(mapping[edge.source], mapping[edge.target], edge.label)
        return mapping
