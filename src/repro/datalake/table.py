"""Relational tables — structured sources in the data lake (§II-A).

A :class:`RelationalTable` is a schema (attribute names, optional key
and foreign keys) plus tuples.  The data mapping (:mod:`.mapping`)
encodes tuples as entity vertices and attribute values / foreign keys as
edges, exactly the preprocessing the paper describes for data lakes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ForeignKey", "TableSchema", "RelationalTable"]


@dataclasses.dataclass(frozen=True)
class ForeignKey:
    """Column ``column`` references ``table``'s key column."""

    column: str
    table: str


@dataclasses.dataclass(frozen=True)
class TableSchema:
    """Schema of a relational table."""

    name: str
    columns: Tuple[str, ...]
    key: Optional[str] = None
    foreign_keys: Tuple[ForeignKey, ...] = ()

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise ValueError("duplicate column names")
        if self.key is not None and self.key not in self.columns:
            raise ValueError(f"key {self.key!r} not among columns")
        for fk in self.foreign_keys:
            if fk.column not in self.columns:
                raise ValueError(f"foreign key column {fk.column!r} not among columns")

    def column_index(self, column: str) -> int:
        return self.columns.index(column)


class RelationalTable:
    """A relational table with append-only tuples."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: List[Tuple[str, ...]] = []

    def insert(self, row: Sequence[str]) -> int:
        """Append one tuple; returns its row index."""
        if len(row) != len(self.schema.columns):
            raise ValueError(
                f"expected {len(self.schema.columns)} values, got {len(row)}")
        self._rows.append(tuple(str(v) for v in row))
        return len(self._rows) - 1

    def insert_dict(self, values: Dict[str, str]) -> int:
        """Append a tuple given as a column → value mapping (missing
        columns become empty strings)."""
        return self.insert([values.get(c, "") for c in self.schema.columns])

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> List[Tuple[str, ...]]:
        return list(self._rows)

    def row(self, index: int) -> Tuple[str, ...]:
        return self._rows[index]

    def value(self, index: int, column: str) -> str:
        return self._rows[index][self.schema.column_index(column)]

    def key_of(self, index: int) -> str:
        """The key value of a row (row index when the table is keyless)."""
        if self.schema.key is None:
            return f"{self.schema.name}#{index}"
        return self.value(index, self.schema.key)
