"""JSON documents — semi-structured sources in the data lake (§II-A).

A :class:`JsonDocument` is a collection of JSON objects (key → value
mappings, possibly nested, possibly holding references to other
objects).  The data mapping treats object keys as entities and
references as relationships, per the paper's preprocessing.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["JsonObject", "JsonDocument"]


@dataclasses.dataclass
class JsonObject:
    """One JSON object with an identifying key and scalar/nested fields.

    ``references`` holds fields whose values are keys of *other* objects
    in the same document (the JSON analogue of foreign keys).
    """

    key: str
    fields: Dict[str, Any]
    references: Dict[str, str] = dataclasses.field(default_factory=dict)

    def scalar_items(self) -> Iterator[Tuple[str, str]]:
        """Yield (path, value) for every scalar, flattening nesting with
        dotted paths — ``{"a": {"b": 1}}`` yields ``("a.b", "1")``."""
        yield from _flatten("", self.fields)


def _flatten(prefix: str, value: Any) -> Iterator[Tuple[str, str]]:
    if isinstance(value, dict):
        for key, inner in value.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from _flatten(path, inner)
    elif isinstance(value, (list, tuple)):
        for i, inner in enumerate(value):
            yield from _flatten(f"{prefix}[{i}]", inner)
    else:
        yield prefix, str(value)


class JsonDocument:
    """A collection of :class:`JsonObject` keyed by object key."""

    def __init__(self, objects: Optional[List[JsonObject]] = None) -> None:
        self._objects: Dict[str, JsonObject] = {}
        for obj in objects or []:
            self.add(obj)

    def add(self, obj: JsonObject) -> None:
        if obj.key in self._objects:
            raise ValueError(f"duplicate object key {obj.key!r}")
        self._objects[obj.key] = obj

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def objects(self) -> List[JsonObject]:
        return list(self._objects.values())

    def get(self, key: str) -> JsonObject:
        return self._objects[key]
