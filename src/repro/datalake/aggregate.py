"""Graph neighbor aggregators for soft-prompt features (Eq. 6).

The paper extracts structural features h(v) "benefiting from graph
representation methods such as GraphSAGE and GNN" and aggregates them as

    f_pro^s(v) = alpha * h(v) + (1 - alpha) * sum_{v_j in N(v)} h(v_j).

Two aggregators are provided, matching the paper's per-dataset choice
(GNN on CUB/SUN, GraphSAGE on FB15K):

* :class:`GNNAggregator` — mean-of-neighbors message passing.
* :class:`GraphSageAggregator` — sampled-neighbor mean (inductive,
  bounded fan-out), appropriate for the larger FB-style graphs.

Both run on *fixed input features* (MiniLM label embeddings); the
learnable part of the soft prompt lives in the CrossEM matcher.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..nn.init import SeedLike, rng_from
from .graph import Graph

__all__ = ["GNNAggregator", "GraphSageAggregator", "aggregate_soft_features"]


class GNNAggregator:
    """Mean message passing over all neighbors, ``rounds`` iterations."""

    def __init__(self, rounds: int = 1, self_weight: float = 0.5) -> None:
        if not 0.0 <= self_weight <= 1.0:
            raise ValueError("self_weight must be in [0, 1]")
        self.rounds = rounds
        self.self_weight = self_weight

    def __call__(self, graph: Graph, features: Dict[int, np.ndarray]) -> Dict[int, np.ndarray]:
        """Return one aggregated feature per vertex in ``features``."""
        current = dict(features)
        for _ in range(self.rounds):
            updated: Dict[int, np.ndarray] = {}
            for vid in current:
                neighbors = [current[n] for n in graph.neighbors(vid) if n in current]
                if neighbors:
                    mixed = (self.self_weight * current[vid]
                             + (1 - self.self_weight) * np.mean(neighbors, axis=0))
                else:
                    mixed = current[vid]
                updated[vid] = mixed.astype(np.float32)
            current = updated
        return current


class GraphSageAggregator:
    """GraphSAGE-style aggregation with sampled bounded fan-out."""

    def __init__(self, rounds: int = 1, fanout: int = 5,
                 self_weight: float = 0.5, seed: SeedLike = 0) -> None:
        if fanout < 1:
            raise ValueError("fanout must be positive")
        self.rounds = rounds
        self.fanout = fanout
        self.self_weight = self_weight
        self._rng = rng_from(seed)

    def __call__(self, graph: Graph, features: Dict[int, np.ndarray]) -> Dict[int, np.ndarray]:
        current = dict(features)
        for _ in range(self.rounds):
            updated: Dict[int, np.ndarray] = {}
            for vid in current:
                neighbors = [n for n in graph.neighbors(vid) if n in current]
                if len(neighbors) > self.fanout:
                    picked = self._rng.choice(len(neighbors), size=self.fanout,
                                              replace=False)
                    neighbors = [neighbors[i] for i in picked]
                if neighbors:
                    mean = np.mean([current[n] for n in neighbors], axis=0)
                    mixed = self.self_weight * current[vid] + (1 - self.self_weight) * mean
                else:
                    mixed = current[vid]
                updated[vid] = mixed.astype(np.float32)
            current = updated
        return current


def aggregate_soft_features(graph: Graph, features: Dict[int, np.ndarray],
                            alpha: float,
                            aggregator: Optional[Callable] = None) -> Dict[int, np.ndarray]:
    """Eq. 6: ``alpha * h(v) + (1 - alpha) * sum of aggregated neighbors``.

    ``aggregator`` preprocesses raw features into structural features
    h(v) (defaults to one round of :class:`GNNAggregator`); the final
    blend uses the *mean* over neighbors for scale stability (the
    paper's sum, normalized).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    aggregator = aggregator or GNNAggregator()
    structural = aggregator(graph, features)
    blended: Dict[int, np.ndarray] = {}
    for vid, own in structural.items():
        neighbors = [structural[n] for n in graph.neighbors(vid) if n in structural]
        if neighbors:
            blended[vid] = (alpha * own
                            + (1 - alpha) * np.mean(neighbors, axis=0)).astype(np.float32)
        else:
            blended[vid] = own.astype(np.float32)
    return blended
