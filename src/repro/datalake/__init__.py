"""Heterogeneous data-lake substrate: graphs, tables, JSON and mapping."""

from .aggregate import (GNNAggregator, GraphSageAggregator,
                        aggregate_soft_features)
from .graph import Edge, Graph, Vertex
from .json_doc import JsonDocument, JsonObject
from .mapping import DataLake, json_to_graph, merge_graphs, table_to_graph
from .table import ForeignKey, RelationalTable, TableSchema
from .text_source import SentenceParser, Triple, text_to_graph

__all__ = ["Graph", "Vertex", "Edge", "RelationalTable", "TableSchema",
           "ForeignKey", "JsonDocument", "JsonObject", "DataLake",
           "table_to_graph", "json_to_graph", "merge_graphs",
           "GNNAggregator", "GraphSageAggregator", "aggregate_soft_features",
           "SentenceParser", "Triple", "text_to_graph"]
