"""Data mapping: structured and semi-structured sources → unified graph.

Implements the paper's preprocessing (§II-A): "tuples of tables and the
keys of Jsons [become] entities, the foreign keys of tables and the
references of Jsons [become] relationships".  Attribute values become
attribute vertices connected by edges labeled with the column / field
name, so Example 1's tuple t1 turns into exactly the star graph Fig. 3
serializes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .graph import Graph
from .json_doc import JsonDocument
from .table import RelationalTable

__all__ = ["table_to_graph", "json_to_graph", "merge_graphs", "DataLake"]


def table_to_graph(table: RelationalTable, graph: Optional[Graph] = None,
                   entity_column: Optional[str] = None) -> Tuple[Graph, Dict[int, int]]:
    """Encode a relational table into ``graph`` (new graph when omitted).

    Each tuple becomes an entity vertex labeled by ``entity_column``
    (default: the key).  Every other non-empty value becomes an
    attribute vertex linked by an edge labeled ``has <column>``;
    foreign-key values instead link entity to entity with ``ref <column>``
    once both tables are mapped (see :class:`DataLake`).

    Returns the graph and a row-index → vertex-id mapping.
    """
    graph = graph if graph is not None else Graph()
    schema = table.schema
    fk_columns = {fk.column for fk in schema.foreign_keys}
    label_column = entity_column or schema.key
    attribute_cache: Dict[str, int] = {}
    row_vertices: Dict[int, int] = {}
    for index in range(len(table)):
        label = (table.value(index, label_column)
                 if label_column else table.key_of(index))
        entity = graph.add_vertex(label, kind="entity")
        row_vertices[index] = entity
        for column in schema.columns:
            if column == label_column or column in fk_columns:
                continue
            value = table.value(index, column)
            if not value:
                continue
            cache_key = f"{column}={value}"
            if cache_key not in attribute_cache:
                attribute_cache[cache_key] = graph.add_vertex(value, kind="attribute")
            graph.add_edge(entity, attribute_cache[cache_key], f"has {column}")
    return graph, row_vertices


def json_to_graph(document: JsonDocument,
                  graph: Optional[Graph] = None) -> Tuple[Graph, Dict[str, int]]:
    """Encode a JSON document into ``graph``.

    Object keys become entity vertices; scalar fields become attribute
    vertices with ``has <path>`` edges; references become entity-entity
    edges labeled ``ref <field>``.
    """
    graph = graph if graph is not None else Graph()
    key_vertices: Dict[str, int] = {}
    for obj in document.objects():
        key_vertices[obj.key] = graph.add_vertex(obj.key, kind="entity")
    attribute_cache: Dict[str, int] = {}
    for obj in document.objects():
        entity = key_vertices[obj.key]
        for path, value in obj.scalar_items():
            cache_key = f"{path}={value}"
            if cache_key not in attribute_cache:
                attribute_cache[cache_key] = graph.add_vertex(value, kind="attribute")
            graph.add_edge(entity, attribute_cache[cache_key], f"has {path}")
        for field, target_key in obj.references.items():
            if target_key not in key_vertices:
                raise KeyError(f"reference {field!r} -> unknown object {target_key!r}")
            graph.add_edge(entity, key_vertices[target_key], f"ref {field}")
    return graph, key_vertices


def merge_graphs(graphs: Sequence[Graph]) -> Graph:
    """Union several graphs into a fresh one (ids reassigned)."""
    merged = Graph()
    for graph in graphs:
        merged.merge(graph)
    return merged


class DataLake:
    """A heterogeneous collection of sources with a unified graph view.

    Register tables, JSON documents and native graphs, then call
    :meth:`unified_graph` to run the data mapping.  Foreign keys between
    registered tables become entity-entity ``ref`` edges.
    """

    def __init__(self) -> None:
        self._tables: List[RelationalTable] = []
        self._documents: List[JsonDocument] = []
        self._graphs: List[Graph] = []
        self._texts: List[Tuple[List[str], List[str]]] = []

    def add_table(self, table: RelationalTable) -> None:
        self._tables.append(table)

    def add_json(self, document: JsonDocument) -> None:
        self._documents.append(document)

    def add_graph(self, graph: Graph) -> None:
        self._graphs.append(graph)

    def add_text(self, sentences: Sequence[str],
                 gazetteer: Sequence[str]) -> None:
        """Register an unstructured text source (parsed into entities
        and syntactic relationships during mapping, §II-A)."""
        self._texts.append((list(sentences), list(gazetteer)))

    @property
    def num_sources(self) -> int:
        return (len(self._tables) + len(self._documents) + len(self._graphs)
                + len(self._texts))

    def unified_graph(self) -> Graph:
        """Run the data mapping over every registered source."""
        unified = Graph()
        # Tables first, remembering key -> vertex for FK resolution.
        key_index: Dict[Tuple[str, str], int] = {}
        row_maps: List[Tuple[RelationalTable, Dict[int, int]]] = []
        for table in self._tables:
            _, rows = table_to_graph(table, unified)
            row_maps.append((table, rows))
            for index, vertex in rows.items():
                key_index[(table.schema.name, table.key_of(index))] = vertex
        # Resolve foreign keys into entity-entity edges.
        for table, rows in row_maps:
            for fk in table.schema.foreign_keys:
                for index, vertex in rows.items():
                    value = table.value(index, fk.column)
                    if not value:
                        continue
                    target = key_index.get((fk.table, value))
                    if target is not None:
                        unified.add_edge(vertex, target, f"ref {fk.column}")
        for document in self._documents:
            json_to_graph(document, unified)
        for graph in self._graphs:
            unified.merge(graph)
        for sentences, gazetteer in self._texts:
            from .text_source import text_to_graph

            text_to_graph(sentences, gazetteer, unified)
        return unified
