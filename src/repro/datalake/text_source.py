"""Unstructured text → graph (§II-A's final data-mapping case).

The paper: "For unstructured texts, some sentence parsing models based
on language structures can be used to construct a graph for named
entities and their syntactic relationships."  This module provides that
parser for the corpus dialects the synthetic world emits (and, more
generally, any text following simple copular/attributive patterns):

* ``"<entity> has <attr> in <value>"``      → attribute edge
* ``"<entity> has <attr> <value>"``         → attribute edge
* ``"<entity> eats/lives in/is from <x>"``  → symbolic attribute edge
* ``"<entity> is <value>"``                 → attribute edge
* ``"a photo of a <entity> with <c> <p> [and ...]"`` → attribute edges

Entities are resolved against a gazetteer (known entity names) so noisy
sentences about unknown subjects are skipped rather than polluting the
graph — the behaviour of an NER front end.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .graph import Graph

__all__ = ["Triple", "SentenceParser", "text_to_graph"]


@dataclasses.dataclass(frozen=True)
class Triple:
    """One extracted (subject, relation, value) fact."""

    subject: str
    relation: str
    value: str


class SentenceParser:
    """Pattern-based triple extraction with gazetteer entity resolution.

    Parameters
    ----------
    gazetteer:
        Known entity names; the longest matching name anchors a
        sentence.  Sentences with no known subject yield no triples.
    """

    _PATTERNS: Sequence[Tuple[re.Pattern, str]] = (
        (re.compile(r"has ([a-z ]+?) in ([a-z-]+)"), "has {0}"),
        (re.compile(r"eats ([a-z-]+)"), "has food"),
        (re.compile(r"lives in ([a-z-]+)"), "has habitat"),
        (re.compile(r"is from ([a-z-]+)"), "has origin"),
        (re.compile(r"is ([a-z-]+)$"), "has size"),
    )
    _WITH = re.compile(r"with ((?:[a-z-]+ [a-z-]+)(?: and [a-z-]+ [a-z-]+)*)")

    def __init__(self, gazetteer: Iterable[str]) -> None:
        self._names = sorted({name.lower().strip() for name in gazetteer},
                             key=len, reverse=True)
        if not self._names:
            raise ValueError("gazetteer must contain at least one entity")

    def _find_subject(self, sentence: str) -> Optional[str]:
        for name in self._names:
            if name in sentence:
                return name
        return None

    def parse(self, sentence: str) -> List[Triple]:
        """Extract all triples from one sentence (possibly none)."""
        sentence = sentence.lower().strip()
        subject = self._find_subject(sentence)
        if subject is None:
            return []
        triples: List[Triple] = []
        for pattern, relation_template in self._PATTERNS:
            for match in pattern.finditer(sentence):
                groups = match.groups()
                if len(groups) == 2:
                    relation = relation_template.format(groups[0].strip())
                    value = groups[1]
                else:
                    relation = relation_template
                    value = groups[0]
                if value != subject:
                    triples.append(Triple(subject, relation, value))
        with_match = self._WITH.search(sentence)
        if with_match:
            for phrase in with_match.group(1).split(" and "):
                words = phrase.split()
                if len(words) == 2:
                    color, part = words
                    triples.append(Triple(subject, f"has {part} color", color))
        return triples

    def parse_corpus(self, sentences: Iterable[str]) -> List[Triple]:
        """Extract and deduplicate triples from many sentences."""
        seen: set[Triple] = set()
        ordered: List[Triple] = []
        for sentence in sentences:
            for triple in self.parse(sentence):
                if triple not in seen:
                    seen.add(triple)
                    ordered.append(triple)
        return ordered


def text_to_graph(sentences: Iterable[str], gazetteer: Iterable[str],
                  graph: Optional[Graph] = None) -> Tuple[Graph, Dict[str, int]]:
    """Run the §II-A text mapping: parse ``sentences`` and encode the
    extracted entities/attributes into ``graph`` (new graph when
    omitted).  Returns the graph and an entity-name → vertex-id map."""
    graph = graph if graph is not None else Graph()
    parser = SentenceParser(gazetteer)
    triples = parser.parse_corpus(sentences)
    entity_vertices: Dict[str, int] = {}
    attribute_cache: Dict[Tuple[str, str], int] = {}
    for triple in triples:
        if triple.subject not in entity_vertices:
            entity_vertices[triple.subject] = graph.add_vertex(
                triple.subject, kind="entity")
        key = (triple.relation, triple.value)
        if key not in attribute_cache:
            attribute_cache[key] = graph.add_vertex(triple.value,
                                                    kind="attribute")
        graph.add_edge(entity_vertices[triple.subject], attribute_cache[key],
                       triple.relation)
    return graph, entity_vertices
