"""Synthetic pre-training corpora.

Real CLIP / BERT are pre-trained on web-scale text; the reproduction
pre-trains its miniature models on corpora sampled from the same latent
attribute world the benchmarks use (see :mod:`repro.datasets.world`).
"""

from __future__ import annotations

from typing import List, Tuple

from ..datasets.world import ConceptUniverse, caption_for
from ..nn.init import SeedLike, rng_from

__all__ = ["build_caption_corpus", "build_text_corpus"]


def build_caption_corpus(universe: ConceptUniverse, captions_per_concept: int = 4,
                         seed: SeedLike = 0) -> List[Tuple[int, str]]:
    """Return ``(concept_index, caption)`` pairs for contrastive
    image-text pre-training.  Each concept receives several noisy
    captions so the model sees both name-anchored and attribute-anchored
    descriptions."""
    rng = rng_from(seed)
    corpus: List[Tuple[int, str]] = []
    for concept in universe:
        for _ in range(captions_per_concept):
            corpus.append((concept.index, caption_for(concept, universe.schema, rng)))
    return corpus


def build_text_corpus(universe: ConceptUniverse, sentences_per_concept: int = 6,
                      seed: SeedLike = 0) -> List[str]:
    """Plain sentences for MiniLM co-occurrence pre-training.

    Emits caption-style sentences plus symbolic-fact sentences
    ("<name> eats <food>", "<name> lives in <habitat>") so the language
    model learns attribute-level semantics, which the soft prompt and
    PCP property features rely on.
    """
    rng = rng_from(seed)
    sentences: List[str] = []
    for concept in universe:
        for _ in range(sentences_per_concept):
            sentences.append(caption_for(concept, universe.schema, rng))
        sentences.append(f"{concept.name} eats {concept.symbolic['food']}")
        sentences.append(f"{concept.name} lives in {concept.symbolic['habitat']}")
        sentences.append(f"{concept.name} is {concept.symbolic['size']}")
        sentences.append(f"{concept.name} is from {concept.symbolic['origin']}")
        for part, color in concept.visual_items():
            sentences.append(
                f"{concept.name} {universe.schema.visual_phrase(part, color)}")
    return sentences
