"""MiniLM — the pre-trained language model substitute for BERT/RoBERTa.

The paper uses BERT/RoBERTa for three supporting roles (never as the
matching model itself):

1. initializing soft prompts from label token embeddings (§IV-C),
2. extracting vertex property features A in PCP mini-batch generation
   (Alg. 2, line 2), and
3. initializing vertex representations h(v) for Eq. 6.

All three only need *static token embeddings with attribute-level
semantics*.  MiniLM therefore pre-trains word vectors by factorizing a
positive-PMI co-occurrence matrix of a synthetic corpus (the classic
count-based stand-in for masked-LM pre-training), exposing the same
``embed_tokens`` / ``embed_text`` API a HuggingFace encoder would.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..nn.init import SeedLike, rng_from
from .tokenizer import Vocabulary, WordTokenizer

__all__ = ["MiniLM"]


class MiniLM:
    """Static word embeddings trained by PPMI + truncated SVD.

    Parameters
    ----------
    vocab:
        Shared vocabulary (special tokens get zero vectors).
    dim:
        Embedding dimensionality.
    window:
        Symmetric co-occurrence window width.
    """

    def __init__(self, vocab: Vocabulary, dim: int = 48, window: int = 4) -> None:
        self.vocab = vocab
        self.dim = dim
        self.window = window
        self._tokenizer = WordTokenizer(vocab, max_len=512)
        self.embeddings: Optional[np.ndarray] = None

    # -- pre-training -------------------------------------------------------
    def _sentence_ids(self, sentence: str) -> np.ndarray:
        return np.asarray([self.vocab.id_of(w)
                           for w in self._tokenizer.tokenize(sentence)],
                          dtype=np.int64)

    def _cooccurrence(self, sentences: Iterable[str]) -> np.ndarray:
        """Windowed co-occurrence counts via ``np.add.at`` scatter.

        For every offset ``k`` in ``1..window`` the (center, context)
        index pairs of *all* sentences are concatenated and scattered in
        one call per direction.  Unit increments into float64 counts are
        exact integers, so the matrix is identical to the retained
        per-token reference loop regardless of accumulation order.
        """
        vocab_size = len(self.vocab)
        counts = np.zeros((vocab_size, vocab_size), dtype=np.float64)
        ids_list = [self._sentence_ids(s) for s in sentences]
        for k in range(1, self.window + 1):
            lefts = [ids[:-k] for ids in ids_list if len(ids) > k]
            rights = [ids[k:] for ids in ids_list if len(ids) > k]
            if not lefts:
                continue
            left = np.concatenate(lefts)
            right = np.concatenate(rights)
            np.add.at(counts, (left, right), 1.0)
            np.add.at(counts, (right, left), 1.0)
        return counts

    def _cooccurrence_reference(self, sentences: Iterable[str]) -> np.ndarray:
        """The retained naive per-token loop (golden-equivalence tests
        assert :meth:`_cooccurrence` matches it exactly)."""
        vocab_size = len(self.vocab)
        counts = np.zeros((vocab_size, vocab_size), dtype=np.float64)
        for sentence in sentences:
            ids = [self.vocab.id_of(w) for w in self._tokenizer.tokenize(sentence)]
            for i, center in enumerate(ids):
                lo = max(0, i - self.window)
                hi = min(len(ids), i + self.window + 1)
                for j in range(lo, hi):
                    if j != i:
                        counts[center, ids[j]] += 1.0
        return counts

    def pretrain(self, sentences: Iterable[str], seed: SeedLike = 0) -> "MiniLM":
        """Fit embeddings on ``sentences``; returns self for chaining."""
        vocab_size = len(self.vocab)
        counts = self._cooccurrence(list(sentences))
        total = counts.sum()
        if total == 0:
            raise ValueError("empty corpus: no co-occurrences observed")
        # Positive pointwise mutual information.
        row = counts.sum(axis=1, keepdims=True)
        col = counts.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            pmi = np.log(counts * total / (row @ col))
        pmi[~np.isfinite(pmi)] = 0.0
        pmi = np.maximum(pmi, 0.0)
        # Truncated SVD -> dense embeddings.
        u, s, _ = np.linalg.svd(pmi, full_matrices=False)
        k = min(self.dim, len(s))
        emb = (u[:, :k] * np.sqrt(s[:k])).astype(np.float32)
        if k < self.dim:
            emb = np.pad(emb, ((0, 0), (0, self.dim - k)))
        # Zero the special tokens; unseen words get tiny deterministic noise
        # so they are distinguishable but carry no semantics.
        seen = counts.sum(axis=1) > 0
        rng = rng_from(seed)
        noise = (rng.standard_normal((vocab_size, self.dim)) * 1e-3).astype(np.float32)
        emb[~seen] = noise[~seen]
        for special in range(5):  # ids 0-4 are [PAD],[CLS],[SEP],[MASK],[UNK]
            emb[special] = 0.0
        self.embeddings = emb
        return self

    def _require_trained(self) -> np.ndarray:
        if self.embeddings is None:
            raise RuntimeError("MiniLM.pretrain must be called first")
        return self.embeddings

    # -- inference -------------------------------------------------------------
    def embed_tokens(self, text: str) -> np.ndarray:
        """Per-token embeddings, shape ``(num_tokens, dim)``."""
        emb = self._require_trained()
        ids = [self.vocab.id_of(w) for w in self._tokenizer.tokenize(text)]
        if not ids:
            return np.zeros((0, self.dim), dtype=np.float32)
        return emb[np.asarray(ids)]

    def embed_text(self, text: str) -> np.ndarray:
        """Mean-pooled sentence embedding, shape ``(dim,)``."""
        tokens = self.embed_tokens(text)
        if len(tokens) == 0:
            return np.zeros(self.dim, dtype=np.float32)
        return tokens.mean(axis=0)

    def embed_texts(self, texts: Sequence[str]) -> np.ndarray:
        """Batch of mean-pooled embeddings, shape ``(len(texts), dim)``.

        Vectorized: one padded id matrix, one embedding gather, one
        masked mean.  Padding positions gather the all-zero ``[PAD]``
        row and numpy's axis-1 reduction is sequential, so appending
        exact zeros leaves every sum bit-identical to the per-text
        :meth:`embed_text` reference.

        The remaining wall time is the regex word scan, which the
        reference pays identically — so the measured speedup of this
        path is pinned by tokenization, not by the numpy math it
        replaced (see ``bench_hotpaths``).
        """
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float32)
        emb = self._require_trained()
        tokenize = self._tokenizer.tokenize
        ids_of = self.vocab.ids_of
        ids_list = [ids_of(tokenize(t)) for t in texts]
        lengths = np.asarray([len(ids) for ids in ids_list], dtype=np.int64)
        longest = int(lengths.max())
        if longest == 0:
            return np.zeros((len(texts), self.dim), dtype=np.float32)
        pad_id = self.vocab.pad_id
        padded = np.full((len(texts), longest), pad_id, dtype=np.int64)
        total = int(lengths.sum())
        flat = np.fromiter((i for ids in ids_list for i in ids),
                           dtype=np.int64, count=total)
        starts = np.cumsum(lengths) - lengths
        rows = np.repeat(np.arange(len(texts)), lengths)
        cols = np.arange(total) - np.repeat(starts, lengths)
        padded[rows, cols] = flat
        gathered = emb[padded]  # (B, L, dim); [PAD] rows are exact zeros
        if emb[pad_id].any():  # hand-loaded embeddings may break that
            gathered[padded == pad_id] = 0.0
        sums = gathered.sum(axis=1)
        counts = np.maximum(lengths, 1).astype(np.float32)
        return (sums / counts[:, None]).astype(np.float32, copy=False)

    def embed_texts_reference(self, texts: Sequence[str]) -> np.ndarray:
        """The retained naive per-text loop (golden-equivalence tests
        assert :meth:`embed_texts` matches it exactly)."""
        return np.stack([self.embed_text(t) for t in texts]) if texts else \
            np.zeros((0, self.dim), dtype=np.float32)

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two texts' embeddings."""
        va, vb = self.embed_text(a), self.embed_text(b)
        denom = float(np.linalg.norm(va) * np.linalg.norm(vb))
        return float(va @ vb / denom) if denom > 0 else 0.0
