"""Language substrate: tokenizer, synthetic corpora and MiniLM."""

from .corpus import build_caption_corpus, build_text_corpus
from .minilm import MiniLM
from .tokenizer import (CLIP_MAX_TOKENS, CLS, MASK, PAD, SEP, UNK, Vocabulary,
                        WordTokenizer)

__all__ = ["Vocabulary", "WordTokenizer", "MiniLM", "build_caption_corpus",
           "build_text_corpus", "CLIP_MAX_TOKENS", "PAD", "CLS", "SEP",
           "MASK", "UNK"]
