"""Word-level tokenizer with the special tokens CLIP/BERT-style encoders
expect: ``[PAD]``, ``[CLS]``, ``[SEP]``, ``[MASK]`` and ``[UNK]``.

The paper serializes hard prompts as ``{[CLS], f_pro^h(v), [SEP]}``
(§III-B) and notes the pre-trained text encoder's 77-token input limit,
which truncates long structural prompts.  :meth:`WordTokenizer.encode`
reproduces both behaviours.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["Vocabulary", "WordTokenizer", "PAD", "CLS", "SEP", "MASK", "UNK",
           "CLIP_MAX_TOKENS"]

PAD = "[PAD]"
CLS = "[CLS]"
SEP = "[SEP]"
MASK = "[MASK]"
UNK = "[UNK]"
SPECIAL_TOKENS = (PAD, CLS, SEP, MASK, UNK)

#: The original CLIP text encoder accepts at most 77 tokens (§III-B);
#: prompt learning in the paper later extends this to 512 (§V-A).
CLIP_MAX_TOKENS = 77

_WORD_RE = re.compile(r"[a-z0-9]+(?:-[a-z0-9]+)*")


def _normalize(text: str) -> List[str]:
    """Lowercase and split ``text`` into word tokens (hyphens kept)."""
    return _WORD_RE.findall(text.lower())


class Vocabulary:
    """Bidirectional token ↔ id mapping with reserved special tokens."""

    def __init__(self, words: Iterable[str] = ()) -> None:
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in SPECIAL_TOKENS:
            self._add(token)
        for word in words:
            self.add(word)

    def _add(self, token: str) -> int:
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)
        return self._token_to_id[token]

    def add(self, word: str) -> int:
        """Add a (normalized) word; returns its id."""
        pieces = _normalize(word)
        if len(pieces) != 1:
            raise ValueError(f"expected a single word, got {word!r}")
        return self._add(pieces[0])

    def add_text(self, text: str) -> None:
        """Add every word of a free-text string."""
        for piece in _normalize(text):
            self._add(piece)

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def id_of(self, token: str) -> int:
        """Return the id of ``token``, falling back to ``[UNK]``."""
        return self._token_to_id.get(token, self._token_to_id[UNK])

    def ids_of(self, tokens: Sequence[str]) -> List[int]:
        """Batch :meth:`id_of` with the dict lookup hoisted out of the
        loop — the hot path for whole-corpus embedding."""
        get = self._token_to_id.get
        unk = self._token_to_id[UNK]
        return [get(token, unk) for token in tokens]

    def token_of(self, token_id: int) -> str:
        return self._id_to_token[token_id]

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK]

    def tokens(self) -> List[str]:
        """All tokens in id order (copy)."""
        return list(self._id_to_token)


class WordTokenizer:
    """Tokenize text into padded id sequences for the text encoders.

    Parameters
    ----------
    vocab:
        The vocabulary; unknown words map to ``[UNK]``.
    max_len:
        Hard cap on the encoded sequence length *including* ``[CLS]`` and
        ``[SEP]``.  Defaults to :data:`CLIP_MAX_TOKENS`, the limit the
        paper identifies as a drawback of hard prompts.
    """

    def __init__(self, vocab: Vocabulary, max_len: int = CLIP_MAX_TOKENS) -> None:
        if max_len < 3:
            raise ValueError("max_len must allow at least [CLS] x [SEP]")
        self.vocab = vocab
        self.max_len = max_len

    def tokenize(self, text: str) -> List[str]:
        """Split ``text`` into normalized word tokens (no specials)."""
        return _normalize(text)

    def encode(self, text: str, pad: bool = True) -> np.ndarray:
        """Encode ``text`` as ``[CLS] tokens... [SEP]`` ids, truncated to
        ``max_len`` and (optionally) right-padded with ``[PAD]``."""
        words = self.tokenize(text)[: self.max_len - 2]
        ids = [self.vocab.cls_id]
        ids.extend(self.vocab.id_of(w) for w in words)
        ids.append(self.vocab.sep_id)
        if pad and len(ids) < self.max_len:
            ids.extend([self.vocab.pad_id] * (self.max_len - len(ids)))
        return np.asarray(ids, dtype=np.int64)

    def encode_batch(self, texts: Sequence[str],
                     length: Optional[int] = None) -> np.ndarray:
        """Encode several texts into one ``(batch, L)`` id matrix.

        ``length`` defaults to the longest encoded text in the batch
        (still capped at ``max_len``), which keeps activations small.
        """
        encoded = [self.encode(t, pad=False) for t in texts]
        if length is None:
            length = max((len(e) for e in encoded), default=2)
        length = min(max(length, 2), self.max_len)
        out = np.full((len(encoded), length), self.vocab.pad_id, dtype=np.int64)
        for row, ids in enumerate(encoded):
            ids = ids[:length]
            out[row, : len(ids)] = ids
        return out

    def decode(self, ids: Iterable[int]) -> str:
        """Inverse of :meth:`encode`, dropping special tokens."""
        specials = {self.vocab.pad_id, self.vocab.cls_id, self.vocab.sep_id}
        words = [self.vocab.token_of(int(i)) for i in ids if int(i) not in specials]
        return " ".join(words)

    def attention_mask(self, ids: np.ndarray) -> np.ndarray:
        """Boolean mask of non-padding positions for ``ids``."""
        return ids != self.vocab.pad_id
