"""Fusion-encoder baselines: VisualBERT, ViLBERT, IMRAM and TransAE.

These competitors "map multi-modal data into a common feature space"
(§VI) instead of learning a contrastively aligned dual-encoder space.
Each miniature keeps the architectural mechanism the original is known
for and is pre-trained briefly on generic caption-image pairs from the
pre-training universe (standing in for the released checkpoints the
paper evaluates), then applied to the benchmark *without tuning* —
matching the paper's protocol, where fusion encoders score far below
CLIP on cross-modal EM.

* :class:`VisualBERTMatcher` — single-stream: text tokens and patch
  tokens concatenated into one transformer, CLS → match score.
* :class:`ViLBERTMatcher` — two-stream with a co-attention block.
* :class:`IMRAMMatcher` — iterative recurrent-attention alignment
  between token and patch features.
* :class:`TransAEMatcher` — multi-modal autoencoder whose hidden code
  acts as the entity representation of a TransE-style space.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .. import nn
from ..clip.zoo import PretrainedBundle
from ..core.prompts import HardPromptGenerator
from ..datasets.generator import CrossModalDataset
from ..nn.init import rng_from
from ..vision.image import ImageSpec
from ..vision.patches import patch_grid
from .common import BaselineMatcher, caption_pairs_for_training

__all__ = ["VisualBERTMatcher", "ViLBERTMatcher", "IMRAMMatcher",
           "TransAEMatcher"]

_SPEC = ImageSpec()


def _patch_tokens(pixels: np.ndarray) -> np.ndarray:
    """Flattened patch pixel tokens of a batch: (B, num_patches, P*P*C)."""
    return np.stack([patch_grid(p, _SPEC).reshape(_SPEC.num_patches, -1)
                     for p in pixels])


class _FusionBase(BaselineMatcher):
    """Common training/scoring loop for the pair-scoring baselines.

    Subclasses implement ``_pair_logits(token_ids, mask, pixels)``
    returning one matching logit per (text, image) row pair.  Training
    is binary noise-contrastive on caption-image pairs: the aligned pair
    is positive, a shuffled pairing is negative.
    """

    epochs = 4
    lr = 1e-3
    text_source = "label"  # or "hard" for structure-serialized text

    def __init__(self, bundle: PretrainedBundle, seed: int = 0) -> None:
        super().__init__(bundle)
        self.seed = seed
        self._trained = False

    # -- subclass hooks ------------------------------------------------------
    def _build(self, rng: np.random.Generator) -> None:
        raise NotImplementedError

    def _pair_logits(self, token_ids: np.ndarray, mask: np.ndarray,
                     pixels: np.ndarray) -> nn.Tensor:
        raise NotImplementedError

    def _parameters(self) -> List[nn.Parameter]:
        raise NotImplementedError

    # -- training ----------------------------------------------------------------
    def _pretrain(self) -> None:
        rng = rng_from(self.seed)
        self._build(rng)
        pairs = caption_pairs_for_training(self.bundle, seed=self.seed)
        tokenizer = self.bundle.tokenizer
        optimizer = nn.AdamW(self._parameters(), lr=self.lr)
        batch_size = 16
        for _ in range(self.epochs):
            order = rng.permutation(len(pairs))
            for start in range(0, len(order), batch_size):
                batch = [pairs[i] for i in order[start:start + batch_size]]
                if len(batch) < 2:
                    continue
                captions = [c for c, _ in batch]
                pixels = np.stack([p for _, p in batch])
                # negatives: pair caption i with image i+1 (cyclic shift)
                neg_pixels = np.roll(pixels, 1, axis=0)
                token_ids = tokenizer.encode_batch(captions)
                mask = tokenizer.attention_mask(token_ids)
                optimizer.zero_grad()
                pos = self._pair_logits(token_ids, mask, pixels)
                neg = self._pair_logits(token_ids, mask, neg_pixels)
                # binary NCE: positives -> high logit, negatives -> low
                loss = (-(pos.sigmoid() + 1e-6).log().mean()
                        - (1.0 - neg.sigmoid() + 1e-6).log().mean())
                loss.backward()
                nn.clip_grad_norm(optimizer.params, 5.0)
                optimizer.step()
        self._trained = True

    def fit(self, dataset: CrossModalDataset, split=None) -> "_FusionBase":
        super().fit(dataset, split)
        if not self._trained:
            self._pretrain()
        return self

    # -- scoring ------------------------------------------------------------------
    def _vertex_texts(self, vertex_ids: Sequence[int]) -> List[str]:
        dataset = self._require_fitted()
        if self.text_source == "hard":
            generator = HardPromptGenerator(dataset.graph, d=1)
            return generator.generate_batch(vertex_ids)
        return [dataset.graph.label(v) for v in vertex_ids]

    def score(self, vertex_ids: Sequence[int]) -> np.ndarray:
        """All-pairs matching logits, computed in vectorized pair tiles."""
        dataset = self._require_fitted()
        tokenizer = self.bundle.tokenizer
        texts = self._vertex_texts(vertex_ids)
        token_ids = tokenizer.encode_batch(texts)
        mask = tokenizer.attention_mask(token_ids)
        pixels = self._image_pixels()
        scores = np.zeros((len(vertex_ids), len(pixels)), dtype=np.float32)
        tile = max(1, 256 // max(1, len(vertex_ids)))
        with nn.no_grad():
            for start in range(0, len(pixels), tile):
                chunk = pixels[start:start + tile]
                # tile rows: every vertex against every image in chunk
                rep_ids = np.repeat(token_ids, len(chunk), axis=0)
                rep_mask = np.repeat(mask, len(chunk), axis=0)
                rep_pix = np.tile(chunk, (len(vertex_ids), 1, 1, 1))
                logits = self._pair_logits(rep_ids, rep_mask, rep_pix).numpy()
                scores[:, start:start + len(chunk)] = logits.reshape(
                    len(vertex_ids), len(chunk))
        return scores


class VisualBERTMatcher(_FusionBase):
    """Single-stream fusion: [text tokens ; patch tokens] → transformer."""

    name = "VisualBERT"

    def _build(self, rng: np.random.Generator) -> None:
        width = 48
        vocab_size = len(self.bundle.vocab)
        self.token_embed = nn.Embedding(vocab_size, width, rng=rng)
        self.patch_embed = nn.Linear(_SPEC.patch**2 * _SPEC.channels, width, rng=rng)
        self.segment = nn.Parameter(nn.normal((2, width), rng))
        self.encoder = nn.TransformerEncoder(width, depth=1, num_heads=4, rng=rng)
        self.head = nn.Linear(width, 1, rng=rng)

    def _parameters(self) -> List[nn.Parameter]:
        modules = [self.token_embed, self.patch_embed, self.encoder, self.head]
        params = [p for m in modules for p in m.parameters()]
        params.append(self.segment)
        return params

    def _pair_logits(self, token_ids, mask, pixels) -> nn.Tensor:
        text = self.token_embed(token_ids) + self.segment[0]
        patches = self.patch_embed(nn.Tensor(_patch_tokens(pixels))) + self.segment[1]
        sequence = nn.concat([text, patches], axis=1)
        full_mask = np.concatenate(
            [mask, np.ones((len(pixels), _SPEC.num_patches), dtype=bool)], axis=1)
        encoded = self.encoder(sequence, full_mask)
        return self.head(encoded[:, 0, :]).reshape(-1)


class ViLBERTMatcher(_FusionBase):
    """Two-stream fusion with a co-attention exchange layer."""

    name = "ViLBERT"

    def _build(self, rng: np.random.Generator) -> None:
        width = 48
        vocab_size = len(self.bundle.vocab)
        self.token_embed = nn.Embedding(vocab_size, width, rng=rng)
        self.patch_embed = nn.Linear(_SPEC.patch**2 * _SPEC.channels, width, rng=rng)
        self.text_block = nn.TransformerBlock(width, num_heads=4, rng=rng)
        self.image_block = nn.TransformerBlock(width, num_heads=4, rng=rng)
        self.text_to_image = nn.CrossAttention(width, num_heads=4, rng=rng)
        self.image_to_text = nn.CrossAttention(width, num_heads=4, rng=rng)
        self.head = nn.Linear(2 * width, 1, rng=rng)

    def _parameters(self) -> List[nn.Parameter]:
        modules = [self.token_embed, self.patch_embed, self.text_block,
                   self.image_block, self.text_to_image, self.image_to_text,
                   self.head]
        return [p for m in modules for p in m.parameters()]

    def _pair_logits(self, token_ids, mask, pixels) -> nn.Tensor:
        text = self.text_block(self.token_embed(token_ids), mask)
        patches = self.image_block(
            self.patch_embed(nn.Tensor(_patch_tokens(pixels))))
        text_attended = text + self.text_to_image(text, patches)
        image_attended = patches + self.image_to_text(patches, text, mask)
        pooled = nn.concat([text_attended[:, 0, :],
                            image_attended.mean(axis=1)], axis=1)
        return self.head(pooled).reshape(-1)


class IMRAMMatcher(_FusionBase):
    """Iterative recurrent attention alignment (K memory steps)."""

    name = "IMRAM"
    steps = 2

    def _build(self, rng: np.random.Generator) -> None:
        width = 48
        vocab_size = len(self.bundle.vocab)
        self.token_embed = nn.Embedding(vocab_size, width, rng=rng)
        self.patch_embed = nn.Linear(_SPEC.patch**2 * _SPEC.channels, width, rng=rng)
        self.memory_update = nn.Linear(2 * width, width, rng=rng)

    def _parameters(self) -> List[nn.Parameter]:
        modules = [self.token_embed, self.patch_embed, self.memory_update]
        return [p for m in modules for p in m.parameters()]

    def _pair_logits(self, token_ids, mask, pixels) -> nn.Tensor:
        text = self.token_embed(token_ids)
        weights = (mask / mask.sum(axis=1, keepdims=True)).astype(np.float32)
        query = (text * nn.Tensor(weights[:, :, None])).sum(axis=1)
        patches = self.patch_embed(nn.Tensor(_patch_tokens(pixels)))
        scores = []
        for _ in range(self.steps):
            attention = nn.functional.softmax(
                (patches @ query.reshape(len(query), -1, 1)).reshape(
                    len(query), -1), axis=-1)
            context = (patches * attention.reshape(len(query), -1, 1)).sum(axis=1)
            normalized_q = nn.functional.l2_normalize(query)
            normalized_c = nn.functional.l2_normalize(context)
            scores.append((normalized_q * normalized_c).sum(axis=-1))
            query = self.memory_update(
                nn.concat([query, context], axis=1)).tanh()
        total = scores[0]
        for s in scores[1:]:
            total = total + s
        return total


class TransAEMatcher(_FusionBase):
    """Multi-modal autoencoder + TransE-style shared entity space."""

    name = "TransAE"
    epochs = 6

    def _build(self, rng: np.random.Generator) -> None:
        hidden = 32
        vocab_size = len(self.bundle.vocab)
        self.token_embed = nn.Embedding(vocab_size, 48, rng=rng)
        image_dim = _SPEC.num_patches * 8  # patch statistics, see encoder
        self.text_encoder = nn.MLP([48, hidden], rng=rng)
        self.image_encoder = nn.MLP([image_dim, 64, hidden], rng=rng)
        self.text_decoder = nn.MLP([hidden, 48], rng=rng)
        self.image_decoder = nn.MLP([hidden, 64, image_dim], rng=rng)

    def _parameters(self) -> List[nn.Parameter]:
        modules = [self.token_embed, self.text_encoder, self.image_encoder,
                   self.text_decoder, self.image_decoder]
        return [p for m in modules for p in m.parameters()]

    def _image_features(self, pixels: np.ndarray) -> np.ndarray:
        return np.stack([
            self.bundle.patch_extractor.raw_features(p)[:, :8].reshape(-1)
            for p in pixels])

    def _encode_pair(self, token_ids, mask, pixels) -> Tuple[nn.Tensor, nn.Tensor,
                                                             nn.Tensor, nn.Tensor]:
        text = self.token_embed(token_ids)
        weights = (mask / mask.sum(axis=1, keepdims=True)).astype(np.float32)
        pooled = (text * nn.Tensor(weights[:, :, None])).sum(axis=1)
        image_feats = nn.Tensor(self._image_features(pixels))
        text_code = self.text_encoder(pooled).tanh()
        image_code = self.image_encoder(image_feats).tanh()
        return pooled, image_feats, text_code, image_code

    def _pair_logits(self, token_ids, mask, pixels) -> nn.Tensor:
        _, _, text_code, image_code = self._encode_pair(token_ids, mask, pixels)
        # TransE-style: match when the codes coincide in the shared space.
        distance = ((text_code - image_code) ** 2).sum(axis=-1)
        return -distance

    def _pretrain(self) -> None:
        """Autoencoder reconstruction + code alignment (TransAE recipe)."""
        rng = rng_from(self.seed)
        self._build(rng)
        pairs = caption_pairs_for_training(self.bundle, seed=self.seed)
        tokenizer = self.bundle.tokenizer
        optimizer = nn.AdamW(self._parameters(), lr=self.lr)
        for _ in range(self.epochs):
            order = rng.permutation(len(pairs))
            for start in range(0, len(order), 16):
                batch = [pairs[i] for i in order[start:start + 16]]
                if len(batch) < 2:
                    continue
                token_ids = tokenizer.encode_batch([c for c, _ in batch])
                mask = tokenizer.attention_mask(token_ids)
                pixels = np.stack([p for _, p in batch])
                optimizer.zero_grad()
                pooled, image_feats, text_code, image_code = \
                    self._encode_pair(token_ids, mask, pixels)
                reconstruction = (((self.text_decoder(text_code) - pooled) ** 2).mean()
                                  + ((self.image_decoder(image_code) - image_feats) ** 2).mean())
                alignment = ((text_code - image_code) ** 2).mean()
                loss = reconstruction + alignment
                loss.backward()
                nn.clip_grad_norm(optimizer.params, 5.0)
                optimizer.step()
        self._trained = True
