"""Multi-modal knowledge-graph completion baselines (case study, §V-D).

Table V frames multi-modal KG integration as link prediction of the
``has_image`` relation: given the FB-IMG graph plus known entity-image
links for *training* entities, rank the image repository for each test
entity.  Four families of competitors:

* :class:`DistMultKG` — bilinear diagonal scorer [44].
* :class:`RotatEKG` — rotation in complex space [45].
* :class:`RSMEKG` — relation-sensitive multi-modal embedding [46]:
  image entities blend a learned embedding with a gated projection of
  frozen visual features.
* :class:`MKGformerLite` — hybrid transformer fusion [47]: vertex text
  tokens cross-attend to image patches, a head scores the link.

Pure-structure methods (DistMult/RotatE) cannot generalize ``has_image``
to unseen entities, visual/textual fusion helps somewhat, and CrossEM's
prompt-tuned matching dominates — the ordering of Table V.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..clip.zoo import PretrainedBundle
from ..datasets.generator import CrossModalDataset
from ..datasets.splits import VertexSplit
from ..nn.init import rng_from
from .common import BaselineMatcher

__all__ = ["DistMultKG", "RotatEKG", "RSMEKG", "MKGformerLite"]


class _KGEmbeddingBase(BaselineMatcher):
    """Shared machinery: entity/relation tables, negative-sampling loss.

    Entities are graph vertices plus one node per image.  Relations are
    the graph's distinct edge labels plus ``has_image``.  Training pairs
    are all graph edges plus gold (train vertex, image) links.
    """

    name = "kg-base"
    dim = 32
    epochs = 40
    lr = 1e-2
    negatives = 4

    def __init__(self, bundle: PretrainedBundle, seed: int = 0) -> None:
        super().__init__(bundle)
        self.seed = seed

    # -- scorer hooks ------------------------------------------------------
    def _entity(self, rows: np.ndarray) -> nn.Tensor:
        return self.entities[rows]

    def _score_triples(self, heads: np.ndarray, relations: np.ndarray,
                       tails: np.ndarray) -> nn.Tensor:
        raise NotImplementedError

    def _parameters(self) -> List[nn.Parameter]:
        return [self.entities, self.relations]

    # -- setup -------------------------------------------------------------------
    def _setup(self, dataset: CrossModalDataset,
               rng: np.random.Generator) -> None:
        vertex_ids = dataset.graph.vertex_ids()
        self._vertex_row = {v: i for i, v in enumerate(vertex_ids)}
        self._num_vertices = len(vertex_ids)
        self._num_images = len(dataset.images)
        num_entities = self._num_vertices + self._num_images
        labels = sorted({e.label for e in dataset.graph.edges()})
        self._relation_row = {label: i for i, label in enumerate(labels)}
        self._has_image = len(labels)
        self.entities = nn.Parameter(nn.normal((num_entities, self.dim), rng,
                                               std=0.1))
        self.relations = nn.Parameter(nn.normal((len(labels) + 1, self.dim),
                                                rng, std=0.1))

    def _image_row(self, image_position: int) -> int:
        return self._num_vertices + image_position

    def _training_triples(self, dataset: CrossModalDataset,
                          split: Optional[VertexSplit]) -> np.ndarray:
        triples: List[Tuple[int, int, int]] = []
        for edge in dataset.graph.edges():
            triples.append((self._vertex_row[edge.source],
                            self._relation_row[edge.label],
                            self._vertex_row[edge.target]))
        train_vertices = list(split.train) if split is not None \
            else list(dataset.entity_vertices)
        for vertex in train_vertices:
            for position in dataset.images_of_vertex(vertex):
                triples.append((self._vertex_row[vertex], self._has_image,
                                self._image_row(position)))
        return np.asarray(triples, dtype=np.int64)

    def fit(self, dataset: CrossModalDataset,
            split: Optional[VertexSplit] = None) -> "_KGEmbeddingBase":
        super().fit(dataset, split)
        rng = rng_from(self.seed)
        self._setup(dataset, rng)
        triples = self._training_triples(dataset, split)
        optimizer = nn.AdamW(self._parameters(), lr=self.lr)
        num_entities = self._num_vertices + self._num_images
        for _ in range(self.epochs):
            order = rng.permutation(len(triples))
            for start in range(0, len(order), 64):
                batch = triples[order[start:start + 64]]
                if not len(batch):
                    continue
                heads, relations, tails = batch.T
                # self-adversarial-lite: corrupt tails uniformly
                neg_tails = rng.integers(num_entities,
                                         size=(len(batch), self.negatives))
                optimizer.zero_grad()
                pos = self._score_triples(heads, relations, tails)
                neg = self._score_triples(
                    np.repeat(heads, self.negatives),
                    np.repeat(relations, self.negatives),
                    neg_tails.reshape(-1))
                loss = (-(pos.sigmoid() + 1e-6).log().mean()
                        - (1.0 - neg.sigmoid() + 1e-6).log().mean())
                loss.backward()
                optimizer.step()
        return self

    def score(self, vertex_ids: Sequence[int]) -> np.ndarray:
        dataset = self._require_fitted()
        num_images = len(dataset.images)
        heads = np.asarray([self._vertex_row[v] for v in vertex_ids])
        scores = np.zeros((len(vertex_ids), num_images), dtype=np.float32)
        tails = np.asarray([self._image_row(i) for i in range(num_images)])
        relations = np.full(num_images, self._has_image, dtype=np.int64)
        with nn.no_grad():
            for row, head in enumerate(heads):
                triple_scores = self._score_triples(
                    np.full(num_images, head, dtype=np.int64), relations, tails)
                scores[row] = triple_scores.numpy()
        return scores


class DistMultKG(_KGEmbeddingBase):
    """DistMult: ``score = <e_h, w_r, e_t>`` (bilinear diagonal)."""

    name = "DistMult"

    def _score_triples(self, heads, relations, tails) -> nn.Tensor:
        h = self._entity(np.asarray(heads))
        r = self.relations[np.asarray(relations)]
        t = self._entity(np.asarray(tails))
        return (h * r * t).sum(axis=-1)


class RotatEKG(_KGEmbeddingBase):
    """RotatE: relations rotate head embeddings in complex space."""

    name = "RotatE"

    def _score_triples(self, heads, relations, tails) -> nn.Tensor:
        half = self.dim // 2
        h = self._entity(np.asarray(heads))
        t = self._entity(np.asarray(tails))
        phase = self.relations[np.asarray(relations)][:, :half].tanh() * np.pi
        # cos/sin via tanh-safe approximations over autodiff primitives:
        cos = 1.0 - (phase * phase) * 0.5 + (phase ** 2) ** 2 * (1.0 / 24.0)
        sin = phase - (phase * phase * phase) * (1.0 / 6.0)
        h_re, h_im = h[:, :half], h[:, half:]
        rot_re = h_re * cos - h_im * sin
        rot_im = h_re * sin + h_im * cos
        t_re, t_im = t[:, :half], t[:, half:]
        distance = ((rot_re - t_re) ** 2 + (rot_im - t_im) ** 2).sum(axis=-1)
        return -distance


class RSMEKG(_KGEmbeddingBase):
    """RSME: image entities gate between a learned embedding and a
    projection of frozen visual features ("is visual context helpful?")."""

    name = "RSME"

    def _setup(self, dataset: CrossModalDataset,
               rng: np.random.Generator) -> None:
        super()._setup(dataset, rng)
        visual = np.stack([
            self.bundle.patch_extractor.features(img.pixels).reshape(-1)
            for img in dataset.images])
        self._visual = visual.astype(np.float32)
        self.visual_proj = nn.Linear(visual.shape[1], self.dim, rng=rng)
        self.gate = nn.Parameter(np.zeros(1, dtype=np.float32))

    def _parameters(self) -> List[nn.Parameter]:
        return (super()._parameters() + list(self.visual_proj.parameters())
                + [self.gate])

    def _entity(self, rows: np.ndarray) -> nn.Tensor:
        rows = np.asarray(rows)
        base = self.entities[rows]
        image_mask = (rows >= self._num_vertices).astype(np.float32)[:, None]
        visual_rows = np.clip(rows - self._num_vertices, 0,
                              len(self._visual) - 1)
        projected = self.visual_proj(nn.Tensor(self._visual[visual_rows]))
        gate = self.gate.sigmoid()
        mixed = base * gate + projected * (1.0 - gate)
        return base * (1.0 - image_mask) + mixed * nn.Tensor(image_mask)

    def _score_triples(self, heads, relations, tails) -> nn.Tensor:
        h = self._entity(np.asarray(heads))
        r = self.relations[np.asarray(relations)]
        t = self._entity(np.asarray(tails))
        return (h * r * t).sum(axis=-1)


class MKGformerLite(BaselineMatcher):
    """MKGformer miniature: text-patch cross-attention link scorer.

    Vertex text (label + neighborhood serialization) embedded with
    MiniLM tokens cross-attends to MiniCLIP-space patch features; a
    bilinear head scores the ``has_image`` link.  Trained supervised on
    the train split, like the released MKGformer fine-tunes on KG
    completion data.
    """

    name = "MKGformer"
    epochs = 25
    lr = 2e-3
    negatives = 4

    def __init__(self, bundle: PretrainedBundle, seed: int = 0) -> None:
        super().__init__(bundle)
        self.seed = seed

    def _vertex_feature(self, dataset: CrossModalDataset, vertex: int) -> np.ndarray:
        from ..core.prompts import HardPromptGenerator

        generator = HardPromptGenerator(dataset.graph, d=1, prefix="")
        tokens = self.bundle.minilm.embed_tokens(generator.generate(vertex))
        if not len(tokens):
            tokens = np.zeros((1, self.bundle.minilm.dim), dtype=np.float32)
        return tokens[:24]

    def fit(self, dataset: CrossModalDataset,
            split: Optional[VertexSplit] = None) -> "MKGformerLite":
        super().fit(dataset, split)
        rng = rng_from(self.seed)
        dim = self.bundle.minilm.dim
        self._patches = np.stack([
            self.bundle.aligner.patch_text_space(img.pixels)
            for img in dataset.images]).astype(np.float32)
        self._texts: Dict[int, np.ndarray] = {
            v: self._vertex_feature(dataset, v)
            for v in dataset.entity_vertices}
        self.cross = nn.CrossAttention(dim, num_heads=4, rng=rng)
        self.head = nn.Linear(2 * dim, 1, rng=rng)
        params = list(self.cross.parameters()) + list(self.head.parameters())
        optimizer = nn.AdamW(params, lr=self.lr)
        train_vertices = list(split.train) if split is not None \
            else list(dataset.entity_vertices)
        positives = [(v, i) for v in train_vertices
                     for i in dataset.images_of_vertex(v)]
        num_images = len(dataset.images)
        for _ in range(self.epochs):
            order = rng.permutation(len(positives))
            for start in range(0, len(order), 8):
                chunk = [positives[i] for i in order[start:start + 8]]
                if not chunk:
                    continue
                pairs: List[Tuple[int, int, float]] = []
                for v, i in chunk:
                    pairs.append((v, i, 1.0))
                    pairs.extend((v, int(rng.integers(num_images)), 0.0)
                                 for _ in range(self.negatives))
                optimizer.zero_grad()
                logits = self._pair_logits([p[0] for p in pairs],
                                           [p[1] for p in pairs])
                targets = nn.Tensor(np.asarray([p[2] for p in pairs],
                                               dtype=np.float32))
                probs = logits.sigmoid().clip(1e-6, 1.0 - 1e-6)
                loss = -(targets * probs.log()
                         + (1.0 - targets) * (1.0 - probs).log()).mean()
                loss.backward()
                optimizer.step()
        return self

    def _pair_logits(self, vertices: Sequence[int],
                     image_positions: Sequence[int]) -> nn.Tensor:
        length = max(len(self._texts[v]) for v in vertices)
        dim = self.bundle.minilm.dim
        text = np.zeros((len(vertices), length, dim), dtype=np.float32)
        mask = np.zeros((len(vertices), length), dtype=bool)
        for row, v in enumerate(vertices):
            tokens = self._texts[v]
            text[row, :len(tokens)] = tokens
            mask[row, :len(tokens)] = True
        patches = nn.Tensor(self._patches[np.asarray(image_positions)])
        text_t = nn.Tensor(text)
        attended = self.cross(text_t, patches)
        weights = (mask / np.maximum(mask.sum(axis=1, keepdims=True), 1)
                   ).astype(np.float32)
        pooled_text = (attended * nn.Tensor(weights[:, :, None])).sum(axis=1)
        pooled_image = patches.mean(axis=1)
        return self.head(nn.concat([pooled_text, pooled_image], axis=1)
                         ).reshape(-1)

    def score(self, vertex_ids: Sequence[int]) -> np.ndarray:
        dataset = self._require_fitted()
        for v in vertex_ids:
            if v not in self._texts:
                self._texts[v] = self._vertex_feature(dataset, v)
        num_images = len(dataset.images)
        scores = np.zeros((len(vertex_ids), num_images), dtype=np.float32)
        with nn.no_grad():
            for row, vertex in enumerate(vertex_ids):
                for start in range(0, num_images, 128):
                    positions = list(range(start, min(start + 128, num_images)))
                    logits = self._pair_logits([vertex] * len(positions),
                                               positions)
                    scores[row, start:start + len(positions)] = logits.numpy()
        return scores
