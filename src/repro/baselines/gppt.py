"""GPPT — graph pre-training and prompt tuning (supervised baseline).

GPPT [31] prompts a *graph* representation model for downstream graph
tasks; the paper adapts it to cross-modal EM by switching its objective
to binary classification "like previous EM works" and training it with
supervision.  The miniature follows that adaptation:

* vertex representations come from graph structure only (MiniLM label
  features aggregated over neighborhoods — GPPT's pre-trained GNN role),
* a task prompt head maps vertex and image features into a shared space,
* a binary classifier is trained on the *train* split's gold pairs with
  random negatives.

Because the graph side never sees pixels during pre-training and the
supervision covers only training vertices, transfer to unseen test
vertices is poor — reproducing GPPT's weak Table II numbers.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import nn
from ..clip.zoo import PretrainedBundle
from ..datalake.aggregate import GNNAggregator, aggregate_soft_features
from ..datasets.generator import CrossModalDataset
from ..datasets.splits import VertexSplit
from ..nn.init import rng_from
from .common import BaselineMatcher

__all__ = ["GPPTMatcher"]


class GPPTMatcher(BaselineMatcher):
    """Supervised graph-prompt baseline (binary classification head)."""

    name = "GPPT"
    epochs = 30
    lr = 5e-3
    negatives_per_positive = 4

    def __init__(self, bundle: PretrainedBundle, seed: int = 0) -> None:
        super().__init__(bundle)
        self.seed = seed
        self._vertex_features: Optional[dict] = None
        self._image_features: Optional[np.ndarray] = None

    def _build_features(self, dataset: CrossModalDataset) -> None:
        minilm = self.bundle.minilm
        features = {vid: minilm.embed_text(dataset.graph.label(vid))
                    for vid in dataset.graph.vertex_ids()}
        self._vertex_features = aggregate_soft_features(
            dataset.graph, features, alpha=0.5, aggregator=GNNAggregator())
        # Image side: frozen patch statistics (GPPT has no vision tower;
        # the adaptation feeds it fixed visual features).
        self._image_features = np.stack([
            self.bundle.patch_extractor.features(img.pixels).reshape(-1)
            for img in dataset.images])

    def fit(self, dataset: CrossModalDataset,
            split: Optional[VertexSplit] = None) -> "GPPTMatcher":
        super().fit(dataset, split)
        self._build_features(dataset)
        rng = rng_from(self.seed)
        dim_v = self.bundle.minilm.dim
        dim_i = self._image_features.shape[1]
        hidden = 32
        self.vertex_prompt = nn.MLP([dim_v, hidden], rng=rng)
        self.image_prompt = nn.MLP([dim_i, hidden], rng=rng)
        self.classifier = nn.MLP([2 * hidden, hidden, 1], rng=rng)
        train_vertices = list(split.train) if split is not None \
            else list(dataset.entity_vertices)
        positives = [(v, i) for v in train_vertices
                     for i in dataset.images_of_vertex(v)]
        if not positives:
            return self
        params = [p for m in (self.vertex_prompt, self.image_prompt,
                              self.classifier) for p in m.parameters()]
        optimizer = nn.AdamW(params, lr=self.lr)
        num_images = len(dataset.images)
        for _ in range(self.epochs):
            order = rng.permutation(len(positives))
            for start in range(0, len(order), 16):
                chunk = [positives[i] for i in order[start:start + 16]]
                rows_v, rows_i, labels = [], [], []
                for v, i in chunk:
                    rows_v.append(v)
                    rows_i.append(i)
                    labels.append(1.0)
                    for _ in range(self.negatives_per_positive):
                        rows_v.append(v)
                        rows_i.append(int(rng.integers(num_images)))
                        labels.append(0.0)
                optimizer.zero_grad()
                logits = self._logits(rows_v, np.asarray(rows_i))
                targets = nn.Tensor(np.asarray(labels, dtype=np.float32))
                probs = logits.sigmoid().clip(1e-6, 1.0 - 1e-6)
                loss = -(targets * probs.log()
                         + (1.0 - targets) * (1.0 - probs).log()).mean()
                loss.backward()
                optimizer.step()
        return self

    def _logits(self, vertex_ids: Sequence[int],
                image_rows: np.ndarray) -> nn.Tensor:
        vertex_feats = np.stack([self._vertex_features[v] for v in vertex_ids])
        image_feats = self._image_features[image_rows]
        joint = nn.concat([self.vertex_prompt(nn.Tensor(vertex_feats)).tanh(),
                           self.image_prompt(nn.Tensor(image_feats)).tanh()],
                          axis=1)
        return self.classifier(joint).reshape(-1)

    def score(self, vertex_ids: Sequence[int]) -> np.ndarray:
        dataset = self._require_fitted()
        num_images = len(dataset.images)
        scores = np.zeros((len(vertex_ids), num_images), dtype=np.float32)
        image_rows = np.arange(num_images)
        with nn.no_grad():
            for row, vertex in enumerate(vertex_ids):
                logits = self._logits([vertex] * num_images, image_rows)
                scores[row] = logits.numpy()
        return scores
