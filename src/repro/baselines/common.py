"""Shared infrastructure for competitor baselines.

Every baseline exposes the same minimal protocol so the benchmark
harness can treat them uniformly:

* ``fit(dataset, split)`` — prepare/pre-train (no-op for zero-shot
  dual encoders; supervised methods may use the train side of the
  split).
* ``score(vertex_ids)`` — similarity matrix against all dataset images.
* ``evaluate(dataset, vertex_ids)`` — H@k / MRR via the shared metrics.

Baselines operate on the same pre-trained bundle as CrossEM for a fair
comparison, exactly as the paper evaluates released checkpoints of each
competitor on the same benchmarks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .. import nn
from ..clip.zoo import PretrainedBundle
from ..core.metrics import RankingResult, evaluate_ranking
from ..datasets.generator import CrossModalDataset

__all__ = ["BaselineMatcher", "caption_pairs_for_training"]


class BaselineMatcher:
    """Base class implementing the evaluation plumbing."""

    name = "baseline"

    def __init__(self, bundle: PretrainedBundle) -> None:
        self.bundle = bundle
        self.dataset: Optional[CrossModalDataset] = None

    # -- protocol ------------------------------------------------------------
    def fit(self, dataset: CrossModalDataset, split=None) -> "BaselineMatcher":
        """Default: remember the dataset; subclasses add training."""
        self.dataset = dataset
        return self

    def score(self, vertex_ids: Sequence[int]) -> np.ndarray:
        raise NotImplementedError

    def evaluate(self, dataset: CrossModalDataset,
                 vertex_ids: Optional[Sequence[int]] = None) -> RankingResult:
        vertex_ids = list(vertex_ids if vertex_ids is not None
                          else dataset.entity_vertices)
        scores = self.score(vertex_ids)
        gold = [dataset.images_of_vertex(v) for v in vertex_ids]
        return evaluate_ranking(scores, gold)

    # -- shared helpers ---------------------------------------------------------
    def _require_fitted(self) -> CrossModalDataset:
        if self.dataset is None:
            raise RuntimeError(f"{type(self).__name__}.fit must be called first")
        return self.dataset

    def _image_pixels(self) -> np.ndarray:
        dataset = self._require_fitted()
        return np.stack([img.pixels for img in dataset.images])

    def _encode_images_clip(self) -> np.ndarray:
        """Frozen MiniCLIP image embeddings of all dataset images."""
        dataset = self._require_fitted()
        chunks = []
        for start in range(0, len(dataset.images), 64):
            pixels = np.stack([img.pixels
                               for img in dataset.images[start:start + 64]])
            with nn.no_grad():
                chunks.append(self.bundle.clip.encode_image(pixels).numpy())
        return np.concatenate(chunks, axis=0)


def caption_pairs_for_training(bundle: PretrainedBundle, seed: int = 0,
                               captions_per_concept: int = 2) -> List[tuple]:
    """(caption, rendered pixels) pairs from the pre-training universe —
    the supervision the fusion baselines pre-train their matching heads
    on (their published checkpoints were likewise trained on generic
    caption data, not the benchmark)."""
    from ..datasets.world import caption_for
    from ..vision.image import render_concept
    from ..nn.init import rng_from

    rng = rng_from(seed)
    pairs = []
    for concept in bundle.universe:
        for _ in range(captions_per_concept):
            caption = caption_for(concept, bundle.universe.schema, rng)
            pairs.append((caption, render_concept(concept, rng)))
    return pairs
