"""Competitor methods from the paper's evaluation (§V-A)."""

from .common import BaselineMatcher, caption_pairs_for_training
from .dual import ALIGNZeroShot, CLIPZeroShot, align_bundle_like
from .fusion import (IMRAMMatcher, TransAEMatcher, ViLBERTMatcher,
                     VisualBERTMatcher)
from .gppt import GPPTMatcher
from .kg import DistMultKG, MKGformerLite, RotatEKG, RSMEKG

__all__ = ["BaselineMatcher", "caption_pairs_for_training", "CLIPZeroShot",
           "ALIGNZeroShot", "align_bundle_like", "VisualBERTMatcher",
           "ViLBERTMatcher", "IMRAMMatcher", "TransAEMatcher", "GPPTMatcher",
           "DistMultKG", "RotatEKG", "RSMEKG", "MKGformerLite"]
