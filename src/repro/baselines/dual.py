"""Dual-encoder baselines: CLIP and ALIGN zero-shot (§V-A competitors).

Both "directly measure the distance of cross-modal representations":
the vertex label goes through the text tower with the naive photo
template, images through the image tower, and cosine similarity ranks
candidates.  No tuning — the paper evaluates released pre-trained
checkpoints directly.

ALIGN differs from CLIP by pre-training on *noisier* alt-text at larger
scale; the miniature reproduces the noise side (a bundle pre-trained
with triple the caption-swap rate), which is why it trails CLIP here
just as it does in Table II.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from .. import nn
from ..clip.pretrain import PretrainConfig
from ..clip.zoo import PretrainedBundle, get_pretrained_bundle
from ..core.prompts import baseline_prompt
from ..datasets.generator import CrossModalDataset
from .common import BaselineMatcher

__all__ = ["CLIPZeroShot", "ALIGNZeroShot", "align_bundle_like"]


class CLIPZeroShot(BaselineMatcher):
    """Frozen MiniCLIP with the naive "a photo of a [label]" prompt."""

    name = "CLIP"

    def __init__(self, bundle: PretrainedBundle,
                 template: str = "a photo of a [MASK]") -> None:
        super().__init__(bundle)
        self.template = template
        self._image_embeds: Optional[np.ndarray] = None

    def fit(self, dataset: CrossModalDataset, split=None) -> "CLIPZeroShot":
        super().fit(dataset, split)
        self._image_embeds = self._encode_images_clip()
        return self

    def _encode_labels(self, vertex_ids: Sequence[int]) -> np.ndarray:
        dataset = self._require_fitted()
        prompts = [baseline_prompt(dataset.graph.label(v), self.template)
                   for v in vertex_ids]
        token_ids = self.bundle.tokenizer.encode_batch(prompts)
        mask = self.bundle.tokenizer.attention_mask(token_ids)
        with nn.no_grad():
            return self.bundle.clip.encode_text(token_ids, mask).numpy()

    def score(self, vertex_ids: Sequence[int]) -> np.ndarray:
        if self._image_embeds is None:
            raise RuntimeError("fit must be called first")
        return self._encode_labels(vertex_ids) @ self._image_embeds.T


def align_bundle_like(bundle: PretrainedBundle,
                      noisy_caption_rate: float = 0.35) -> PretrainedBundle:
    """A second bundle pre-trained the ALIGN way: same universe, same
    architecture, much noisier captions.  Cached by the zoo like any
    other pre-trained checkpoint."""
    base = PretrainConfig()
    config = dataclasses.replace(base, noisy_caption_rate=noisy_caption_rate)
    return get_pretrained_bundle(kind=bundle.universe.kind,
                                 num_concepts=len(bundle.universe),
                                 config=config)


class ALIGNZeroShot(CLIPZeroShot):
    """ALIGN stand-in: the same dual-encoder recipe on noisy captions."""

    name = "ALIGN"

    def __init__(self, bundle: PretrainedBundle,
                 template: str = "a photo of a [MASK]") -> None:
        super().__init__(align_bundle_like(bundle), template)
