"""CrossEM: a prompt tuning framework for cross-modal entity matching.

Reproduction of Yuan et al., ICDE 2025.  The most-used names are
re-exported lazily at the top level::

    from repro import CrossEMPlus, CrossEMPlusConfig, load_cub

Subpackages:

* :mod:`repro.core` -- CrossEM / CrossEM+ matchers, prompts, metrics.
* :mod:`repro.datasets` -- synthetic CUB / SUN / FB-IMG benchmark builders.
* :mod:`repro.clip` -- the MiniCLIP multi-modal pre-trained model.
* :mod:`repro.datalake` -- graph / table / JSON / text data-lake substrate.
* :mod:`repro.baselines` -- competitor methods from the paper's evaluation.
* :mod:`repro.nn` -- the numpy autodiff engine everything runs on.
"""

import importlib

__version__ = "1.0.0"

__all__ = ["CrossEM", "CrossEMConfig", "CrossEMPlus", "CrossEMPlusConfig",
           "load_cub", "load_sun", "load_fbimg", "cub_bundle", "sun_bundle",
           "fb_bundle", "train_test_split", "__version__"]

_HOME_OF = {
    "CrossEM": "core", "CrossEMConfig": "core",
    "CrossEMPlus": "core", "CrossEMPlusConfig": "core",
    "load_cub": "datasets", "load_sun": "datasets", "load_fbimg": "datasets",
    "cub_bundle": "datasets", "sun_bundle": "datasets",
    "fb_bundle": "datasets", "train_test_split": "datasets",
}


def __getattr__(name):
    """Lazily resolve the public API (keeps ``import repro`` instant)."""
    if name in _HOME_OF:
        module = importlib.import_module(f".{_HOME_OF[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
