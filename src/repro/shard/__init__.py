"""Multi-process scale-out: partitioned workers behind one router.

``repro serve --listen`` is one process; this package is N of them
behind a fault-tolerant front door (``repro route --shards N``):

* :mod:`repro.shard.partition` — the deterministic partition of the
  image space (round-robin by repository position) and the exact
  cross-shard top-k merge, with the bit-identity argument that makes
  a routed answer equal a single-process answer byte for byte.
* :mod:`repro.shard.supervisor` — worker subprocess lifecycle: spawn
  with a port-file handshake, health-check via the ``info`` probe,
  restart crashes with exponential backoff, and mark flapping workers
  dead instead of restarting them forever.
* :mod:`repro.shard.client` — one shard's multiplexed JSONL
  connection, plus the fresh-socket one-shot path hedged retries need.
* :mod:`repro.shard.router` — the asyncio scatter/gather server:
  per-shard circuit breakers, hedged retries, deadline-capped waits,
  typed ``degraded: partial`` answers when shards are down, and an
  ordered drain (stop accepting → finish in-flight → close shard
  connections → SIGTERM workers → reap → exit 0).

See README "Scale-out" and DESIGN.md §14 for the partition contract,
the merge exactness argument, and the failure model.
"""

from .client import ShardClient, ShardUnavailable
from .partition import merge_matches, owned_mask, owned_positions, worst_tier
from .router import RouterConfig, ShardRouter
from .supervisor import SupervisorConfig, WorkerSupervisor

__all__ = [
    "ShardClient", "ShardUnavailable",
    "merge_matches", "owned_mask", "owned_positions", "worst_tier",
    "RouterConfig", "ShardRouter",
    "SupervisorConfig", "WorkerSupervisor",
]
