"""Worker lifecycle: spawn, health-check, restart, give up.

:class:`WorkerSupervisor` owns N ``repro serve --listen`` subprocesses
(one per shard slot) and runs the restart policy the router depends
on.  Each worker binds an ephemeral port and publishes it through a
per-slot *port file* (written atomically by the serve CLI), which is
the spawn handshake: the supervisor deletes the file before every
(re)spawn, polls for it to reappear, then confirms liveness with the
same ``info`` probe the load harness speaks
(:func:`repro.loadgen.probe_info`) — a worker is "live" only once it
answers protocol, not merely once it has a pid.

Restart policy, per slot:

* a worker whose process exits (crash, SIGKILL, OOM) is respawned
  after an exponential backoff (``backoff_base_s`` doubling per recent
  death, capped at ``backoff_cap_s``);
* deaths are counted in a sliding ``flap_window_s`` window; at
  ``flap_max`` deaths inside the window the slot is marked **dead**
  and never respawned — a flapping worker (bad config, poisoned
  checkpoint) must not burn CPU refitting forever, and the router
  serves partial answers without it;
* a worker that has a pid but never becomes healthy within
  ``spawn_timeout_s`` is killed and counted as a death like any crash.

The monitor runs on one daemon thread with a coarse poll — worker fits
take seconds, so sub-poll-interval reaction buys nothing.  All state
transitions export as ``shard.<slot>.*`` metrics, and pid files let
fault-injection harnesses (tests, the CI job) SIGKILL a specific
worker from outside.
"""

from __future__ import annotations

import contextlib
import dataclasses
import signal
import subprocess
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from ..loadgen.socketdrv import parse_address, probe_info
from ..obs import get_logger, registry

__all__ = ["SupervisorConfig", "WorkerSupervisor", "STATE_STARTING",
           "STATE_LIVE", "STATE_BACKOFF", "STATE_DEAD", "STATE_STOPPED"]

_log = get_logger("repro.shard.supervisor")

STATE_STARTING = "starting"
STATE_LIVE = "live"
STATE_BACKOFF = "backoff"
STATE_DEAD = "dead"
STATE_STOPPED = "stopped"


@dataclasses.dataclass
class SupervisorConfig:
    """Restart-policy knobs (see module docstring)."""

    #: seconds a spawned worker gets to publish its port and answer info
    spawn_timeout_s: float = 300.0
    #: per-probe budget of the health check's info handshake
    health_timeout_s: float = 5.0
    #: monitor poll cadence
    poll_interval_s: float = 0.2
    #: first-restart backoff; doubles per recent death
    backoff_base_s: float = 0.5
    #: backoff ceiling
    backoff_cap_s: float = 10.0
    #: deaths inside the flap window that mark the slot dead for good
    flap_max: int = 5
    #: sliding window (seconds) the deaths are counted in
    flap_window_s: float = 60.0
    #: seconds stop() waits after SIGTERM before escalating to SIGKILL
    stop_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        for field in ("spawn_timeout_s", "health_timeout_s",
                      "poll_interval_s", "backoff_base_s", "backoff_cap_s",
                      "flap_window_s", "stop_timeout_s"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")
        if self.flap_max < 1:
            raise ValueError("flap_max must be at least 1")


class _Worker:
    """Mutable per-slot state, touched only under the supervisor lock
    (or before the monitor thread exists)."""

    def __init__(self, slot: int, work_dir: Path) -> None:
        self.slot = slot
        self.port_file = work_dir / f"worker{slot}.port"
        self.pid_file = work_dir / f"worker{slot}.pid"
        self.log_path = work_dir / f"worker{slot}.log"
        self.proc: Optional[subprocess.Popen] = None
        self.log_handle = None
        self.state = STATE_STARTING
        self.address: Optional[Tuple[str, int]] = None
        self.spawned_at = 0.0
        self.next_attempt = 0.0
        self.deaths: Deque[float] = deque()
        self.restarts = 0


class WorkerSupervisor:
    """Spawn and babysit one worker subprocess per shard slot.

    ``command_for_slot(slot, port_file)`` returns the argv for that
    slot's worker; the worker must write ``host:port`` to ``port_file``
    once it listens (``repro serve --listen 127.0.0.1:0 --port-file
    ...`` does).  The supervisor is the router's *endpoint provider*:
    ``count``, :meth:`address_of` and :meth:`live_count` are the whole
    contract, all safe to call from any thread.
    """

    def __init__(self,
                 command_for_slot: Callable[[int, Path], Sequence[str]],
                 count: int, work_dir: Path,
                 config: Optional[SupervisorConfig] = None) -> None:
        if count < 1:
            raise ValueError("count must be at least 1")
        self.count = count
        self.config = config if config is not None else SupervisorConfig()
        self.work_dir = Path(work_dir)
        self._command_for_slot = command_for_slot
        self._workers: List[_Worker] = []
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # -- endpoint-provider surface -----------------------------------------
    def address_of(self, slot: int) -> Optional[Tuple[str, int]]:
        """Where slot's worker listens, ``None`` while it is not live."""
        with self._lock:
            worker = self._workers[slot]
            return worker.address if worker.state == STATE_LIVE else None

    def live_count(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers
                       if w.state == STATE_LIVE)

    def states(self) -> List[str]:
        with self._lock:
            return [w.state for w in self._workers]

    # -- lifecycle ----------------------------------------------------------
    def start(self, *, wait_healthy: bool = True,
              timeout: Optional[float] = None) -> "WorkerSupervisor":
        """Spawn every worker and start the monitor; with
        ``wait_healthy`` (the default) block until all answer info or
        raise ``RuntimeError`` (after stopping what did spawn)."""
        if self._workers:
            raise RuntimeError("supervisor already started")
        self.work_dir.mkdir(parents=True, exist_ok=True)
        now = time.monotonic()
        with self._lock:
            for slot in range(self.count):
                worker = _Worker(slot, self.work_dir)
                self._workers.append(worker)
                self._spawn(worker, now)
        self._monitor = threading.Thread(target=self._monitor_main,
                                         name="shard-supervisor",
                                         daemon=True)
        self._monitor.start()
        if wait_healthy:
            budget = timeout if timeout is not None \
                else self.config.spawn_timeout_s
            deadline = time.monotonic() + budget
            while self.live_count() < self.count:
                if time.monotonic() >= deadline or any(
                        state == STATE_DEAD for state in self.states()):
                    states = ", ".join(
                        f"{slot}:{state}"
                        for slot, state in enumerate(self.states()))
                    self.stop()
                    raise RuntimeError(
                        f"workers failed to become healthy in {budget:g}s "
                        f"({states}); logs in {self.work_dir}")
                time.sleep(min(0.05, self.config.poll_interval_s))
        return self

    def stop(self, timeout: Optional[float] = None) -> None:
        """SIGTERM every worker (their own graceful drain), reap, and
        escalate to SIGKILL past ``stop_timeout_s``.  Idempotent."""
        self._stop_event.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        budget = timeout if timeout is not None \
            else self.config.stop_timeout_s
        with self._lock:
            workers = list(self._workers)
        for worker in workers:
            if worker.proc is not None and worker.proc.poll() is None:
                with contextlib.suppress(OSError):
                    worker.proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + budget
        for worker in workers:
            if worker.proc is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                worker.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                _log.warning("worker ignored SIGTERM; killing",
                             slot=worker.slot)
                with contextlib.suppress(OSError):
                    worker.proc.kill()
                worker.proc.wait()
            if worker.log_handle is not None:
                worker.log_handle.close()
                worker.log_handle = None
            with self._lock:
                worker.state = STATE_STOPPED
                worker.address = None

    # -- internals ----------------------------------------------------------
    def _spawn(self, worker: _Worker, now: float) -> None:
        """(Re)start one worker process (lock held)."""
        worker.port_file.unlink(missing_ok=True)
        if worker.log_handle is None:
            worker.log_handle = open(worker.log_path, "ab")
        command = list(self._command_for_slot(worker.slot,
                                              worker.port_file))
        # own session: a Ctrl+C aimed at the router must reach workers
        # as the supervisor's ordered SIGTERM, not as a group signal
        worker.proc = subprocess.Popen(
            command, stdout=worker.log_handle, stderr=worker.log_handle,
            start_new_session=True)
        worker.pid_file.write_text(f"{worker.proc.pid}\n")
        worker.state = STATE_STARTING
        worker.address = None
        worker.spawned_at = now
        if worker.deaths:
            worker.restarts += 1
            registry().counter(
                f"shard.{worker.slot}.restarts_total").inc()
            registry().counter("shard.restarts_total").inc()
        _log.info("worker spawned", slot=worker.slot, pid=worker.proc.pid,
                  restarts=worker.restarts)

    def _monitor_main(self) -> None:
        while not self._stop_event.wait(self.config.poll_interval_s):
            now = time.monotonic()
            for worker in self._workers:
                try:
                    self._step(worker, now)
                except Exception as exc:  # the monitor must never die
                    _log.error("supervisor step failed", slot=worker.slot,
                               error=f"{type(exc).__name__}: {exc}")

    def _step(self, worker: _Worker, now: float) -> None:
        with self._lock:
            state = worker.state
            proc = worker.proc
        if state in (STATE_DEAD, STATE_STOPPED):
            return
        if state == STATE_BACKOFF:
            if now >= worker.next_attempt:
                with self._lock:
                    self._spawn(worker, now)
            return
        exit_code = proc.poll() if proc is not None else None
        if exit_code is not None:
            self._note_death(worker, now, f"exited with {exit_code}")
            return
        if state == STATE_STARTING:
            self._check_startup(worker, now)

    def _check_startup(self, worker: _Worker, now: float) -> None:
        address = worker.address
        if address is None:
            address = self._read_port_file(worker)
        if address is not None:
            probe = probe_info(address,
                               timeout=self.config.health_timeout_s)
            if probe["ok"]:
                with self._lock:
                    worker.address = address
                    worker.state = STATE_LIVE
                registry().gauge(f"shard.{worker.slot}.up").set(1.0)
                _log.info("worker live", slot=worker.slot,
                          host=address[0], port=address[1])
                return
        if now - worker.spawned_at > self.config.spawn_timeout_s:
            _log.warning("worker never became healthy; killing",
                         slot=worker.slot)
            with contextlib.suppress(OSError):
                worker.proc.kill()
            worker.proc.wait()
            self._note_death(worker, now, "spawn timeout")

    def _read_port_file(self, worker: _Worker) -> Optional[Tuple[str, int]]:
        try:
            text = worker.port_file.read_text().strip()
        except OSError:
            return None
        if not text:
            return None
        try:
            return parse_address(text)
        except ValueError:
            _log.warning("unparseable port file", slot=worker.slot,
                         content=text)
            return None

    def _note_death(self, worker: _Worker, now: float, why: str) -> None:
        reg = registry()
        reg.counter(f"shard.{worker.slot}.deaths_total").inc()
        with self._lock:
            worker.address = None
            worker.proc = None
            worker.deaths.append(now)
            while worker.deaths and \
                    now - worker.deaths[0] > self.config.flap_window_s:
                worker.deaths.popleft()
            deaths_in_window = len(worker.deaths)
            if deaths_in_window >= self.config.flap_max:
                worker.state = STATE_DEAD
            else:
                backoff = min(
                    self.config.backoff_base_s * 2 ** (deaths_in_window - 1),
                    self.config.backoff_cap_s)
                worker.state = STATE_BACKOFF
                worker.next_attempt = now + backoff
        reg.gauge(f"shard.{worker.slot}.up").set(0.0)
        if worker.state == STATE_DEAD:
            reg.gauge(f"shard.{worker.slot}.dead").set(1.0)
            _log.error("worker flapping; marked dead", slot=worker.slot,
                       deaths_in_window=deaths_in_window, last_death=why)
        else:
            _log.warning("worker died; restart scheduled",
                         slot=worker.slot, why=why,
                         backoff_s=round(worker.next_attempt - now, 3))
