"""The scatter/gather front door (``repro route``).

:class:`ShardRouter` speaks the exact JSONL protocol of
``repro serve --listen`` (:mod:`repro.netserve.protocol`) on its client
side, and fans each match query out to every shard worker on its back
side, merging the per-shard top-k lists with the shared ``(-score,
image id)`` total order (:mod:`repro.shard.partition`).  A client that
worked against a single server works against the router unchanged —
same requests, same response schema, and, when every shard answers,
*bit-identical* response payloads (DESIGN.md §14).

The headline is what happens when shards misbehave:

* **per-shard circuit breakers** — each shard's calls run through its
  own :class:`~repro.serve.breaker.CircuitBreaker`; a shard that keeps
  failing or timing out is skipped entirely for the cooldown instead
  of taxing every request with a doomed wait;
* **hedged retries** — when a shard has not answered by
  ``hedge_fraction`` of its budget, the router re-sends the query on a
  fresh one-shot connection (never queued behind the stalled pooled
  socket); first answer wins, and a shard that answers neither in
  time is marked *late* (a breaker failure), not waited on;
* **partial-result degradation** — open-breaker/late/dead shards cost
  coverage, not availability: the router answers from the shards that
  did respond, typed ``degraded: true, reason: "partial"`` with
  ``shards_answered``/``shards_total``, extending the serve ladder's
  honesty contract across processes.  Only when *no* shard answers
  does a request fail (typed ``unavailable``);
* **deadline budgets** — a request's ``budget_ms`` is forwarded to the
  shards verbatim (their serve-side deadline machinery applies
  unchanged) and additionally caps how long the router itself waits,
  so the router never holds a request past what the client paid for.

Graceful drain (SIGTERM/SIGINT) is ordered: stop accepting → finish
every in-flight fan-out and flush → close shard connections → SIGTERM
the workers through the supervisor and reap them → exit 0.

Everything observable exports through the ordinary registry:
``shard.router.*`` (requests, partials, sheds, drain) and
``shard.<slot>.*`` (latency, hedges, lates, breaker state, restarts
from the supervisor) — one OpenMetrics snapshot shows the whole fleet.

The router is also the fleet's observability front door (DESIGN.md
§15): every fan-out propagates a trace context to each shard attempt
and stitches the returned worker subtrees into one cross-process
timeline (hedged retries become sibling ``attempt/*`` spans with a
``hedge_won`` event; a shard that answers nothing stitchable leaves a
typed ``trace_gap``), and the ``stats`` op answers with a live,
aggregated scrape of every worker — counters summed, bucket histograms
merged, gauges/spans labeled ``shard="<slot>"``.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import signal
import time
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..netserve.protocol import (LineReader, OversizedLine, decode_line,
                                 encode_response)
from ..obs import get_logger, registry, span_snapshot
from ..obs.scrape import aggregate_fleet
from ..obs.trace import (FLAG_DEGRADED, FLAG_ERROR, SamplePolicy, Tracer,
                         shift_span_row, trace_recorder)
from ..serve.breaker import STATE_CODES, CircuitBreaker
from ..serve.service import parse_trace_context
from .client import ShardClient, ShardUnavailable
from .partition import merge_matches, worst_tier

__all__ = ["RouterConfig", "ShardRouter"]

_log = get_logger("repro.shard.router")


@dataclasses.dataclass
class RouterConfig:
    """Tuning knobs of the scatter/gather front end."""

    #: bind address; port 0 binds an ephemeral port (tests)
    host: str = "127.0.0.1"
    port: int = 0
    #: ceiling on how long the router waits for any shard, and the
    #: effective budget for requests that carry none
    shard_timeout_ms: float = 2000.0
    #: fraction of the shard budget after which an unanswered shard is
    #: hedged on a fresh connection; >= 1 disables hedging
    hedge_fraction: float = 0.5
    #: per-connection outstanding-request cap (typed shed beyond it)
    conn_inflight: int = 64
    #: budget of the proxied ``info`` handshake
    info_timeout_ms: float = 2000.0
    #: seconds the drain waits for in-flight fan-outs to finish
    drain_timeout_s: float = 30.0
    #: per-shard circuit breaker: sliding window (calls)
    breaker_window: int = 8
    #: per-shard circuit breaker: failure rate that opens it
    breaker_failure_threshold: float = 0.5
    #: per-shard circuit breaker: minimum calls before it can open
    breaker_min_calls: int = 3
    #: per-shard circuit breaker: open time before a half-open probe
    breaker_cooldown_ms: float = 1000.0
    #: head-sampling rate for route traces (degraded/partial and error
    #: outcomes are always retained regardless)
    trace_sample_rate: float = 1.0
    #: sampled traces retained in the bounded recorder (newest win)
    trace_capacity: int = 256
    #: budget of one shard's ``stats`` scrape during fleet aggregation
    stats_timeout_ms: float = 5000.0

    def __post_init__(self) -> None:
        if self.shard_timeout_ms <= 0:
            raise ValueError("shard_timeout_ms must be positive")
        if self.hedge_fraction <= 0:
            raise ValueError("hedge_fraction must be positive "
                             "(>= 1 disables hedging)")
        if self.conn_inflight < 1:
            raise ValueError("conn_inflight must be at least 1")
        if self.info_timeout_ms <= 0:
            raise ValueError("info_timeout_ms must be positive")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")
        if self.breaker_window < 1:
            raise ValueError("breaker_window must be at least 1")
        if not 0.0 < self.breaker_failure_threshold <= 1.0:
            raise ValueError("breaker_failure_threshold must be in (0, 1]")
        if self.breaker_min_calls < 1:
            raise ValueError("breaker_min_calls must be at least 1")
        if self.breaker_cooldown_ms <= 0:
            raise ValueError("breaker_cooldown_ms must be positive")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be in [0, 1]")
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be at least 1")
        if self.stats_timeout_ms <= 0:
            raise ValueError("stats_timeout_ms must be positive")


class ShardRouter:
    """Scatter/gather over an *endpoint provider*.

    ``endpoints`` supplies the fleet: ``count`` (total slots),
    ``address_of(slot)`` (``None`` while a worker is down — the
    supervisor's restarts surface here as address changes), and
    optionally ``live_count()`` (for the info payload) and ``stop()``
    (called at the tail of the drain; the supervisor's ordered
    SIGTERM + reap).  Tests pass a trivial static provider; production
    passes a :class:`~repro.shard.supervisor.WorkerSupervisor`.
    """

    def __init__(self, endpoints: Any,
                 config: Optional[RouterConfig] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.endpoints = endpoints
        self.config = config if config is not None else RouterConfig()
        if tracer is None:
            trace_recorder().set_capacity(self.config.trace_capacity)
            tracer = Tracer(policy=SamplePolicy(
                rate=self.config.trace_sample_rate))
        self.tracer = tracer
        self.bound: Optional[Tuple[str, int]] = None
        cooldown = self.config.breaker_cooldown_ms / 1000.0
        self._breakers = [
            CircuitBreaker(f"shard{slot}", window=self.config.breaker_window,
                           failure_threshold=(
                               self.config.breaker_failure_threshold),
                           min_calls=self.config.breaker_min_calls,
                           cooldown=cooldown)
            for slot in range(endpoints.count)]
        self._clients: List[ShardClient] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._drain_event: Optional[asyncio.Event] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._info_cache: Optional[dict] = None

    # -- lifecycle ----------------------------------------------------------
    def run(self, *, install_signals: bool = True,
            ready: Optional[Callable[[Tuple[str, int]], None]] = None) -> int:
        """Blocking entry point; returns the process exit code (0 for a
        clean drain, 1 when in-flight work outlived the timeout)."""
        return asyncio.run(self._main(install_signals, ready))

    def trigger_drain(self) -> None:
        """Thread-safe drain initiation (the programmatic SIGTERM)."""
        loop, event = self._loop, self._drain_event
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass  # loop already closed: the drain it would ask for is done

    async def _main(self, install_signals: bool,
                    ready: Optional[Callable[[Tuple[str, int]], None]]) -> int:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._drain_event = asyncio.Event()
        self._clients = [
            ShardClient(slot, self._address_getter(slot))
            for slot in range(self.endpoints.count)]
        if install_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self._on_signal, sig)
        clean = await self._serve(ready)
        return 0 if clean else 1

    def _address_getter(self, slot: int) -> Callable[[], Optional[Tuple]]:
        return lambda: self.endpoints.address_of(slot)

    def _on_signal(self, sig: int) -> None:
        registry().counter("shard.router.drain.signals").inc()
        _log.info("drain signal received", signal=signal.Signals(sig).name)
        self._drain_event.set()

    async def _serve(
            self,
            ready: Optional[Callable[[Tuple[str, int]], None]]) -> bool:
        cfg = self.config
        reg = registry()
        self._conns_gauge = reg.gauge("shard.router.conns")
        self._conns_gauge.set(0)
        server = await asyncio.start_server(
            self._on_connection, cfg.host, cfg.port)
        sockname = server.sockets[0].getsockname()
        self.bound = (sockname[0], sockname[1])
        _log.info("routing", host=self.bound[0], port=self.bound[1],
                  shards=self.endpoints.count)
        if ready is not None:
            ready(self.bound)
        await self._drain_event.wait()

        # -- ordered drain ------------------------------------------------
        started = time.monotonic()
        _log.info("draining", conns=len(self._conn_tasks))
        server.close()
        await server.wait_closed()  # 1. stop accepting
        pending: Set[asyncio.Task] = set()
        if self._conn_tasks:  # 2. finish in-flight fan-outs, flush
            _, pending = await asyncio.wait(
                set(self._conn_tasks), timeout=cfg.drain_timeout_s)
            for task in pending:
                task.cancel()
        for client in self._clients:  # 3. close shard connections
            await client.close()
        if hasattr(self.endpoints, "stop"):  # 4. SIGTERM workers, reap
            await asyncio.get_running_loop().run_in_executor(
                None, self.endpoints.stop)
        clean = not pending
        elapsed_ms = (time.monotonic() - started) * 1e3
        reg.histogram("shard.router.drain.duration_ms").observe(elapsed_ms)
        reg.gauge("shard.router.drain.clean").set(1.0 if clean else 0.0)
        _log.info("drain complete", clean=clean,
                  duration_ms=round(elapsed_ms, 3))
        return clean

    # -- per-connection handling -------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        registry().counter("shard.router.conns_total").inc()
        self._conns_gauge.set(float(len(self._conn_tasks)))
        try:
            await self._connection_loop(reader, writer)
        except Exception as exc:  # a broken conn must never kill routing
            _log.warning("connection failed",
                         error=f"{type(exc).__name__}: {exc}")
        finally:
            self._conn_tasks.discard(task)
            self._conns_gauge.set(float(len(self._conn_tasks)))
            with contextlib.suppress(Exception):
                writer.close()

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        cfg = self.config
        lines = LineReader(reader)
        write_lock = asyncio.Lock()
        state = {"broken": False}
        inflight: Set[asyncio.Task] = set()

        async def respond(response: dict) -> None:
            if state["broken"]:
                return
            async with write_lock:
                try:
                    writer.write(encode_response(response))
                    await writer.drain()
                except (ConnectionError, OSError):
                    # client went away mid-write: stop writing, keep
                    # answering so fan-outs still complete and drain
                    state["broken"] = True
                    registry().counter(
                        "shard.router.conn.broken_total").inc()

        drain_wait = asyncio.ensure_future(self._drain_event.wait())
        try:
            while not self._drain_event.is_set():
                line_task = asyncio.ensure_future(lines.readline())
                done, _ = await asyncio.wait(
                    {line_task, drain_wait},
                    return_when=asyncio.FIRST_COMPLETED)
                if line_task not in done:
                    line_task.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await line_task
                    break
                try:
                    raw = line_task.result()
                except OversizedLine as exc:
                    registry().counter(
                        "shard.router.oversized_line").inc()
                    await respond(self._bad_line_response(exc))
                    continue
                except (ConnectionError, OSError):
                    break
                if not raw:
                    break  # EOF: client half-closed, flush and finish
                if not raw.strip():
                    continue
                try:
                    request = decode_line(raw)
                except ValueError as exc:
                    await respond(self._bad_line_response(exc))
                    continue
                if isinstance(request, dict) and request.get("op") == "info":
                    await respond(await self._info_response(
                        request.get("id")))
                    continue
                if isinstance(request, dict) and \
                        request.get("op") == "stats":
                    await respond(await self._stats_response(
                        request.get("id")))
                    continue
                if len(inflight) >= cfg.conn_inflight:
                    registry().counter(
                        "shard.router.conn.overloaded_total").inc()
                    request_id = request.get("id") \
                        if isinstance(request, dict) else None
                    await respond(self._rejection(
                        request_id, "overloaded",
                        f"connection has {len(inflight)} requests in "
                        f"flight (cap {cfg.conn_inflight}); read before "
                        f"writing more"))
                    continue
                request_task = asyncio.ensure_future(
                    self._answer_and_respond(request, respond))
                inflight.add(request_task)
                request_task.add_done_callback(inflight.discard)
        finally:
            drain_wait.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await drain_wait
            if inflight:
                # every fan-out is bounded by the shard timeout, so
                # this resolves; the drain timeout is the backstop
                await asyncio.wait(set(inflight),
                                   timeout=self.config.drain_timeout_s)
            if not state["broken"]:
                with contextlib.suppress(Exception):
                    await writer.drain()

    async def _answer_and_respond(
            self, request: Any,
            respond: Callable[[dict], Any]) -> None:
        try:
            response = await self._answer(request)
        except Exception as exc:  # isolate a router bug to its request
            registry().counter("shard.router.internal_errors_total").inc()
            _log.error("internal error routing request",
                       error=f"{type(exc).__name__}: {exc}")
            request_id = request.get("id") \
                if isinstance(request, dict) else None
            response = self._rejection(
                request_id, "internal", f"{type(exc).__name__}: {exc}")
        await respond(response)

    # -- scatter/gather -----------------------------------------------------
    async def _answer(self, request: Any) -> dict:
        cfg = self.config
        reg = registry()
        reg.counter("shard.router.requests_total").inc()
        loop = asyncio.get_running_loop()
        started = loop.time()
        if not isinstance(request, dict):
            # same wording the serve layer's validation uses
            return self._rejection(None, "bad_request",
                                   "request must be a JSON object")
        request_id = request.get("id")
        # join the client's trace when it sent a context, else mint —
        # either way the fan-out below propagates *this* trace's id to
        # every shard attempt (DESIGN.md §15).  No thread-local
        # activation: this is asyncio, spans are passed explicitly.
        trace_id, parent_span, return_spans = parse_trace_context(request)
        trace = self.tracer.start("route.request", trace_id=trace_id,
                                  parent_span_id=parent_span)
        budget_s = cfg.shard_timeout_ms / 1000.0
        budget_ms = request.get("budget_ms")
        if isinstance(budget_ms, (int, float)) \
                and not isinstance(budget_ms, bool) and budget_ms > 0:
            # the shard applies the same budget server-side (the field
            # is forwarded verbatim); this caps the router's own wait
            budget_s = min(budget_s, float(budget_ms) / 1000.0)
        hedge_after_s = budget_s * cfg.hedge_fraction \
            if cfg.hedge_fraction < 1.0 else None
        count = self.endpoints.count
        results = await asyncio.gather(
            *(self._call_shard(slot, request, budget_s, hedge_after_s,
                               trace)
              for slot in range(count)))
        elapsed_ms = (loop.time() - started) * 1e3
        reg.histogram("shard.router.request_ms").observe(elapsed_ms)
        oks = [r for r in results if r is not None and r.get("ok")]
        errors = [r for r in results if r is not None and not r.get("ok")]
        if oks:
            response = await self._merged_response(request, request_id,
                                                   oks, count, elapsed_ms)
        elif errors:
            # every answering shard refused identically (bad request,
            # shed): forward the lowest slot's error under our id
            reg.counter("shard.router.error_total").inc()
            response = {"id": request_id, "ok": False,
                        "error": errors[0].get("error"),
                        "elapsed_ms": round(elapsed_ms, 3)}
        else:
            reg.counter("shard.router.unavailable_total").inc()
            response = self._rejection(
                request_id, "unavailable",
                f"no shard answered (0/{count})")
        # flags drive forced retention: a partial/degraded or failed
        # fan-out is kept even at sample rate 0
        if not response.get("ok"):
            trace.flag(FLAG_ERROR)
        elif response.get("degraded"):
            trace.flag(FLAG_DEGRADED)
        kept = trace.finish()
        if trace.trace_id is not None:
            response["trace_id"] = trace.trace_id
            if return_spans and kept:
                response["trace"] = trace.to_wire()
        return response

    async def _merged_response(self, request: dict, request_id: Any,
                               oks: List[dict], count: int,
                               elapsed_ms: float) -> dict:
        reg = registry()
        top_k = request.get("top_k")
        if isinstance(top_k, bool) or not isinstance(top_k, int) \
                or top_k < 1:
            # shards answered, so at least one is reachable for info;
            # their default is authoritative (all spawned identically)
            top_k = await self._top_k_default(
                max(len(r.get("matches", [])) for r in oks))
        matches = merge_matches([r.get("matches", []) for r in oks], top_k)
        tier = worst_tier(r.get("tier", "full") for r in oks) or "full"
        partial = len(oks) < count
        shard_degraded = [r for r in oks if r.get("degraded")]
        degraded = partial or bool(shard_degraded) or tier != "full"
        response = {"id": request_id, "ok": True,
                    "vertex": oks[0].get("vertex"), "tier": tier,
                    "degraded": degraded, "matches": matches,
                    "elapsed_ms": round(elapsed_ms, 3)}
        reg.counter("shard.router.ok_total").inc()
        if partial:
            reg.counter("shard.router.partial_total").inc()
            response["reason"] = "partial"
            response["shards_answered"] = len(oks)
            response["shards_total"] = count
        elif degraded:
            reasons = [r.get("reason") for r in shard_degraded
                       if r.get("reason")]
            if reasons:
                response["reason"] = reasons[0]
        if degraded:
            reg.counter("shard.router.degraded_total").inc()
        return response

    def _forwarded(self, request: dict, trace: Any,
                   attempt_span: Any) -> dict:
        """The request body one attempt sends downstream.  With router
        tracing on, the attempt's span becomes the worker-side parent
        and the worker is asked to ship its spans back for stitching;
        with tracing off the request (including any client-supplied
        context) passes through untouched."""
        if trace.trace_id is None or attempt_span is None:
            return request
        body = dict(request)
        body["trace"] = {"trace_id": trace.trace_id,
                         "parent_span": attempt_span.span_id,
                         "return_spans": True}
        return body

    async def _call_shard(self, slot: int, request: dict, budget_s: float,
                          hedge_after_s: Optional[float],
                          trace: Any) -> Optional[dict]:
        """One shard's answer, through its breaker, with hedging.
        Returns the shard's response dict, or ``None`` when the shard
        was skipped (open breaker), failed, or never answered in time —
        the partial-degradation cases.

        Tracing: the shard gets a ``shard/<slot>`` span; every attempt
        (pooled, hedge) is a sibling child span carrying the trace
        context downstream.  The winner's returned subtree is re-based
        and grafted under its attempt span; a shard that answers with
        nothing stitchable leaves a typed ``trace_gap`` event instead —
        a hole in the timeline is data, not a crash."""
        reg = registry()
        breaker = self._breakers[slot]
        reg.gauge(f"shard.{slot}.breaker_state").set(
            float(STATE_CODES[breaker.state()]))
        shard_span = trace.open_span(f"shard/{slot}", trace.root) \
            if trace.trace_id is not None else None
        if not breaker.allows_call():
            reg.counter(f"shard.{slot}.skipped_total").inc()
            if shard_span is not None:
                trace.add_event("trace_gap", shard_span, slot=slot,
                                reason="skipped")
                trace.close_span(shard_span)
            return None
        client = self._clients[slot]
        loop = asyncio.get_running_loop()
        started = loop.time()
        deadline_at = started + budget_s
        attempt_meta: Dict[asyncio.Task, Tuple[str, Any]] = {}

        def launch(kind: str, call, timeout: float) -> asyncio.Task:
            attempt_span = trace.open_span(f"attempt/{kind}", shard_span) \
                if shard_span is not None else None
            task = asyncio.ensure_future(
                call(self._forwarded(request, trace, attempt_span),
                     timeout=timeout))
            attempt_meta[task] = (kind, attempt_span)
            return task

        attempts: Set[asyncio.Task] = {
            launch("pooled", client.request, budget_s)}
        hedged = hedge_after_s is None
        response: Optional[dict] = None
        winner: Tuple[str, Any] = ("pooled", None)
        failed: Optional[BaseException] = None
        try:
            while attempts and response is None:
                now = loop.time()
                remaining = deadline_at - now
                if remaining <= 0:
                    break
                if not hedged:
                    remaining = min(remaining,
                                    started + hedge_after_s - now)
                done, attempts = await asyncio.wait(
                    attempts, timeout=max(remaining, 0.001),
                    return_when=asyncio.FIRST_COMPLETED)
                for attempt in done:
                    kind, attempt_span = attempt_meta.pop(
                        attempt, ("pooled", None))
                    if attempt_span is not None:
                        trace.close_span(attempt_span)
                    if attempt.cancelled():
                        continue
                    error = attempt.exception()
                    if error is None:
                        if response is None:
                            response = attempt.result()
                            winner = (kind, attempt_span)
                    elif not isinstance(error, asyncio.TimeoutError):
                        # a timed-out attempt is "late", not "failed" —
                        # the deadline accounting below covers it
                        failed = error
                        if attempt_span is not None:
                            trace.add_event(
                                "attempt_failed", attempt_span,
                                error=type(error).__name__)
                if response is None and not hedged \
                        and loop.time() >= started + hedge_after_s:
                    hedged = True
                    remaining = deadline_at - loop.time()
                    if remaining > 0:
                        reg.counter(f"shard.{slot}.hedges_total").inc()
                        attempts.add(launch("hedge", client.request_once,
                                            remaining))
        finally:
            for attempt in attempts:
                attempt.cancel()
            if attempts:
                await asyncio.gather(*attempts, return_exceptions=True)
            for _, attempt_span in attempt_meta.values():
                if attempt_span is not None:
                    trace.close_span(attempt_span)
        latency_ms = (loop.time() - started) * 1e3
        reg.histogram(f"shard.{slot}.latency_ms").observe(latency_ms)
        if response is not None:
            breaker.record_success()
            reg.counter(f"shard.{slot}.answered_total").inc()
            subtree = response.pop("trace", None)
            if shard_span is not None:
                win_kind, win_span = winner
                if win_kind == "hedge":
                    trace.add_event("hedge_won", shard_span, slot=slot,
                                    winner="hedge")
                target = win_span if win_span is not None else shard_span
                if isinstance(subtree, dict) \
                        and isinstance(subtree.get("spans"), dict):
                    delta_ms = (target.start - trace.root.start) * 1e3
                    row = shift_span_row(subtree["spans"], delta_ms)
                    row["process"] = f"shard{slot}"
                    trace.graft(target, row)
                else:
                    # worker sampled its side away (or predates
                    # propagation): a typed hole, not a crash
                    trace.add_event("trace_gap", target, slot=slot,
                                    reason="unsampled")
                trace.close_span(shard_span)
            return response
        breaker.record_failure()
        if failed is None:
            # no attempt errored — the shard simply never answered
            reg.counter(f"shard.{slot}.late_total").inc()
            _log.warning("shard late", slot=slot,
                         budget_ms=round(budget_s * 1e3, 1))
        else:
            reg.counter(f"shard.{slot}.failed_total").inc()
            detail = f"{type(failed).__name__}: {failed}" \
                if not isinstance(failed, ShardUnavailable) else str(failed)
            _log.warning("shard call failed", slot=slot, error=detail)
        if shard_span is not None:
            trace.add_event("trace_gap", shard_span, slot=slot,
                            reason="late" if failed is None else "failed")
            trace.close_span(shard_span)
        return None

    # -- control responses --------------------------------------------------
    async def _shard_info(self) -> Optional[dict]:
        """One worker's info payload (cached after the first success) —
        the fleet is homogeneous, so any live shard speaks for all on
        repository metadata."""
        if self._info_cache is not None:
            return self._info_cache
        timeout = self.config.info_timeout_ms / 1000.0
        for slot in range(self.endpoints.count):
            try:
                answer = await self._clients[slot].request(
                    {"op": "info"}, timeout=timeout)
            except (ShardUnavailable, asyncio.TimeoutError):
                continue
            if isinstance(answer, dict) and answer.get("ok"):
                info = dict(answer.get("info", {}))
                info.pop("shard", None)  # per-worker detail, not fleet
                self._info_cache = info
                return info
        return None

    async def _top_k_default(self, fallback: int) -> int:
        info = await self._shard_info()
        if info is not None and isinstance(info.get("top_k_default"), int):
            return max(1, info["top_k_default"])
        return max(1, fallback)

    async def _info_response(self, request_id: Any) -> dict:
        info = await self._shard_info()
        if info is None:
            return self._rejection(request_id, "unavailable",
                                   "no shard reachable for info")
        live = self.endpoints.live_count() \
            if hasattr(self.endpoints, "live_count") \
            else sum(1 for b in self._breakers if b.state() != "open")
        payload = dict(info)
        payload["shards"] = {"total": self.endpoints.count, "live": live}
        return {"id": request_id, "ok": True, "info": payload}

    async def _stats_response(self, request_id: Any) -> dict:
        """Answer ``stats`` with the *fleet's* live snapshot: scrape
        every shard concurrently, aggregate (counters summed, bucket
        histograms merged, gauges/spans labeled per shard —
        :func:`repro.obs.scrape.aggregate_fleet`), and append the
        router's own instruments.  A shard that fails to answer costs
        coverage, not the scrape: it is reported in
        ``stats.shards.answered`` and counted per slot."""
        reg = registry()
        reg.counter("shard.router.stats_total").inc()
        timeout = self.config.stats_timeout_ms / 1000.0

        async def scrape(slot: int) -> Optional[dict]:
            try:
                return await self._clients[slot].scrape(timeout=timeout)
            except (ShardUnavailable, asyncio.TimeoutError) as exc:
                reg.counter(f"shard.{slot}.scrape_failed_total").inc()
                _log.warning("shard scrape failed", slot=slot,
                             error=f"{type(exc).__name__}: {exc}")
                return None

        results = await asyncio.gather(
            *(scrape(slot) for slot in range(self.endpoints.count)))
        per_shard = {str(slot): stats
                     for slot, stats in enumerate(results)}
        stats = aggregate_fleet(per_shard, own_rows=registry().snapshot(),
                                own_spans=span_snapshot())
        if stats.get("captured_unix") is None:
            stats["captured_unix"] = time.time()
        return {"id": request_id, "ok": True, "stats": stats}

    def _bad_line_response(self, error: Exception) -> dict:
        reg = registry()
        reg.counter("shard.router.requests_total").inc()
        reg.counter("shard.router.requests.bad_line").inc()
        return self._rejection(None, "bad_request",
                               f"invalid JSON: {error}")

    @staticmethod
    def _rejection(request_id: Any, code: str, message: str) -> dict:
        reg = registry()
        reg.counter(f"shard.router.error.{code}").inc()
        return {"id": request_id, "ok": False,
                "error": {"type": code, "message": message},
                "elapsed_ms": 0.0}
