"""One shard's connection, as the router sees it.

:class:`ShardClient` keeps a single persistent JSONL connection to its
worker and multiplexes the router's concurrent requests over it,
correlating responses by a client-private id (``s<slot>-<n>``) so the
worker's out-of-order answers land on the right futures.  The worker
never sees the downstream client's ids — the router owns that mapping.

Two request paths:

* :meth:`request` — the pooled path: write on the shared connection,
  await the pump.  Reconnects lazily, including to a *new* address
  when the supervisor restarted the worker on a fresh ephemeral port.
* :meth:`request_once` — the hedge path: a brand-new throwaway
  connection for exactly one exchange.  A hedged retry must not queue
  behind whatever is stalling the pooled socket, which is the whole
  point of hedging.

Failures surface as :class:`ShardUnavailable` (typed with a short
reason) so the router's breaker accounting can treat "connection
refused", "EOF mid-request" and "no address yet" uniformly.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
from typing import Any, Callable, Dict, Optional, Tuple

from ..netserve.protocol import LineReader, decode_line, encode_response
from ..obs import get_logger

__all__ = ["ShardClient", "ShardUnavailable", "RESPONSE_LINE_BYTES"]

_log = get_logger("repro.shard.client")

#: per-line cap for worker *responses* — wider than the request cap
#: because a top-k over a large repository is a long (legitimate) line
RESPONSE_LINE_BYTES = 8 << 20


class ShardUnavailable(ConnectionError):
    """A shard could not take (or finish) a call right now."""

    def __init__(self, slot: int, reason: str, detail: str = "") -> None:
        super().__init__(f"shard {slot} unavailable ({reason})"
                         + (f": {detail}" if detail else ""))
        self.slot = slot
        self.reason = reason


class ShardClient:
    """Multiplexed JSONL client for one shard worker.

    ``get_address`` is polled at (re)connect time — it is how the
    supervisor's restarts propagate: the client holds no address of its
    own, only the connection it last built, and rebuilds whenever the
    provider's answer changes or the connection broke.
    """

    def __init__(self, slot: int,
                 get_address: Callable[[], Optional[Tuple[str, int]]], *,
                 connect_timeout: float = 5.0) -> None:
        self.slot = slot
        self._get_address = get_address
        self._connect_timeout = connect_timeout
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._pending: Dict[str, asyncio.Future] = {}
        self._ids = itertools.count()
        self._connected_to: Optional[Tuple[str, int]] = None
        self._conn_lock = asyncio.Lock()

    # -- connection management ---------------------------------------------
    async def _ensure_connected(self) -> None:
        async with self._conn_lock:
            address = self._get_address()
            if address is None:
                raise ShardUnavailable(self.slot, "no_address",
                                       "worker has not published a port")
            if self._writer is not None and not self._writer.is_closing() \
                    and self._connected_to == address:
                return
            await self._teardown()
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(*address),
                    self._connect_timeout)
            except (OSError, asyncio.TimeoutError) as exc:
                raise ShardUnavailable(
                    self.slot, "connect",
                    f"{type(exc).__name__}: {exc}") from exc
            self._writer = writer
            self._connected_to = address
            self._pump_task = asyncio.ensure_future(
                self._pump(LineReader(reader,
                                      max_line_bytes=RESPONSE_LINE_BYTES),
                           writer))

    async def _teardown(self) -> None:
        if self._pump_task is not None:
            self._pump_task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await self._pump_task
            self._pump_task = None
        if self._writer is not None:
            with contextlib.suppress(Exception):
                self._writer.close()
            self._writer = None
        self._connected_to = None
        self._fail_pending("io", "connection torn down")

    async def close(self) -> None:
        async with self._conn_lock:
            await self._teardown()

    def _fail_pending(self, reason: str, detail: str) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    ShardUnavailable(self.slot, reason, detail))

    # -- the response pump --------------------------------------------------
    async def _pump(self, lines: LineReader,
                    writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await lines.readline()
                if not line:
                    break  # worker closed (death or drain)
                if not line.strip():
                    continue
                try:
                    response = decode_line(line)
                except ValueError:
                    _log.warning("undecodable shard response dropped",
                                 slot=self.slot)
                    continue
                if not isinstance(response, dict):
                    continue
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            _log.warning("shard response pump failed", slot=self.slot,
                         error=f"{type(exc).__name__}: {exc}")
        finally:
            # every in-flight call on this connection is now undeliverable
            if self._writer is writer:
                self._writer = None
                self._connected_to = None
            with contextlib.suppress(Exception):
                writer.close()
            self._fail_pending("io", "connection to worker lost")

    # -- request paths ------------------------------------------------------
    async def request(self, payload: dict, *, timeout: float) -> dict:
        """One exchange on the pooled connection.  ``payload`` is sent
        with a client-private ``id``; the caller's own id never crosses
        this hop.  Raises :class:`ShardUnavailable` on connection
        failure and ``asyncio.TimeoutError`` when the worker holds the
        answer past ``timeout``."""
        await self._ensure_connected()
        internal_id = f"s{self.slot}-{next(self._ids)}"
        body = dict(payload)
        body["id"] = internal_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[internal_id] = future
        try:
            writer = self._writer
            if writer is None:
                raise ShardUnavailable(self.slot, "io",
                                       "connection lost before write")
            try:
                writer.write(encode_response(body))
                await writer.drain()
            except (OSError, ConnectionError) as exc:
                raise ShardUnavailable(
                    self.slot, "io",
                    f"{type(exc).__name__}: {exc}") from exc
            return await asyncio.wait_for(future, timeout)
        finally:
            self._pending.pop(internal_id, None)

    async def request_once(self, payload: dict, *, timeout: float) -> dict:
        """One exchange on a fresh throwaway connection (the hedge
        path): connect, send, read one line, close."""
        address = self._get_address()
        if address is None:
            raise ShardUnavailable(self.slot, "no_address",
                                   "worker has not published a port")
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(*address), self._connect_timeout)
        except (OSError, asyncio.TimeoutError) as exc:
            raise ShardUnavailable(self.slot, "connect",
                                   f"{type(exc).__name__}: {exc}") from exc
        try:
            body = dict(payload)
            body["id"] = f"s{self.slot}-hedge-{next(self._ids)}"
            writer.write(encode_response(body))
            await writer.drain()
            lines = LineReader(reader, max_line_bytes=RESPONSE_LINE_BYTES)
            line = await asyncio.wait_for(lines.readline(), timeout)
            if not line:
                raise ShardUnavailable(self.slot, "io",
                                       "worker closed without answering")
            response = decode_line(line)
            if not isinstance(response, dict):
                raise ShardUnavailable(self.slot, "io",
                                       "non-object response line")
            return response
        except (OSError, ConnectionError, ValueError) as exc:
            if isinstance(exc, ShardUnavailable):
                raise
            raise ShardUnavailable(self.slot, "io",
                                   f"{type(exc).__name__}: {exc}") from exc
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def scrape(self, *, timeout: float) -> dict:
        """The worker's live ``stats`` snapshot, on a throwaway
        connection — a scrape must not queue behind whatever match
        traffic occupies the pooled socket.  Raises
        :class:`ShardUnavailable` on any failure (including a worker
        too old to know the op), so the router's fleet aggregation can
        report a partial scrape instead of crashing."""
        response = await self.request_once({"op": "stats"},
                                           timeout=timeout)
        stats = response.get("stats")
        if not response.get("ok") or not isinstance(stats, dict):
            raise ShardUnavailable(
                self.slot, "stats",
                f"worker answered {response.get('error') or response!r}")
        return stats
