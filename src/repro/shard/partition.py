"""Deterministic partition of the image space + exact top-k merge.

The scale-out contract in two halves:

**Partition** — image repository position ``p`` is owned by shard
``p % count``.  Round-robin by *position* (not id hashing) because it
is balanced to within one image by construction, needs no coordination,
and every worker can compute it locally from nothing but ``(count,
slot)``.  A shard worker scores the *full* row exactly as the
single-process service does (same matcher, same seed, same fused
kernels — scoring never sees the partition) and masks to its owned
positions only at top-k selection, so the per-image scores on any two
shards are the same float32 bits the unsharded service would produce.

**Merge** — the router concatenates per-shard match lists and re-sorts
by ``(-score, image id)``, the same total order
:func:`repro.index.topk.deterministic_topk` imposes by ``(-score,
image position)``.  These orders coincide because every bundled
repository assigns ``image_id`` ascending with position (0, 1, 2, …,
see ``vision/image.py``); that equivalence is the one repository-level
assumption of the scale-out layer and is stated in DESIGN.md §14.
Together: disjoint owned sets that cover every position + bitwise-equal
scores + the same tie order ⇒ the merged top-k is bit-identical to the
single-process answer whenever every shard answers.

This module must stay import-free of the rest of ``repro`` (the serve
layer imports it lazily to build its owned mask; a cycle here would
deadlock package init).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["owned_positions", "owned_mask", "merge_matches", "worst_tier"]

#: tier badness order, mirroring repro.serve.degrade.LADDER — a merged
#: response is only as good as its worst contributing shard
_TIER_RANK: Dict[str, int] = {"full": 0, "cached": 1, "stale": 2}


def _validate(total: int, count: int, slot: int) -> None:
    if total < 0:
        raise ValueError("total must be non-negative")
    if count < 1:
        raise ValueError("count must be at least 1")
    if not 0 <= slot < count:
        raise ValueError(f"slot must be in [0, {count}), got {slot}")


def owned_positions(total: int, count: int, slot: int) -> np.ndarray:
    """Repository positions shard ``slot`` of ``count`` answers for."""
    _validate(total, count, slot)
    return np.arange(slot, total, count, dtype=np.int64)


def owned_mask(total: int, count: int, slot: int) -> np.ndarray:
    """Boolean mask over repository positions, True where owned."""
    _validate(total, count, slot)
    mask = np.zeros(total, dtype=bool)
    mask[slot::count] = True
    return mask


def merge_matches(per_shard: Sequence[Sequence[dict]],
                  top_k: int) -> List[dict]:
    """Cross-shard top-k: concatenate and re-sort by ``(-score, id)``.

    Match dicts pass through untouched (the shards already formatted
    them), so the merged list is made of the exact objects a
    single-process server would have emitted — the router adds nothing
    that could perturb byte-identity.
    """
    if top_k < 1:
        raise ValueError("top_k must be at least 1")
    pool: List[dict] = []
    for matches in per_shard:
        pool.extend(matches)
    pool.sort(key=lambda match: (-float(match["score"]),
                                 int(match["image"])))
    return pool[:top_k]


def worst_tier(tiers: Iterable[str]) -> Optional[str]:
    """The lowest serving tier among contributing shards (``None`` for
    an empty iterable).  Unknown tier strings rank worst: a router must
    never report a merged answer as healthier than its parts."""
    worst: Optional[str] = None
    worst_rank = -1
    for tier in tiers:
        rank = _TIER_RANK.get(tier, len(_TIER_RANK))
        if rank > worst_rank:
            worst, worst_rank = tier, rank
    return worst
