"""Benchmark substrate: the latent attribute world and dataset builders.

Everything here is re-exported lazily: the world definitions sit at the
bottom of the dependency graph (vision and clip build on them), so this
``__init__`` must not eagerly import the builders, which depend on
vision/clip in turn.
"""

import importlib

__all__ = ["ConceptUniverse", "Concept", "AttributeSchema", "caption_for",
           "CrossModalDataset", "build_attribute_dataset",
           "build_relational_dataset", "VertexSplit", "train_test_split",
           "load_cub", "cub_bundle", "load_sun", "sun_bundle",
           "load_fbimg", "fb_bundle", "FB_SIZES"]

_HOME_OF = {
    "ConceptUniverse": "world", "Concept": "world",
    "AttributeSchema": "world", "caption_for": "world",
    "CrossModalDataset": "generator", "build_attribute_dataset": "generator",
    "build_relational_dataset": "generator",
    "VertexSplit": "splits", "train_test_split": "splits",
    "load_cub": "cub", "cub_bundle": "cub",
    "load_sun": "sun", "sun_bundle": "sun",
    "load_fbimg": "fbimg", "fb_bundle": "fbimg", "FB_SIZES": "fbimg",
}


def __getattr__(name):
    """Resolve exports on first access to avoid import cycles."""
    if name in _HOME_OF:
        module = importlib.import_module(f".{_HOME_OF[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value  # cache for subsequent lookups
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
