"""SUN-mini — the SUN Attribute benchmark stand-in.

Paper statistics (Table I): 819 vertices, 2,130 edges, 717 scene
classes, 16,594 images.  SUN has many more classes than CUB with fewer
images each and sparser attribute structure; the miniature preserves
those relative proportions (more concepts, fewer views, fewer visual
parts per concept), which is why absolute accuracy lands lower than on
CUB-mini — the same ordering the paper reports.
"""

from __future__ import annotations

from ..clip.zoo import PretrainedBundle, get_pretrained_bundle
from .generator import CrossModalDataset, build_attribute_dataset

__all__ = ["SUN_UNIVERSE_SIZE", "SUN_NUM_CONCEPTS", "load_sun",
           "sun_bundle"]

SUN_UNIVERSE_SIZE = 100
SUN_NUM_CONCEPTS = 60
SUN_IMAGES_PER_CONCEPT = 6


def sun_bundle(seed: int = 0) -> PretrainedBundle:
    """The pre-trained bundle for SUN (scene-flavoured universe with
    sparser visual attributes)."""
    return get_pretrained_bundle(kind="scene", num_concepts=SUN_UNIVERSE_SIZE,
                                 seed=seed)


def load_sun(seed: int = 0) -> CrossModalDataset:
    """Build the SUN-mini benchmark from the shared scene universe."""
    bundle = sun_bundle(seed)
    return build_attribute_dataset(
        bundle.universe, name="sun-mini",
        concept_indices=range(SUN_NUM_CONCEPTS),
        images_per_concept=SUN_IMAGES_PER_CONCEPT, seed=seed)
