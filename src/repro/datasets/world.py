"""The latent attribute world shared by every modality.

The paper evaluates on CUB, SUN and FB15K-237-IMG: datasets whose
entities exist simultaneously as *graph vertices with attributes* and as
*images*.  We cannot ship those datasets, so this module defines the
synthetic equivalent: a universe of **concepts** (bird species / scene
classes / knowledge-graph entities), each a bundle of

* a generated *name* (e.g. ``"velkan tern"``),
* *visual attributes*: (part slot, color value) pairs that the image
  renderer paints into deterministic patch locations, and
* *symbolic attributes*: (family, value) pairs (habitat, food, size …)
  that appear in the graph and captions but not in pixels — exactly the
  schema-heterogeneous extra knowledge that motivates structure-aware
  prompts.

Both the MiniCLIP pre-training corpus and the benchmark datasets draw
from the same schema, mirroring how real CLIP's web-scale pre-training
distribution covers the benchmark domains.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.init import SeedLike, rng_from

__all__ = ["AttributeSchema", "Concept", "ConceptUniverse", "caption_for"]

# Part slots rendered into the 3x3 image patch grid (slot i -> patch i).
PART_NAMES = (
    "crown", "wing", "tail", "belly", "beak", "back", "breast", "throat", "eye",
)

COLOR_NAMES = (
    "white", "black", "grey", "brown", "red", "yellow",
    "blue", "green", "orange", "purple", "pink", "olive",
)

# RGB signature per color value, used by the renderer.
COLOR_RGB = np.asarray(
    [
        (0.95, 0.95, 0.95), (0.05, 0.05, 0.05), (0.55, 0.55, 0.55),
        (0.55, 0.35, 0.15), (0.85, 0.10, 0.10), (0.90, 0.85, 0.10),
        (0.15, 0.25, 0.85), (0.15, 0.70, 0.20), (0.95, 0.55, 0.10),
        (0.55, 0.15, 0.75), (0.95, 0.55, 0.70), (0.45, 0.55, 0.15),
    ],
    dtype=np.float32,
)

# Symbolic (non-visual) attribute families and their value lexicons.
SYMBOLIC_FAMILIES: Dict[str, Tuple[str, ...]] = {
    "habitat": ("forest", "coast", "desert", "wetland", "grassland",
                "mountain", "urban", "tundra"),
    "food": ("seeds", "insects", "fish", "nectar", "fruit", "plankton",
             "rodents", "carrion"),
    "size": ("tiny", "small", "medium", "large"),
    "origin": ("north", "south", "east", "west", "island", "inland",
               "tropic", "arctic"),
}

_SYLLABLES = ("vel", "kar", "tor", "min", "zal", "ren", "bu", "lis", "mor",
              "fen", "dra", "sol", "nim", "qua", "tas", "ulk", "ver", "osh",
              "pil", "gam", "ryn", "ced", "alo", "wex", "jor", "hin", "yut",
              "bex", "cal", "dov", "eri", "fol")

#: Default visual richness per concept kind: birds are attribute-dense
#: (CUB has 312 attributes), scenes sparser (SUN's 102), generic
#: entities in between.
PART_RANGES = {"bird": (4, 7), "scene": (2, 4), "entity": (3, 6)}

_KIND_WORDS = {
    "bird": ("tern", "finch", "warbler", "albatross", "sparrow", "jay",
             "heron", "plover", "grebe", "kite"),
    "scene": ("valley", "plaza", "harbor", "canyon", "atrium", "meadow",
              "bazaar", "quarry", "lagoon", "terrace"),
    "entity": ("station", "figure", "work", "place", "group", "event",
               "device", "organism", "vessel", "landmark"),
}


@dataclasses.dataclass(frozen=True)
class AttributeSchema:
    """Dimensions of the attribute world (identical across modalities)."""

    num_parts: int = len(PART_NAMES)
    num_colors: int = len(COLOR_NAMES)

    @property
    def part_names(self) -> Tuple[str, ...]:
        return PART_NAMES[: self.num_parts]

    @property
    def color_names(self) -> Tuple[str, ...]:
        return COLOR_NAMES[: self.num_colors]

    def visual_phrase(self, part: int, color: int) -> str:
        """Textual rendering of one visual attribute, e.g. ``"has crown
        color in white"`` — the sub-prompt format of Example 2."""
        return f"has {self.part_names[part]} color in {self.color_names[color]}"


@dataclasses.dataclass(frozen=True)
class Concept:
    """One real-world entity of the synthetic universe."""

    index: int
    name: str
    #: mapping part slot -> color value (visual appearance)
    visual: Dict[int, int]
    #: mapping family name -> value string (graph-only knowledge)
    symbolic: Dict[str, str]

    def visual_items(self) -> List[Tuple[int, int]]:
        """Sorted (part, color) pairs for deterministic iteration."""
        return sorted(self.visual.items())


class ConceptUniverse:
    """A reproducible population of concepts.

    Parameters
    ----------
    num_concepts:
        Size of the universe.
    kind:
        Name flavour: ``"bird"`` (CUB-like), ``"scene"`` (SUN-like) or
        ``"entity"`` (Freebase-like).
    min_parts / max_parts:
        How many visual part attributes each concept carries.
    seed:
        RNG seed; the same seed always produces the same universe.
    """

    def __init__(self, num_concepts: int, kind: str = "bird",
                 min_parts: Optional[int] = None, max_parts: Optional[int] = None,
                 seed: SeedLike = 0) -> None:
        if kind not in _KIND_WORDS:
            raise ValueError(f"unknown concept kind {kind!r}")
        default_min, default_max = PART_RANGES[kind]
        min_parts = default_min if min_parts is None else min_parts
        max_parts = default_max if max_parts is None else max_parts
        if not 1 <= min_parts <= max_parts <= len(PART_NAMES):
            raise ValueError("invalid part-count range")
        self.schema = AttributeSchema()
        self.kind = kind
        rng = rng_from(seed)
        names = self._generate_names(num_concepts, kind, rng)
        self.concepts: List[Concept] = []
        for i, name in enumerate(names):
            n_parts = int(rng.integers(min_parts, max_parts + 1))
            parts = rng.choice(self.schema.num_parts, size=n_parts, replace=False)
            visual = {int(p): int(rng.integers(self.schema.num_colors))
                      for p in parts}
            symbolic = {family: str(rng.choice(values))
                        for family, values in SYMBOLIC_FAMILIES.items()}
            self.concepts.append(Concept(i, name, visual, symbolic))

    @staticmethod
    def _generate_names(count: int, kind: str, rng: np.random.Generator) -> List[str]:
        kinds = _KIND_WORDS[kind]
        combos = [f"{a}{b} {k}"
                  for a, b in itertools.product(_SYLLABLES, repeat=2)
                  for k in kinds]
        if count > len(combos):
            raise ValueError(f"cannot name {count} concepts (max {len(combos)})")
        picked = rng.choice(len(combos), size=count, replace=False)
        return [combos[i] for i in picked]

    def __len__(self) -> int:
        return len(self.concepts)

    def __getitem__(self, index: int) -> Concept:
        return self.concepts[index]

    def __iter__(self):
        return iter(self.concepts)

    def vocabulary_words(self) -> List[str]:
        """Every word the universe can emit (names, parts, colors,
        symbolic values, template glue) for building tokenizer vocab."""
        words: set[str] = set()
        for concept in self.concepts:
            words.update(concept.name.split())
        words.update(self.schema.part_names)
        words.update(self.schema.color_names)
        for family, values in SYMBOLIC_FAMILIES.items():
            words.add(family)
            words.update(values)
        words.update("a photo of has color in and with eats lives is from".split())
        return sorted(words)


def caption_for(concept: Concept, schema: AttributeSchema,
                rng: SeedLike = None, max_attributes: int = 4,
                include_name_prob: float = 0.7) -> str:
    """Generate one noisy pre-training caption for ``concept``.

    Mimics web alt-text: usually mentions the name, mentions a random
    subset of visible attributes, occasionally a symbolic fact.  The
    noise level controls how much zero-shot ability the resulting
    MiniCLIP has from name-only prompts versus attribute-rich prompts.
    """
    rng = rng_from(rng)
    pieces: List[str] = ["a photo of a"]
    if rng.random() < include_name_prob:
        pieces.append(concept.name)
    items = concept.visual_items()
    if rng.random() < 0.25:
        # Full-record caption: the entire attribute serialization, the
        # long-document style hard prompts resemble.
        phrases = [schema.visual_phrase(part, color) for part, color in items]
        phrases.extend(f"has {family} in {value}"
                       for family, value in sorted(concept.symbolic.items()))
        pieces.append(", ".join(phrases))
        return " ".join(pieces)
    n_mention = int(rng.integers(1, min(max_attributes, len(items)) + 1))
    chosen = rng.choice(len(items), size=n_mention, replace=False)
    # Two phrasings seen on the web: terse alt-text ("grey wing") and the
    # attribute-record style hard prompts serialize into
    # ("has wing color in grey", Example 2 of the paper).
    if rng.random() < 0.5:
        phrases = [f"{schema.color_names[items[i][1]]} {schema.part_names[items[i][0]]}"
                   for i in sorted(chosen)]
        pieces.append("with " + " and ".join(phrases))
    else:
        phrases = [schema.visual_phrase(items[i][0], items[i][1])
                   for i in sorted(chosen)]
        pieces.append(", ".join(phrases))
    if rng.random() < 0.3:
        family = str(rng.choice(list(concept.symbolic)))
        pieces.append(f"has {family} in {concept.symbolic[family]}")
    return " ".join(pieces)
