"""Train/test vertex splits.

The paper evaluates with the standard zero-shot splits of [42] on CUB
and SUN: a subset of *classes* (here: entity vertices) is held out for
testing while training remains unsupervised over all candidate pairs.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from ..nn.init import SeedLike, rng_from
from .generator import CrossModalDataset

__all__ = ["VertexSplit", "train_test_split"]


@dataclasses.dataclass(frozen=True)
class VertexSplit:
    """Disjoint train/test entity-vertex id lists."""

    train: Tuple[int, ...]
    test: Tuple[int, ...]

    def __post_init__(self) -> None:
        overlap = set(self.train) & set(self.test)
        if overlap:
            raise ValueError(f"train/test overlap: {sorted(overlap)}")


def train_test_split(dataset: CrossModalDataset, test_fraction: float = 0.5,
                     seed: SeedLike = 0) -> VertexSplit:
    """Randomly split the dataset's entity vertices.

    ``test_fraction`` of vertices is held out; at least one vertex ends
    up on each side whenever there are two or more.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    vertices = list(dataset.entity_vertices)
    rng = rng_from(seed)
    order = rng.permutation(len(vertices))
    n_test = min(max(1, int(round(len(vertices) * test_fraction))),
                 max(1, len(vertices) - 1))
    test = tuple(sorted(vertices[i] for i in order[:n_test]))
    train = tuple(sorted(vertices[i] for i in order[n_test:]))
    return VertexSplit(train=train, test=test)
