"""FB-IMG-mini — the FB15K-237-IMG stand-in family.

The paper derives FB2K-IMG, FB6K-IMG and FB10K-IMG (54M, 284M and 755M
candidate pairs) from FB15K-237 with ~10 images per entity, using them
for the efficiency (Table III), scalability (Fig. 8) and case-study
(Table V) experiments.  The miniatures keep the geometric growth in
candidate pairs across three sizes drawn from one shared entity
universe, with a homophilous relation graph standing in for Freebase
structure.
"""

from __future__ import annotations

from typing import Dict

from ..clip.zoo import PretrainedBundle, get_pretrained_bundle
from .generator import CrossModalDataset, build_relational_dataset

__all__ = ["FB_UNIVERSE_SIZE", "FB_SIZES", "load_fbimg", "fb_bundle"]

FB_UNIVERSE_SIZE = 240
#: benchmark size name -> (num concepts, images per concept)
FB_SIZES: Dict[str, tuple] = {
    "fb2k": (80, 5),
    "fb6k": (160, 5),
    "fb10k": (240, 5),
}


def fb_bundle(seed: int = 0) -> PretrainedBundle:
    """The pre-trained bundle shared by all FB-IMG sizes."""
    return get_pretrained_bundle(kind="entity", num_concepts=FB_UNIVERSE_SIZE,
                                 seed=seed)


def load_fbimg(size: str = "fb2k", seed: int = 0) -> CrossModalDataset:
    """Build one FB-IMG-mini benchmark (``"fb2k"``, ``"fb6k"`` or
    ``"fb10k"``)."""
    if size not in FB_SIZES:
        raise ValueError(f"unknown FB-IMG size {size!r}; pick from {list(FB_SIZES)}")
    num_concepts, images_per_concept = FB_SIZES[size]
    bundle = fb_bundle(seed)
    return build_relational_dataset(
        bundle.universe, name=f"{size}-img-mini",
        concept_indices=range(num_concepts),
        images_per_concept=images_per_concept, seed=seed)
