"""Benchmark construction: concepts → (graph, image repository, truth).

Builds cross-modal EM datasets with the same *shape* as the paper's
benchmarks (Table I): a heterogeneous graph whose entity vertices must
be matched against an image repository, with ground-truth matching
pairs for evaluation.

Two graph styles mirror the two benchmark families:

* ``"attribute"`` (CUB / SUN): entities come from a relational table of
  visual + symbolic attributes, run through the data-lake mapping, so
  each entity vertex is surrounded by shared attribute-value vertices —
  Fig. 1(a)/(b) of the paper.
* ``"relational"`` (FB15K-IMG): entities come from a JSON document whose
  references form a homophilous knowledge graph (edges preferentially
  connect visually similar concepts), so neighborhood structure carries
  appearance signal the way Freebase context does.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..datalake.graph import Graph
from ..datalake.json_doc import JsonDocument, JsonObject
from ..datalake.mapping import json_to_graph, table_to_graph
from ..datalake.table import RelationalTable, TableSchema
from ..nn.init import SeedLike, rng_from
from ..vision.image import SyntheticImage, render_repository
from .world import SYMBOLIC_FAMILIES, Concept, ConceptUniverse

__all__ = ["CrossModalDataset", "build_attribute_dataset",
           "build_relational_dataset"]

RELATION_NAMES = ("related to", "found with", "derived from", "located near")


@dataclasses.dataclass
class CrossModalDataset:
    """A cross-modal entity matching benchmark instance."""

    name: str
    graph: Graph
    images: List[SyntheticImage]
    #: entity vertex ids, in concept order
    entity_vertices: List[int]
    #: ground truth: entity vertex id -> concept index
    vertex_concept: Dict[int, int]
    universe: ConceptUniverse

    # -- ground truth helpers ------------------------------------------------
    def true_pairs(self) -> Set[Tuple[int, int]]:
        """The gold matching set S: (vertex id, image id) pairs that
        refer to the same concept (Definition 2)."""
        by_concept: Dict[int, List[int]] = {}
        for image in self.images:
            by_concept.setdefault(image.concept_index, []).append(image.image_id)
        pairs: Set[Tuple[int, int]] = set()
        for vertex, concept in self.vertex_concept.items():
            for image_id in by_concept.get(concept, ()):
                pairs.add((vertex, image_id))
        return pairs

    def images_of_vertex(self, vertex_id: int) -> List[int]:
        """Positions (indices into ``self.images``) of gold images."""
        concept = self.vertex_concept[vertex_id]
        return [i for i, img in enumerate(self.images)
                if img.concept_index == concept]

    @property
    def num_candidate_pairs(self) -> int:
        """|V| x |I| — the quantity Fig. 8's x-axis scales."""
        return len(self.entity_vertices) * len(self.images)

    def statistics(self) -> Dict[str, int]:
        """Table-I style dataset statistics."""
        return {
            "vertices": self.graph.num_vertices,
            "edges": self.graph.num_edges,
            "entities": len(self.entity_vertices),
            "images": len(self.images),
            "candidate_pairs": self.num_candidate_pairs,
        }


def _concepts(universe: ConceptUniverse,
              indices: Optional[Sequence[int]]) -> List[Concept]:
    if indices is None:
        return list(universe)
    return [universe[i] for i in indices]


def build_attribute_dataset(universe: ConceptUniverse, name: str = "cub-mini",
                            concept_indices: Optional[Sequence[int]] = None,
                            images_per_concept: int = 4,
                            seed: SeedLike = 0) -> CrossModalDataset:
    """CUB/SUN-style benchmark: attribute table → data mapping → graph.

    The relational table has one row per concept with its part-color
    values and symbolic attributes; :func:`table_to_graph` turns rows
    into entity vertices and shared attribute-value vertices.
    """
    concepts = _concepts(universe, concept_indices)
    schema_obj = universe.schema
    part_columns = tuple(f"{p} color" for p in schema_obj.part_names)
    columns = ("name",) + part_columns + tuple(SYMBOLIC_FAMILIES)
    table = RelationalTable(TableSchema(name=name, columns=columns, key="name"))
    for concept in concepts:
        values = {"name": concept.name}
        for part, color in concept.visual_items():
            values[f"{schema_obj.part_names[part]} color"] = \
                schema_obj.color_names[color]
        values.update(concept.symbolic)
        table.insert_dict(values)
    graph, row_vertices = table_to_graph(table)
    entity_vertices = [row_vertices[i] for i in range(len(concepts))]
    vertex_concept = {row_vertices[i]: concepts[i].index
                      for i in range(len(concepts))}
    images = render_repository(concepts, images_per_concept, seed=seed)
    return CrossModalDataset(name, graph, images, entity_vertices,
                             vertex_concept, universe)


def _shared_attributes(a: Concept, b: Concept) -> int:
    return len(set(a.visual.items()) & set(b.visual.items()))


def build_relational_dataset(universe: ConceptUniverse, name: str = "fb-mini",
                             concept_indices: Optional[Sequence[int]] = None,
                             images_per_concept: int = 5,
                             mean_degree: float = 3.0,
                             homophily: float = 5.0,
                             seed: SeedLike = 0) -> CrossModalDataset:
    """FB-IMG-style benchmark: JSON objects with homophilous references.

    Each concept becomes a JSON object carrying one symbolic field and
    references to other concepts; reference probability grows with the
    number of shared visual attributes (``homophily`` scales how much),
    so graph neighborhoods predict appearance like Freebase context does.
    """
    concepts = _concepts(universe, concept_indices)
    rng = rng_from(seed)
    n = len(concepts)
    # Edge sampling: weight (1 + homophily * shared visual attrs).
    weights = np.ones((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            w = 1.0 + homophily * _shared_attributes(concepts[i], concepts[j])
            weights[i, j] = weights[j, i] = w
    np.fill_diagonal(weights, 0.0)
    objects: List[JsonObject] = []
    for i, concept in enumerate(concepts):
        degree = max(1, int(rng.poisson(mean_degree)))
        probs = weights[i] / weights[i].sum()
        targets = rng.choice(n, size=min(degree, n - 1), replace=False, p=probs)
        references = {f"{rng.choice(RELATION_NAMES)} {k}": concepts[int(t)].name
                      for k, t in enumerate(targets)}
        family = str(rng.choice(list(SYMBOLIC_FAMILIES)))
        fields = {family: concept.symbolic[family]}
        objects.append(JsonObject(concept.name, fields, references))
    graph, key_vertices = json_to_graph(JsonDocument(objects))
    entity_vertices = [key_vertices[c.name] for c in concepts]
    vertex_concept = {key_vertices[c.name]: c.index for c in concepts}
    images = render_repository(concepts, images_per_concept, seed=seed)
    return CrossModalDataset(name, graph, images, entity_vertices,
                             vertex_concept, universe)
