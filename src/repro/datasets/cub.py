"""CUB-mini — the Caltech-UCSD Birds 200 stand-in.

Paper statistics (Table I): 512 vertices, 3,245 edges, 312 attribute
tuples, 11,788 images of 200 bird species.  The miniature keeps the
structure (bird concepts described by part-color and symbolic
attributes, several photos per species) at roughly 1/10 scale so the
full pipeline runs on CPU in seconds.
"""

from __future__ import annotations

from ..clip.zoo import PretrainedBundle, get_pretrained_bundle
from .generator import CrossModalDataset, build_attribute_dataset

__all__ = ["CUB_UNIVERSE_SIZE", "CUB_NUM_CONCEPTS", "load_cub",
           "cub_bundle"]

#: Concepts in the bird pre-training universe (MiniCLIP saw all of them,
#: as real CLIP's web corpus covers bird species).
CUB_UNIVERSE_SIZE = 80
#: Concepts included in the benchmark itself.
CUB_NUM_CONCEPTS = 40
#: real CUB averages ~59 images per species; the miniature keeps the
#: repository clearly larger than the vertex set so the |V| x |I|
#: cross-product cost that motivates CrossEM+ is visible at this scale
CUB_IMAGES_PER_CONCEPT = 8


def cub_bundle(seed: int = 0) -> PretrainedBundle:
    """The pre-trained bundle (universe + MiniCLIP + MiniLM) for CUB."""
    return get_pretrained_bundle(kind="bird", num_concepts=CUB_UNIVERSE_SIZE,
                                 seed=seed)


def load_cub(seed: int = 0) -> CrossModalDataset:
    """Build the CUB-mini benchmark from the shared bird universe."""
    bundle = cub_bundle(seed)
    return build_attribute_dataset(
        bundle.universe, name="cub-mini",
        concept_indices=range(CUB_NUM_CONCEPTS),
        images_per_concept=CUB_IMAGES_PER_CONCEPT, seed=seed)
