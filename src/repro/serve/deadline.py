"""Deadline propagation: one budget object threaded through a request.

A :class:`Deadline` is created once at admission from the request's
``budget_ms`` and handed down the pipeline; every stage boundary calls
:meth:`Deadline.check` instead of running unbounded.  The guarantee this
buys is *bounded overshoot*: a request returns within its budget plus at
most one stage, because the longest a stage can run past the deadline is
until its own next check.

The clock is injectable (monotonic by default) so tests can drive time
deterministically, and so retries can compose:
``retry_io(..., max_elapsed=deadline.remaining())`` keeps backoff from
overshooting the request budget (see :func:`repro.iosafe.retry_io`).
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional

from .errors import DeadlineExceeded

__all__ = ["Deadline"]


class Deadline:
    """A monotonic-clock time budget for one request.

    ``budget_seconds=None`` makes an unbounded deadline whose ``check``
    never raises — callers need no special casing for "no budget".
    """

    __slots__ = ("budget", "_started", "_expires_at", "_clock")

    def __init__(self, budget_seconds: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if budget_seconds is not None and budget_seconds <= 0:
            raise ValueError("deadline budget must be positive")
        self._clock = clock
        self._started = clock()
        self.budget = math.inf if budget_seconds is None \
            else float(budget_seconds)
        self._expires_at = self._started + self.budget

    @classmethod
    def after(cls, seconds: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        return cls(seconds, clock=clock)

    @classmethod
    def unbounded(cls,
                  clock: Callable[[], float] = time.monotonic) -> "Deadline":
        return cls(None, clock=clock)

    @property
    def bounded(self) -> bool:
        return math.isfinite(self._expires_at)

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left in the budget (``inf`` when unbounded, may be
        negative once expired)."""
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, stage: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent.

        This is the stage-boundary hook: cheap enough (one clock read
        and a comparison) to call before every chunk of work.
        """
        now = self._clock()
        if now >= self._expires_at:
            raise DeadlineExceeded(stage=stage, budget=self.budget,
                                   elapsed=now - self._started)
