"""The graceful-degradation ladder for match queries.

Three tiers, from best answer to best-effort answer:

* ``full`` — the fitted matcher's own scoring path (for CrossEM+ this
  is the tuned soft-prompt text encode).  Costly and, under an
  unhealthy encoder, slow or failing.
* ``cached`` — scoring against the *discrete-prompt* embedding matrix
  (PR 2's prompt cache): a pure matrix slice + GEMM with no encoder
  call, bit-identical to what a standalone hard-prompt matcher would
  return.  Cheaper and immune to encoder failure, at the accuracy of
  untuned hard prompts.
* ``stale`` — the last successful response this service produced for
  the same vertex, served from an in-memory LRU.  Possibly out of
  date, but instant and always deadline-safe.

:class:`DegradationPolicy` decides *where to start*: breaker open or
not enough budget left for a full encode means starting at ``cached``.
The service additionally falls *down* the ladder when a tier fails at
runtime, with one asymmetry: a :class:`DeadlineExceeded` skips straight
to ``stale``, because once the budget is blown only a free tier is
honest to run.  Every degraded response is tagged with its tier and
reason, and counted per tier in the metrics registry.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..obs import add_trace_event
from .breaker import CircuitBreaker
from .deadline import Deadline

__all__ = ["TIER_FULL", "TIER_CACHED", "TIER_STALE", "LADDER",
           "DegradeDecision", "DegradationPolicy"]

TIER_FULL = "full"
TIER_CACHED = "cached"
TIER_STALE = "stale"
LADDER: Tuple[str, ...] = (TIER_FULL, TIER_CACHED, TIER_STALE)

REASON_BREAKER_OPEN = "breaker_open"
REASON_DEADLINE = "deadline_pressure"


@dataclasses.dataclass(frozen=True)
class DegradeDecision:
    """Which tiers to attempt, in order, and why any were skipped."""

    tiers: Tuple[str, ...]
    reason: Optional[str] = None  # None -> nothing was skipped up front

    @property
    def degraded(self) -> bool:
        return self.tiers[0] != TIER_FULL


class DegradationPolicy:
    """Chooses the entry tier for one request.

    ``full_floor`` (seconds) is the minimum remaining budget worth
    spending on a full encode: below it the policy starts at ``cached``
    rather than beginning work that is doomed to blow the deadline.
    """

    def __init__(self, breaker: CircuitBreaker, *,
                 full_floor: float = 0.0) -> None:
        if full_floor < 0:
            raise ValueError("full_floor must be non-negative")
        self.breaker = breaker
        self.full_floor = full_floor

    def plan(self, deadline: Deadline) -> DegradeDecision:
        if not self.breaker.allows_call():
            decision = DegradeDecision((TIER_CACHED, TIER_STALE),
                                       REASON_BREAKER_OPEN)
        elif deadline.bounded and deadline.remaining() < self.full_floor:
            decision = DegradeDecision((TIER_CACHED, TIER_STALE),
                                       REASON_DEADLINE)
        else:
            decision = DegradeDecision(LADDER)
        add_trace_event("degrade", tiers=list(decision.tiers),
                        reason=decision.reason)
        return decision
