"""Resilient online serving of match queries (``repro serve``).

A fault-tolerant query layer over a fitted matcher.  The pieces, each
its own module and each independently testable:

* :mod:`repro.serve.errors` — the typed failure taxonomy.
* :mod:`repro.serve.deadline` — per-request time budgets checked at
  stage boundaries (bounded overshoot, not unbounded stalls).
* :mod:`repro.serve.breaker` — circuit breakers around the encoder
  backends (closed → open → half-open, metrics-visible).
* :mod:`repro.serve.admission` — a bounded work queue that sheds load
  with typed ``Overloaded`` rejections.
* :mod:`repro.serve.degrade` — the full → cached → stale degradation
  ladder and the policy picking the entry tier.
* :mod:`repro.serve.service` — :class:`MatchService`, tying the above
  into a per-request-isolated pipeline.
* :mod:`repro.serve.loop` — the stdin/stdout JSON-lines front end.

See README "Serving" for the request/response schema and DESIGN.md §9
for the failure model and its guarantees.
"""

from .admission import BoundedQueue
from .breaker import (STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN,
                      CircuitBreaker)
from .deadline import Deadline
from .degrade import (LADDER, TIER_CACHED, TIER_FULL, TIER_STALE,
                      DegradationPolicy, DegradeDecision)
from .errors import (BadRequest, BreakerOpen, DeadlineExceeded, Overloaded,
                     ServeError, Unavailable)
from .loop import bad_line_response, serve_loop
from .service import MatchService, ServeConfig

__all__ = [
    "ServeError", "BadRequest", "DeadlineExceeded", "Overloaded",
    "Unavailable", "BreakerOpen",
    "Deadline",
    "CircuitBreaker", "STATE_CLOSED", "STATE_HALF_OPEN", "STATE_OPEN",
    "BoundedQueue",
    "DegradationPolicy", "DegradeDecision",
    "TIER_FULL", "TIER_CACHED", "TIER_STALE", "LADDER",
    "MatchService", "ServeConfig",
    "serve_loop", "bad_line_response",
]
