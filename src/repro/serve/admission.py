"""Admission control: a bounded work queue that sheds load.

The serve loop's reader thread enqueues requests here and worker
threads drain them.  The queue is deliberately *bounded*: when it is
full, :meth:`BoundedQueue.put` raises a typed
:class:`~repro.serve.errors.Overloaded` immediately instead of queueing
unboundedly — the client gets a fast, honest rejection it can back off
on, and a stuck worker cannot grow an infinite backlog of requests that
would all blow their deadlines anyway.

Queue depth and capacity are exported as gauges
(``serve.queue.depth`` / ``serve.queue.capacity``) and every shed
request increments ``serve.queue.shed_total``, so an overload burst is
visible in the metrics JSONL after the fact.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Optional

from ..obs import get_logger, registry
from .errors import Overloaded, Unavailable

__all__ = ["BoundedQueue"]

_log = get_logger("repro.serve.admission")


class BoundedQueue:
    """Thread-safe FIFO with a hard capacity and load-shedding ``put``.

    ``get`` blocks until an item is available or the queue is closed
    *and* drained, in which case it returns ``None`` — the worker
    shutdown signal, so no sentinel objects travel through the queue.
    """

    def __init__(self, capacity: int, *, name: str = "serve.queue") -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.capacity = capacity
        self.name = name
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        reg = registry()
        reg.gauge(f"{name}.capacity").set(capacity)
        self._depth_gauge = reg.gauge(f"{name}.depth")
        self._depth_gauge.set(0)
        self._shed_counter = reg.counter(f"{name}.shed_total")

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def depth(self) -> int:
        return len(self)

    def put(self, item: Any) -> None:
        """Enqueue ``item``; raise :class:`Overloaded` if full, or
        :class:`Unavailable` once the queue has been closed.

        Both are typed :class:`~repro.serve.errors.ServeError`\\ s, so a
        put racing a shutdown becomes a structured rejection response
        upstream — never an unhandled crash out of a reader thread."""
        with self._not_empty:
            if self._closed:
                raise Unavailable(self.name)
            if len(self._items) >= self.capacity:
                self._shed_counter.inc()
                _log.warning("request shed", queue=self.name,
                             depth=len(self._items), capacity=self.capacity)
                raise Overloaded(depth=len(self._items),
                                 capacity=self.capacity)
            self._items.append(item)
            self._depth_gauge.set(len(self._items))
            self._not_empty.notify()

    def get(self) -> Optional[Any]:
        """Dequeue the oldest item, blocking while the queue is empty.

        Returns ``None`` once the queue is closed and fully drained.
        """
        with self._not_empty:
            while not self._items and not self._closed:
                self._not_empty.wait()
            if not self._items:
                return None  # closed and drained
            item = self._items.popleft()
            self._depth_gauge.set(len(self._items))
            return item

    def close(self) -> None:
        """Stop accepting work; blocked ``get`` calls drain then end."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()
