"""The JSON-lines request loop behind ``repro serve``.

One request per input line, one response per output line — stdin/stdout
framing with no network dependency, so the whole resilient path stays
exercisable in CI with nothing but pipes.  Responses carry the
request's ``id`` and may arrive out of submission order (workers and
shed rejections interleave); clients correlate by ``id``, exactly as
they would against a real RPC service.

A line that is not valid JSON yields a structured ``bad_request``
response (with ``id: null``, since no id could be read) and the loop
keeps serving — input corruption is a per-request failure, never a
process failure.  Such lines are counted separately
(``serve.requests.bad_line``) so framing corruption is distinguishable
from well-formed-but-invalid requests in the exported telemetry.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Iterable, Union

from ..obs import get_logger, registry
from .service import MatchService

__all__ = ["serve_loop"]

_log = get_logger("repro.serve.loop")


def serve_loop(service: MatchService, source: Iterable[str],
               sink: IO[str]) -> int:
    """Serve JSON-lines requests from ``source`` into ``sink``.

    Starts the service's worker pool, feeds it every non-blank line,
    emits one JSON response line per request (shed and parse failures
    answered inline by the reader), and shuts the pool down at EOF.
    Returns the number of responses written.
    """
    emit_lock = threading.Lock()
    written = [0]
    # instrument handles hoisted out of the loop: the bad-line path is
    # exactly where input is arriving malformed at rate, so it should
    # not pay a registry lock + dict lookup per counter per line
    reg = registry()
    requests_total = reg.counter("serve.requests_total")
    bad_line_total = reg.counter("serve.requests.bad_line")
    error_total = reg.counter("serve.error_total")
    bad_request_total = reg.counter("serve.error.bad_request")

    def emit(response: dict) -> None:
        line = json.dumps(response, separators=(",", ":"))
        with emit_lock:
            sink.write(line + "\n")
            sink.flush()
            written[0] += 1

    service.start(emit)
    try:
        for raw in source:
            line = raw.strip()
            if not line:
                continue
            try:
                request: Union[dict, object] = json.loads(line)
            except ValueError as exc:
                _log.warning("undecodable request line", error=str(exc))
                requests_total.inc()
                bad_line_total.inc()
                error_total.inc()
                bad_request_total.inc()
                # Even an undecodable line gets a (flagged, thus always
                # retained) trace so the failure is findable by id.
                trace = service.tracer.start("serve.request")
                trace.flag("error")
                trace.add_event("error", code="bad_request")
                trace.finish()
                response = {"id": None, "ok": False,
                            "error": {"type": "bad_request",
                                      "message": f"invalid JSON: {exc}"},
                            "elapsed_ms": 0.0}
                if trace.trace_id is not None:
                    response["trace_id"] = trace.trace_id
                emit(response)
                continue
            rejection = service.submit(request)
            if rejection is not None:
                emit(rejection)
    finally:
        service.shutdown()
    return written[0]
