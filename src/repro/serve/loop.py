"""The JSON-lines request loop behind ``repro serve``.

One request per input line, one response per output line — stdin/stdout
framing with no network dependency, so the whole resilient path stays
exercisable in CI with nothing but pipes.  Responses carry the
request's ``id`` and may arrive out of submission order (workers and
shed rejections interleave); clients correlate by ``id``, exactly as
they would against a real RPC service.

A line that is not valid JSON yields a structured ``bad_request``
response (with ``id: null``, since no id could be read) and the loop
keeps serving — input corruption is a per-request failure, never a
process failure.  Such lines are counted separately
(``serve.requests.bad_line``) so framing corruption is distinguishable
from well-formed-but-invalid requests in the exported telemetry.

Failures in the *other* direction — the response sink going away
mid-drain (broken pipe, closed file) — are caught in ``emit`` rather
than propagated out of worker threads: each is counted
(``serve.emit.failed``), and the loop stops reading and shuts down
cleanly instead of silently losing every response after the first
failed write.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Iterable, Union

from ..obs import get_logger, registry
from .service import MatchService

__all__ = ["serve_loop", "bad_line_response"]

_log = get_logger("repro.serve.loop")


def bad_line_response(service: MatchService, error: Exception) -> dict:
    """The structured answer to an undecodable request line.

    Counts the framing failure separately from semantic bad requests
    and mints a flagged (thus always-retained) trace so the failure is
    findable by id.  Shared by the stdin/stdout loop and the TCP front
    end (:mod:`repro.netserve`), which frame identically.
    """
    reg = registry()
    reg.counter("serve.requests_total").inc()
    reg.counter("serve.requests.bad_line").inc()
    reg.counter("serve.error_total").inc()
    reg.counter("serve.error.bad_request").inc()
    trace = service.tracer.start("serve.request")
    trace.flag("error")
    trace.add_event("error", code="bad_request")
    trace.finish()
    response = {"id": None, "ok": False,
                "error": {"type": "bad_request",
                          "message": f"invalid JSON: {error}"},
                "elapsed_ms": 0.0}
    if trace.trace_id is not None:
        response["trace_id"] = trace.trace_id
    return response


def serve_loop(service: MatchService, source: Iterable[str],
               sink: IO[str]) -> int:
    """Serve JSON-lines requests from ``source`` into ``sink``.

    Starts the service's worker pool, feeds it every non-blank line,
    emits one JSON response line per request (shed and parse failures
    answered inline by the reader), and shuts the pool down at EOF —
    or as soon as the sink stops accepting writes.  Returns the number
    of responses written.
    """
    emit_lock = threading.Lock()
    written = [0]
    # Sink failure is remembered across emits: once the pipe is broken
    # every subsequent write would fail identically, so workers skip
    # straight past it and the reader loop below winds down.
    sink_failed = threading.Event()
    # instrument handles hoisted out of the loop: the bad-line path is
    # exactly where input is arriving malformed at rate, so it should
    # not pay a registry lock + dict lookup per counter per line
    reg = registry()
    emit_failed_total = reg.counter("serve.emit.failed")

    def emit(response: dict) -> None:
        if sink_failed.is_set():
            emit_failed_total.inc()
            return
        line = json.dumps(response, separators=(",", ":"))
        with emit_lock:
            try:
                sink.write(line + "\n")
                sink.flush()
            except Exception as exc:
                # The reader of our responses went away (broken pipe,
                # closed sink).  A worker thread must not die on this —
                # count it, remember it, and let the loop drain out.
                emit_failed_total.inc()
                sink_failed.set()
                _log.warning("response sink failed; shutting down",
                             error=f"{type(exc).__name__}: {exc}")
                return
            written[0] += 1

    service.start(emit)
    try:
        for raw in source:
            if sink_failed.is_set():
                break  # nobody is reading responses: stop taking work
            line = raw.strip()
            if not line:
                continue
            try:
                request: Union[dict, object] = json.loads(line)
            except ValueError as exc:
                _log.warning("undecodable request line", error=str(exc))
                emit(bad_line_response(service, exc))
                continue
            if isinstance(request, dict) and request.get("op") == "stats":
                # live scrape, answered inline by the reader (like the
                # TCP front end): a locked in-memory snapshot, never a
                # scoring call, so it cannot queue behind match traffic
                from ..netserve.protocol import stats_payload  # late:
                # netserve imports serve; importing it here at module
                # top would be circular
                reg.counter("netserve.stats_total").inc()
                emit({"id": request.get("id"), "ok": True,
                      "stats": stats_payload(service)})
                continue
            rejection = service.submit(request)
            if rejection is not None:
                emit(rejection)
    finally:
        service.shutdown()
    return written[0]
