"""Typed failures of the online query path.

Every way a request can fail maps to exactly one exception class, and
every class carries a stable ``code`` that becomes the ``error.type``
field of the JSON error response.  Handlers switch on the class (or the
code), never on message strings, so the failure taxonomy is part of the
serving API:

* :class:`BadRequest` — the request itself is malformed (unknown
  vertex, wrong field type).  Retrying it verbatim will never help.
* :class:`DeadlineExceeded` — the per-request budget ran out mid-stage.
  The request was well-formed; a retry with a larger budget may work.
* :class:`Overloaded` — admission control shed the request because the
  work queue was full.  Retrying after backoff is appropriate.
* :class:`Unavailable` — the service is shutting down (or already shut
  down) and no longer admits work.  Retrying against *this* instance
  will never help; a client should fail over.
* :class:`BreakerOpen` — a circuit breaker is refusing calls to a
  failing backend; the degradation ladder normally absorbs this before
  it reaches a client.

All inherit :class:`ServeError`, so "any expected serving failure" is
one ``except`` clause while genuinely unexpected bugs stay loud.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["ServeError", "BadRequest", "DeadlineExceeded", "Overloaded",
           "Unavailable", "BreakerOpen"]


class ServeError(RuntimeError):
    """Base class of every expected per-request serving failure."""

    code = "serve_error"


class BadRequest(ServeError):
    """The request is structurally invalid; it can never succeed."""

    code = "bad_request"


class DeadlineExceeded(ServeError):
    """A stage observed that the request's time budget is exhausted.

    ``stage`` names the pipeline stage that noticed (granularity of the
    deadline guarantee: a request returns within budget plus at most one
    stage).  ``budget`` and ``elapsed`` are seconds.
    """

    code = "deadline_exceeded"

    def __init__(self, stage: str, budget: float, elapsed: float) -> None:
        super().__init__(
            f"deadline exceeded in stage {stage!r}: "
            f"elapsed {elapsed * 1e3:.1f}ms of {budget * 1e3:.1f}ms budget")
        self.stage = stage
        self.budget = budget
        self.elapsed = elapsed


class Overloaded(ServeError):
    """Admission control rejected the request instead of queueing it."""

    code = "overloaded"

    def __init__(self, depth: int, capacity: int) -> None:
        super().__init__(f"work queue full ({depth}/{capacity}); "
                         f"request shed")
        self.depth = depth
        self.capacity = capacity


class Unavailable(ServeError):
    """The service stopped admitting work (draining or shut down).

    Distinct from :class:`Overloaded`: an overload is transient and
    backoff-retryable against the same instance, while an unavailable
    instance is going away — the honest client action is failover.
    """

    code = "unavailable"

    def __init__(self, name: str = "serve.queue") -> None:
        super().__init__(f"{name!r} is shut down and no longer "
                         f"admits requests")
        self.name = name


class BreakerOpen(ServeError):
    """A circuit breaker is open; the wrapped backend is not called.

    ``retry_after`` is the remaining cooldown in seconds (``None`` when
    the breaker is half-open and its single probe slot is taken).
    """

    code = "breaker_open"

    def __init__(self, name: str, retry_after: Optional[float] = None) -> None:
        detail = (f"; retry after {retry_after:.3f}s"
                  if retry_after is not None else "")
        super().__init__(f"circuit breaker {name!r} is open{detail}")
        self.name = name
        self.retry_after = retry_after
