"""The fault-tolerant match query service.

:class:`MatchService` wraps one *fitted* matcher and answers single-
vertex match queries with production failure semantics:

* every request carries a :class:`~repro.serve.deadline.Deadline`
  (from its ``budget_ms``) that encode/score stages check instead of
  running long;
* the per-request encode path runs through a text-backend
  :class:`~repro.serve.breaker.CircuitBreaker` (a second breaker guards
  the image-tower warmup), so a hung or flaky encoder stops being
  called instead of stalling every request behind it;
* a bounded :class:`~repro.serve.admission.BoundedQueue` sheds load
  with typed ``Overloaded`` rejections under burst;
* on breaker-open or deadline pressure the
  :class:`~repro.serve.degrade.DegradationPolicy` ladder falls back
  full → cached → stale, tagging each degraded response;
* any per-request failure — malformed request, corrupt input, encoder
  bug — becomes a structured error *response*; the process never dies
  for one query.

The cached tier scores against a dedicated hard-prompt
:class:`~repro.core.matcher.CrossEM` built over the same bundle, graph
and image repository, so a degraded response is bit-identical to what
that fallback matcher would return standalone (the PR 2 prompt-cache
exactness argument, see DESIGN.md §6).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.matcher import CrossEM, CrossEMConfig
from ..obs import get_logger, registry, span
from ..obs.hist import DEFAULT_LATENCY_BOUNDS_MS
from ..obs.trace import (FLAG_DEADLINE, FLAG_DEGRADED, FLAG_ERROR,
                         FLAG_SHED, SamplePolicy, Tracer, add_trace_event,
                         flag_trace, trace_recorder, trace_span)
from .admission import BoundedQueue
from .breaker import CircuitBreaker
from .deadline import Deadline
from .degrade import (TIER_CACHED, TIER_FULL, TIER_STALE, DegradationPolicy)
from .errors import (BadRequest, DeadlineExceeded, Overloaded, ServeError,
                     Unavailable)

__all__ = ["ServeConfig", "MatchService", "parse_trace_context"]

_log = get_logger("repro.serve.service")


def parse_trace_context(request: Any) -> Tuple[Optional[str],
                                               Optional[str], bool]:
    """The caller's trace context off a request, if any.

    The wire format (DESIGN.md §15) is an optional ``trace`` field::

        {"trace": {"trace_id": "...", "parent_span": "s3",
                   "return_spans": true}}

    Returns ``(trace_id, parent_span, return_spans)``.  A missing
    context is ``(None, None, False)`` — the service mints its own
    trace as before.  A *malformed* context (non-dict, empty or
    non-string id) is treated the same but counted under
    ``serve.trace.bad_context``: telemetry plumbing must never fail a
    request that would otherwise have been answered.
    """
    if not isinstance(request, dict) or "trace" not in request:
        return (None, None, False)
    ctx = request.get("trace")
    trace_id = ctx.get("trace_id") if isinstance(ctx, dict) else None
    if not isinstance(trace_id, str) or not trace_id:
        registry().counter("serve.trace.bad_context").inc()
        return (None, None, False)
    parent = ctx.get("parent_span")
    if parent is not None and not isinstance(parent, str):
        parent = None
    return (trace_id, parent, bool(ctx.get("return_spans")))


@dataclasses.dataclass
class ServeConfig:
    """Tuning knobs of the serving layer (see README "Serving")."""

    #: bounded work-queue capacity; beyond it requests are shed
    capacity: int = 16
    #: worker threads draining the queue
    workers: int = 1
    #: budget applied when a request carries none (None = unbounded)
    default_budget_ms: Optional[float] = None
    #: matches returned when a request does not ask for a count
    top_k_default: int = 1
    #: skip the full tier when less than this much budget remains
    full_floor_ms: float = 0.0
    #: per-vertex LRU entries kept for the stale tier
    stale_capacity: int = 1024
    #: minimum k fetched from an attached ANN index on the full tier,
    #: so stale-cached top-k rows can also serve later, larger requests
    index_k_floor: int = 16
    #: fixed row-tile width of the fused batch scoring path
    #: (:meth:`MatchService.handle_batch`): every fused request is
    #: scored through an operand of exactly this many rows (padded with
    #: duplicates), which pins the BLAS kernel and makes batched
    #: answers bit-identical to one-at-a-time answers (DESIGN.md §13)
    batch_tile: int = 8
    #: circuit breaker: sliding window size (calls)
    breaker_window: int = 8
    #: circuit breaker: failure rate in the window that opens it
    breaker_failure_threshold: float = 0.5
    #: circuit breaker: minimum calls in the window before it can open
    breaker_min_calls: int = 3
    #: circuit breaker: how long it stays open before probing
    breaker_cooldown_ms: float = 2000.0
    #: head-sampling rate for request traces (errors, degraded answers,
    #: deadline blows and sheds are always kept regardless)
    trace_sample_rate: float = 1.0
    #: sampled traces retained in the bounded recorder (newest win)
    trace_capacity: int = 256
    #: shard membership (both set or both None): this worker answers
    #: only for image positions ``p`` with ``p % shard_count ==
    #: shard_slot``.  Scoring is unchanged — the full score row is
    #: computed exactly as single-process — the mask applies only at
    #: top-k selection, which is what makes the router's cross-shard
    #: merge bit-identical (DESIGN.md §14).
    shard_slot: Optional[int] = None
    shard_count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.default_budget_ms is not None and self.default_budget_ms <= 0:
            raise ValueError("default_budget_ms must be positive")
        if self.top_k_default < 1:
            raise ValueError("top_k_default must be at least 1")
        if self.full_floor_ms < 0:
            raise ValueError("full_floor_ms must be non-negative")
        if self.stale_capacity < 1:
            raise ValueError("stale_capacity must be at least 1")
        if self.index_k_floor < 1:
            raise ValueError("index_k_floor must be at least 1")
        if self.batch_tile < 1:
            raise ValueError("batch_tile must be at least 1")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be in [0, 1]")
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be at least 1")
        if (self.shard_slot is None) != (self.shard_count is None):
            raise ValueError("shard_slot and shard_count must be set "
                             "together")
        if self.shard_count is not None:
            if self.shard_count < 1:
                raise ValueError("shard_count must be at least 1")
            if not 0 <= self.shard_slot < self.shard_count:
                raise ValueError("shard_slot must be in "
                                 "[0, shard_count)")


@dataclasses.dataclass(frozen=True)
class _Query:
    """A validated request."""

    vertex: int
    top_k: int
    budget: Optional[float]  # seconds


class MatchService:
    """Answers match queries over a fitted matcher, with failure
    isolation.  See the module docstring for the failure model."""

    def __init__(self, matcher: CrossEM, *,
                 config: Optional[ServeConfig] = None,
                 fallback: Optional[CrossEM] = None,
                 clock: Callable[[], float] = time.monotonic,
                 tracer: Optional[Tracer] = None) -> None:
        if matcher.graph is None:
            raise ValueError("MatchService needs a fitted matcher "
                             "(call CrossEM.fit first)")
        self.matcher = matcher
        self.config = config or ServeConfig()
        self._clock = clock
        if tracer is None:
            trace_recorder().set_capacity(self.config.trace_capacity)
            tracer = Tracer(
                policy=SamplePolicy(rate=self.config.trace_sample_rate),
                clock=clock)
        self.tracer = tracer
        cooldown = self.config.breaker_cooldown_ms / 1000.0
        self.text_breaker = CircuitBreaker(
            "text", window=self.config.breaker_window,
            failure_threshold=self.config.breaker_failure_threshold,
            min_calls=self.config.breaker_min_calls,
            cooldown=cooldown, clock=clock)
        self.vision_breaker = CircuitBreaker(
            "vision", window=self.config.breaker_window,
            failure_threshold=self.config.breaker_failure_threshold,
            min_calls=self.config.breaker_min_calls,
            cooldown=cooldown, clock=clock)
        self.policy = DegradationPolicy(
            self.text_breaker, full_floor=self.config.full_floor_ms / 1000.0)
        self.queue = BoundedQueue(self.config.capacity)
        self.fallback = fallback if fallback is not None \
            else self._build_fallback()
        self._vertex_set = set(matcher.vertex_ids)
        self._image_ids = [img.image_id for img in matcher.images]
        self._owned_mask: Optional[np.ndarray] = None
        if self.config.shard_count is not None:
            # Lazy import: repro.shard's package __init__ pulls the
            # router, which imports this module.
            from ..shard.partition import owned_mask
            self._owned_mask = owned_mask(len(self._image_ids),
                                          self.config.shard_count,
                                          self.config.shard_slot)
        self._stale: "OrderedDict[int, Tuple[np.ndarray, str]]" = OrderedDict()
        self._stale_lock = threading.Lock()
        self._emit: Optional[Callable[[dict], None]] = None
        self._threads: List[threading.Thread] = []
        self._started = False
        self._warm = False

    # -- construction ------------------------------------------------------
    def _build_fallback(self) -> CrossEM:
        """A hard-prompt matcher over the same data: the cached tier.

        Discrete prompts have no trainable parameters, so the fit below
        never trains — it only builds the prompt-cache structures whose
        embedding matrix the cached tier slices (DESIGN.md §6 is the
        exactness argument).  A matcher that is itself discrete serves
        as its own fallback: its full tier already is the cache.
        """
        if self.matcher.config.prompt != "soft":
            return self.matcher
        config = CrossEMConfig(
            prompt="hard", d=self.matcher.config.d, epochs=0,
            seed=self.matcher.config.seed,
            aggregator=self.matcher.config.aggregator)
        fallback = CrossEM(self.matcher.bundle, config)
        fallback.fit(self.matcher.graph, self.matcher.images,
                     self.matcher.vertex_ids)
        return fallback

    def warmup(self) -> "MatchService":
        """Populate every embedding cache so the per-request path never
        triggers a bulk encode.  Encoder work runs through the breakers:
        a backend that cannot even warm up fails the service *here*,
        loudly, not one request at a time."""
        if self._warm:
            return self
        with span("serve/warmup"):
            matcher, fallback = self.matcher, self.fallback
            probe = matcher.vertex_ids[0]
            self.vision_breaker.call(
                lambda: matcher._encode_images(range(len(matcher.images))))
            self.text_breaker.call(lambda: matcher.score([probe]))
            if matcher.search_index is not None:
                self.text_breaker.call(
                    lambda: matcher.score_topk([probe], 1))
            if fallback is not matcher:
                # The fallback's bulk encode is encoder work like any
                # other: run it through the breakers too, so a hung
                # fallback backend trips a breaker here instead of
                # stalling warmup with no circuit ever opening.
                self.vision_breaker.call(
                    lambda: fallback._encode_images(
                        range(len(fallback.images))))
                self.text_breaker.call(
                    lambda: fallback.score([fallback.vertex_ids[0]]))
        self._warm = True
        return self

    # -- request validation ------------------------------------------------
    def _parse(self, request: Any) -> _Query:
        if not isinstance(request, dict):
            raise BadRequest("request must be a JSON object")
        vertex = request.get("vertex")
        if isinstance(vertex, bool) or not isinstance(vertex, int):
            raise BadRequest("field 'vertex' must be an integer vertex id")
        if vertex not in self._vertex_set:
            raise BadRequest(f"unknown vertex {vertex}")
        top_k = request.get("top_k", self.config.top_k_default)
        if isinstance(top_k, bool) or not isinstance(top_k, int) or top_k < 1:
            raise BadRequest("field 'top_k' must be a positive integer")
        # Clamp to the repository size: there are only so many images
        # to return, and an unclamped top_k=10**9 would otherwise size
        # allocations in _top_matches and the index_k_floor over-fetch.
        # The response simply carries the clamped (achievable) count.
        top_k = min(top_k, len(self._image_ids))
        budget_ms = request.get("budget_ms", self.config.default_budget_ms)
        budget = None
        if budget_ms is not None:
            if isinstance(budget_ms, bool) or \
                    not isinstance(budget_ms, (int, float)) or budget_ms <= 0:
                raise BadRequest("field 'budget_ms' must be a positive "
                                 "number of milliseconds")
            budget = float(budget_ms) / 1000.0
        return _Query(vertex=vertex, top_k=top_k, budget=budget)

    # -- scoring tiers -----------------------------------------------------
    def _score_full(self, vertex: int, deadline: Deadline,
                    top_k: int) -> np.ndarray:
        # The pre-flight check sits *outside* the breaker: a request
        # whose budget is already dead is not evidence against the
        # encoder.  Inside, the matcher's stage hooks check the same
        # deadline between encode stages, so a hung encoder surfaces as
        # DeadlineExceeded — which the breaker does count.
        deadline.check("score_full")

        def run() -> np.ndarray:
            with self.matcher.encode_hook(deadline.check):
                if self.matcher.search_index is not None:
                    # Sublinear path: top-k through the ANN index,
                    # returned as a dense row (-inf off the shortlist)
                    # so the stale cache and _top_matches need no new
                    # shape.  k is floored so the cached row can serve
                    # later requests asking for a few more matches.
                    k = max(top_k, self.config.index_k_floor)
                    ids, scores = self.matcher.score_topk([vertex], k)
                    row = np.full(len(self._image_ids), -np.inf,
                                  dtype=np.float32)
                    valid = ids[0] >= 0
                    row[ids[0][valid]] = scores[0][valid]
                else:
                    row = self.matcher.score([vertex])[0]
            deadline.check("score_full")
            return row

        return self.text_breaker.call(run)

    def _score_rows_fused(self, vertices: List[int], top_k: int,
                          deadline: Deadline) -> np.ndarray:
        """Full-tier score rows for many vertices in one breaker-guarded
        call, computed in fixed ``batch_tile``-row tiles.

        The fixed operand shape is the exactness argument (DESIGN.md
        §13): BLAS kernels round differently per operand *shape*, but
        for a pinned shape each output row depends only on its own
        query row.  Padding every tile to exactly ``batch_tile`` rows
        (with duplicate vertices) therefore makes each row of a fused
        batch bit-identical to the same request scored alone through
        this same path, regardless of batch composition.

        ``deadline`` is the tightest budget in the group; the matcher's
        stage hooks re-check it between tiles, so a hung encoder
        surfaces as DeadlineExceeded — which the breaker counts.
        """
        deadline.check("score_full")
        tile = self.config.batch_tile
        matcher = self.matcher
        n_images = len(self._image_ids)

        def run() -> np.ndarray:
            rows = np.empty((len(vertices), n_images), dtype=np.float32)
            with matcher.encode_hook(deadline.check):
                for start in range(0, len(vertices), tile):
                    chunk = vertices[start:start + tile]
                    padded = chunk + [chunk[-1]] * (tile - len(chunk))
                    if matcher.search_index is not None:
                        k = max(top_k, self.config.index_k_floor)
                        ids, scores = matcher.score_topk(padded, k)
                        block = np.full((len(chunk), n_images), -np.inf,
                                        dtype=np.float32)
                        for r in range(len(chunk)):
                            valid = ids[r] >= 0
                            block[r][ids[r][valid]] = scores[r][valid]
                        rows[start:start + len(chunk)] = block
                    else:
                        rows[start:start + len(chunk)] = \
                            matcher.score(padded)[:len(chunk)]
                    deadline.check("score_full")
            return rows

        return self.text_breaker.call(run)

    def _score_cached(self, vertex: int) -> np.ndarray:
        # Pure cache: slices the discrete-prompt embedding matrix and
        # one GEMM row — no encoder call, nothing for a breaker to trip.
        return self.fallback.score([vertex])[0]

    def _stale_put(self, vertex: int, scores: np.ndarray, tier: str) -> None:
        with self._stale_lock:
            self._stale[vertex] = (scores, tier)
            self._stale.move_to_end(vertex)
            while len(self._stale) > self.config.stale_capacity:
                self._stale.popitem(last=False)

    @staticmethod
    def _stale_covers(row: np.ndarray, top_k: int) -> bool:
        finite = int(np.isfinite(row).sum())
        return finite >= min(top_k, row.shape[0])

    def _stale_get(self, vertex: int) -> Optional[Tuple[np.ndarray, str]]:
        with self._stale_lock:
            entry = self._stale.get(vertex)
            if entry is not None:
                self._stale.move_to_end(vertex)
            return entry

    @property
    def owned_images(self) -> int:
        """Images this worker answers for (all of them unsharded)."""
        if self._owned_mask is None:
            return len(self._image_ids)
        return int(self._owned_mask.sum())

    def _top_matches(self, scores: np.ndarray, top_k: int) -> List[dict]:
        from ..index.topk import deterministic_topk

        # -inf marks off-shortlist entries of an index-backed row; they
        # are never real matches.  deterministic_topk orders the rest by
        # (-score, image position) — identical for brute and index rows.
        # A shard worker additionally masks to its owned positions:
        # the scores themselves are full-row exact, only selection is
        # partitioned, so a router merging per-shard lists by
        # (-score, image id) reconstructs the unsharded answer bit for
        # bit (DESIGN.md §14).
        keep = np.isfinite(scores)
        if self._owned_mask is not None:
            keep &= self._owned_mask
        finite = np.flatnonzero(keep)
        order = finite[deterministic_topk(scores[finite],
                                          min(top_k, len(finite)))]
        return [{"image": int(self._image_ids[i]),
                 "score": float(scores[i])} for i in order]

    # -- the ladder --------------------------------------------------------
    def _execute(self, query: _Query, deadline: Deadline,
                 full_row: Optional[np.ndarray] = None,
                 ) -> Tuple[List[dict], str, Optional[str]]:
        """Walk the degradation ladder; returns (matches, tier, reason).

        ``reason`` is ``None`` for an undegraded full-tier answer,
        otherwise why the service fell below full.  A DeadlineExceeded
        mid-ladder skips straight to the stale tier — once the budget is
        blown, only a free tier is honest to run.

        ``full_row`` is a precomputed full-tier score row from the
        fused batch path (:meth:`handle_batch`); when present the full
        tier consumes it instead of scoring again, everything else —
        deadlines, stale refill, degradation — unchanged.
        """
        reg = registry()
        decision = self.policy.plan(deadline)
        reason = decision.reason
        pending = list(decision.tiers)
        last_error: Optional[BaseException] = None
        while pending:
            tier = pending.pop(0)
            try:
                with trace_span(f"tier/{tier}"):
                    if tier == TIER_FULL:
                        if full_row is not None:
                            deadline.check("score_full")
                            scores = full_row
                        else:
                            scores = self._score_full(query.vertex,
                                                      deadline,
                                                      query.top_k)
                    elif tier == TIER_CACHED:
                        deadline.check("score_cached")
                        scores = self._score_cached(query.vertex)
                    else:
                        entry = self._stale_get(query.vertex)
                        # An index-backed stale row knows only its
                        # shortlist; if this request wants more matches
                        # than the row holds, it is a miss, not a lie.
                        if entry is not None and \
                                not self._stale_covers(entry[0],
                                                       query.top_k):
                            entry = None
                        add_trace_event("cache", cache="stale",
                                        hit=entry is not None)
                        if entry is None:
                            break  # nothing stale: surface the real failure
                        scores = entry[0]
            except DeadlineExceeded as exc:
                last_error = exc
                reason = reason or exc.code
                reg.counter("serve.deadline_exceeded_total").inc()
                add_trace_event("deadline", stage=exc.stage, tier=tier)
                flag_trace(FLAG_DEADLINE)
                pending = [t for t in pending if t == TIER_STALE]
                continue
            except ServeError as exc:
                last_error = exc
                reason = reason or exc.code
                continue
            except Exception as exc:  # flaky backend: fall down a tier
                last_error = exc
                reason = reason or "backend_error"
                _log.warning("tier failed", tier=tier, vertex=query.vertex,
                             error=f"{type(exc).__name__}: {exc}")
                continue
            if tier != TIER_STALE:
                self._stale_put(query.vertex, scores, tier)
            return (self._top_matches(scores, query.top_k), tier,
                    reason if tier != TIER_FULL else None)
        if last_error is None:  # stale-only plan with an empty cache
            last_error = ServeError("no serving tier could answer")
        raise last_error

    # -- request lifecycle -------------------------------------------------
    def handle(self, request: Any, *,
               full_row: Optional[np.ndarray] = None,
               started: Optional[float] = None) -> dict:
        """Process one request synchronously; always returns a response
        dict (carrying its ``trace_id``), never raises (per-request
        isolation).

        Every request gets a trace; whether it is *retained* is the
        sampling policy's call at finish — errors, degraded answers and
        deadline blows are always kept (their flags are set on the way
        through :meth:`_error_response` / :meth:`_handle`).

        ``full_row`` and ``started`` belong to the fused batch path
        (:meth:`handle_batch`): a precomputed full-tier score row, and
        the batch's admission time so ``elapsed_ms`` charges this
        request its share of the shared scoring call.

        A request carrying a ``trace`` context *joins* the caller's
        trace instead of minting one, and — when the context asks for
        ``return_spans`` and local sampling retained the trace — ships
        its span tree back in the response's ``trace`` field so the
        caller can stitch a cross-process timeline (DESIGN.md §15).
        """
        trace_id, parent_span, return_spans = parse_trace_context(request)
        trace = self.tracer.start("serve.request", trace_id=trace_id,
                                  parent_span_id=parent_span)
        with trace.activate():
            response = self._handle(request, full_row=full_row,
                                    started=started)
        kept = trace.finish()
        if trace.trace_id is not None:
            response["trace_id"] = trace.trace_id
            if return_spans and kept:
                response["trace"] = trace.to_wire()
        return response

    def _handle(self, request: Any, *,
                full_row: Optional[np.ndarray] = None,
                started: Optional[float] = None) -> dict:
        reg = registry()
        reg.counter("serve.requests_total").inc()
        started = self._clock() if started is None else started
        request_id = request.get("id") if isinstance(request, dict) else None
        try:
            self.warmup()
        except Exception as exc:  # a backend too sick to even warm up
            reg.counter("serve.internal_errors_total").inc()
            _log.error("warmup failed",
                       error=f"{type(exc).__name__}: {exc}")
            return self._error_response(
                request_id, "internal",
                f"warmup failed: {type(exc).__name__}: {exc}", started)
        try:
            query = self._parse(request)
        except BadRequest as exc:
            return self._error_response(request_id, exc.code, str(exc),
                                        started)
        # the parsed shape, so exported traces replay as load schedules
        add_trace_event("request", vertex=query.vertex, top_k=query.top_k,
                        budget_ms=None if query.budget is None
                        else round(query.budget * 1e3, 4))
        if full_row is not None:
            add_trace_event("batch", fused=True)
        deadline = Deadline(query.budget, clock=self._clock)
        try:
            matches, tier, reason = self._execute(query, deadline,
                                                  full_row=full_row)
        except ServeError as exc:
            return self._error_response(request_id, exc.code, str(exc),
                                        started)
        except Exception as exc:
            # Unexpected bug while answering: isolate it to this request.
            reg.counter("serve.internal_errors_total").inc()
            _log.error("internal error answering request",
                       vertex=query.vertex,
                       error=f"{type(exc).__name__}: {exc}")
            return self._error_response(
                request_id, "internal",
                f"{type(exc).__name__}: {exc}", started)
        elapsed_ms = (self._clock() - started) * 1e3
        degraded = tier != TIER_FULL
        reg.counter("serve.ok_total").inc()
        reg.counter(f"serve.tier.{tier}").inc()
        if degraded:
            reg.counter("serve.degraded_total").inc()
            flag_trace(FLAG_DEGRADED)
        # bucket-backed so a live scrape can delta two snapshots into
        # the window's exact latency quantiles (obs.scrape)
        reg.histogram("serve.request_ms",
                      buckets=DEFAULT_LATENCY_BOUNDS_MS).observe(elapsed_ms)
        response = {"id": request_id, "ok": True, "vertex": query.vertex,
                    "tier": tier, "degraded": degraded, "matches": matches,
                    "elapsed_ms": round(elapsed_ms, 3)}
        if degraded and reason is not None:
            response["reason"] = reason
        return response

    # -- fused batch mode --------------------------------------------------
    def _fusible(self, query: _Query) -> bool:
        """Would this request enter the ladder at the full tier right
        now?  Mirrors :meth:`DegradationPolicy.plan` (breaker admits
        encoder calls, budget clears the full floor) without emitting
        its trace event — evaluated once at fuse time; the per-request
        ladder re-plans with full accounting afterwards."""
        if not self.text_breaker.allows_call():
            return False
        if query.budget is None:
            return True
        return query.budget >= self.policy.full_floor

    def handle_batch(self, requests: Sequence[Any]) -> List[dict]:
        """Answer many independent requests, fusing their full-tier
        scoring into tile-shaped batched calls — the micro-batch path
        behind :mod:`repro.netserve`.

        Responses align positionally with ``requests``.  Semantics are
        identical to calling :meth:`handle` once per request — same
        parsing, deadlines, degradation ladder, per-request isolation,
        metrics and traces — except that requests eligible for the full
        tier share one breaker-guarded scoring call per ``top_k``
        group, so N GEMV-shaped queries become tile-shaped GEMMs.
        Answers are bit-identical to one-at-a-time calls of this same
        method (the fixed-tile argument, DESIGN.md §13).  If a fused
        call fails — deadline, breaker, encoder bug — every member
        falls back to its own per-request ladder; a batch never turns
        one failure into N undiagnosed ones.
        """
        if not requests:
            return []
        started = self._clock()
        warm = True
        try:
            self.warmup()
        except Exception:
            # Per-request handling below reports the warmup failure
            # with full error accounting; nothing to fuse meanwhile.
            warm = False
        rows: Dict[int, np.ndarray] = {}
        if warm and len(requests) >= 1:
            # Group fusible requests by their effective index fetch
            # width: with an ANN index attached, k shapes the shortlist
            # and therefore the answer, so only like-k requests may
            # share a call.  Brute-force scoring ignores k (one group).
            groups: Dict[int, List[int]] = {}
            queries: Dict[int, _Query] = {}
            for position, request in enumerate(requests):
                try:
                    query = self._parse(request)
                except Exception:
                    continue  # re-parsed with accounting in _handle
                if not self._fusible(query):
                    continue
                queries[position] = query
                k = max(query.top_k, self.config.index_k_floor) \
                    if self.matcher.search_index is not None else 0
                groups.setdefault(k, []).append(position)
            reg = registry()
            for k, positions in groups.items():
                fused = [queries[p] for p in positions]
                finite = [q.budget for q in fused if q.budget is not None]
                deadline = Deadline(min(finite) if finite else None,
                                    clock=self._clock)
                try:
                    block = self._score_rows_fused(
                        [q.vertex for q in fused], max(k, 1), deadline)
                except Exception:
                    continue  # per-request ladders take over below
                reg.counter("serve.batch.fused_total").inc(len(fused))
                reg.histogram("serve.batch.group_size").observe(
                    float(len(fused)))
                for row, position in enumerate(positions):
                    rows[position] = block[row]
        return [self.handle(request, full_row=rows.get(position),
                            started=started)
                for position, request in enumerate(requests)]

    def _error_response(self, request_id: Any, code: str, message: str,
                        started: float) -> dict:
        elapsed_ms = (self._clock() - started) * 1e3
        reg = registry()
        add_trace_event("error", code=code)
        flag_trace(FLAG_ERROR)
        reg.counter("serve.error_total").inc()
        reg.counter(f"serve.error.{code}").inc()
        reg.histogram("serve.request_ms",
                      buckets=DEFAULT_LATENCY_BOUNDS_MS).observe(elapsed_ms)
        return {"id": request_id, "ok": False,
                "error": {"type": code, "message": message},
                "elapsed_ms": round(elapsed_ms, 3)}

    # -- threaded mode -----------------------------------------------------
    def start(self, emit: Callable[[dict], None]) -> None:
        """Warm the caches and start the worker pool; ``emit`` receives
        every response produced by a worker (it must be thread-safe)."""
        if self._started:
            raise RuntimeError("service already started")
        self.warmup()
        self._emit = emit
        for i in range(self.config.workers):
            thread = threading.Thread(target=self._worker_main,
                                      name=f"serve-worker-{i}", daemon=True)
            thread.start()
            self._threads.append(thread)
        self._started = True

    def submit(self, request: Any) -> Optional[dict]:
        """Admit ``request`` to the work queue.

        Returns ``None`` when enqueued (the response will reach ``emit``
        later) or an immediate typed error response: ``overloaded`` when
        admission control sheds the request, ``unavailable`` when the
        submit races (or follows) :meth:`shutdown`.  Never raises — a
        reader thread pumping requests into a closing service sees a
        structured rejection, not a crash.
        """
        try:
            self.queue.put(request)
            return None
        except Unavailable as exc:
            registry().counter("serve.requests_total").inc()
            request_id = request.get("id") if isinstance(request, dict) \
                else None
            trace_id, parent_span, return_spans = \
                parse_trace_context(request)
            trace = self.tracer.start("serve.request", trace_id=trace_id,
                                      parent_span_id=parent_span)
            with trace.activate():
                trace.add_event("rejected", code=exc.code)
                response = self._error_response(request_id, exc.code,
                                                str(exc), self._clock())
            kept = trace.finish()
            if trace.trace_id is not None:
                response["trace_id"] = trace.trace_id
                if return_spans and kept:
                    response["trace"] = trace.to_wire()
            return response
        except Overloaded as exc:
            registry().counter("serve.requests_total").inc()
            request_id = request.get("id") if isinstance(request, dict) \
                else None
            trace_id, parent_span, return_spans = \
                parse_trace_context(request)
            # A shed request never reaches handle(), so it gets its
            # (always-retained) trace right here on the admission path.
            trace = self.tracer.start("serve.request", trace_id=trace_id,
                                      parent_span_id=parent_span)
            with trace.activate():
                trace.flag(FLAG_SHED)
                trace.add_event("shed", depth=exc.depth,
                                capacity=exc.capacity)
                response = self._error_response(request_id, exc.code,
                                                str(exc), self._clock())
            kept = trace.finish()
            if trace.trace_id is not None:
                response["trace_id"] = trace.trace_id
                if return_spans and kept:
                    response["trace"] = trace.to_wire()
            return response

    def _worker_main(self) -> None:
        while True:
            item = self.queue.get()
            if item is None:
                return
            try:
                response = self.handle(item)
            except BaseException as exc:  # handle() should never raise
                response = {"id": None, "ok": False,
                            "error": {"type": "internal",
                                      "message": f"{type(exc).__name__}: "
                                                 f"{exc}"},
                            "elapsed_ms": 0.0}
            if self._emit is not None:
                self._emit(response)

    def shutdown(self, timeout: float = 30.0) -> None:
        """Drain the queue, stop the workers, and join them."""
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        self._started = False
