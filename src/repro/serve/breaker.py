"""Circuit breaker around a failure-prone backend (encoder) call.

The classic three-state machine:

* **closed** — calls pass through; outcomes land in a sliding window.
  When the window holds at least ``min_calls`` outcomes and the failure
  rate reaches ``failure_threshold``, the breaker opens.
* **open** — calls are rejected immediately with
  :class:`~repro.serve.errors.BreakerOpen` (no backend work, no pile-up
  behind a dead encoder).  After ``cooldown`` seconds the next call is
  allowed through as a probe.
* **half-open** — exactly one probe call runs at a time; its success
  closes the breaker (window cleared), its failure re-opens it and the
  cooldown restarts.

Every transition is recorded in the :mod:`repro.obs` metrics registry:
``serve.breaker.<name>.state`` is a gauge holding the state code
(0 = closed, 1 = half-open, 2 = open) so exported metrics show *when*
a backend was considered dead, and counters track successes, failures,
rejections and total opens.

The clock is injectable **per instance** for deterministic tests: each
breaker reads cooldowns only from its own ``self._clock``, and holds no
class-level or module-level time state — two breakers driven by two
independent fake clocks in one test (the shard router's per-shard
breaker suite does exactly this) cannot interfere through timing.  The
only cross-instance state is the metrics registry, keyed by breaker
*name*: give concurrently-live breakers distinct names or their
``serve.breaker.<name>.*`` instruments are shared.  All methods are
thread-safe (the serve worker pool shares one breaker per backend).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Optional, TypeVar

from ..obs import add_trace_event, get_logger, registry
from .errors import BreakerOpen

__all__ = ["CircuitBreaker", "STATE_CLOSED", "STATE_HALF_OPEN", "STATE_OPEN"]

_log = get_logger("repro.serve.breaker")

T = TypeVar("T")

STATE_CLOSED = "closed"
STATE_HALF_OPEN = "half_open"
STATE_OPEN = "open"

#: gauge encoding — chosen so "bigger is worse" in dashboards
STATE_CODES = {STATE_CLOSED: 0, STATE_HALF_OPEN: 1, STATE_OPEN: 2}


class CircuitBreaker:
    """Failure-rate circuit breaker with a sliding outcome window."""

    def __init__(self, name: str, *, window: int = 8,
                 failure_threshold: float = 0.5, min_calls: int = 3,
                 cooldown: float = 1.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if min_calls < 1:
            raise ValueError("min_calls must be at least 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.name = name
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.cooldown = cooldown
        self._clock = clock
        self._outcomes: deque = deque(maxlen=window)  # True = failure
        self._state = STATE_CLOSED
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        self._lock = threading.RLock()
        self._set_state_gauge()

    # -- metrics -----------------------------------------------------------
    def _metric(self, suffix: str) -> str:
        return f"serve.breaker.{self.name}.{suffix}"

    def _set_state_gauge(self) -> None:
        registry().gauge(self._metric("state")).set(STATE_CODES[self._state])

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        _log.warning("breaker transition", breaker=self.name,
                     from_state=self._state, to_state=state)
        # Lands in the active request's trace (the transition happens on
        # the thread driving the call that tripped/probed the breaker).
        add_trace_event("breaker", breaker=self.name,
                        from_state=self._state, to_state=state)
        self._state = state
        self._set_state_gauge()
        if state == STATE_OPEN:
            registry().counter(self._metric("open_total")).inc()

    # -- state machine -----------------------------------------------------
    def _maybe_half_open(self) -> None:
        """open -> half-open once the cooldown has elapsed (lock held)."""
        if self._state == STATE_OPEN and \
                self._clock() - self._opened_at >= self.cooldown:
            self._transition(STATE_HALF_OPEN)
            self._probe_in_flight = False

    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allows_call(self) -> bool:
        """Would a call be admitted right now?  (Non-binding — used by
        the degradation policy to skip a tier without burning the
        half-open probe slot.)"""
        with self._lock:
            self._maybe_half_open()
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_HALF_OPEN:
                return not self._probe_in_flight
            return False

    def _before_call(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state == STATE_CLOSED:
                return
            if self._state == STATE_HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return
            registry().counter(self._metric("rejected_total")).inc()
            retry_after = None
            if self._state == STATE_OPEN:
                retry_after = max(
                    0.0, self.cooldown - (self._clock() - self._opened_at))
            raise BreakerOpen(self.name, retry_after=retry_after)

    def record_success(self) -> None:
        with self._lock:
            registry().counter(self._metric("successes_total")).inc()
            if self._state == STATE_HALF_OPEN:
                # The probe came back healthy: full reset.
                self._probe_in_flight = False
                self._outcomes.clear()
                self._transition(STATE_CLOSED)
            elif self._state == STATE_CLOSED:
                self._outcomes.append(False)

    def record_failure(self) -> None:
        with self._lock:
            registry().counter(self._metric("failures_total")).inc()
            if self._state == STATE_HALF_OPEN:
                # The probe failed: back to open, cooldown restarts.
                self._probe_in_flight = False
                self._opened_at = self._clock()
                self._transition(STATE_OPEN)
                return
            if self._state != STATE_CLOSED:
                return
            self._outcomes.append(True)
            if len(self._outcomes) >= self.min_calls:
                rate = sum(self._outcomes) / len(self._outcomes)
                if rate >= self.failure_threshold:
                    self._opened_at = self._clock()
                    self._transition(STATE_OPEN)

    def force_open(self) -> None:
        """Administratively open the breaker (ops toggle / tests)."""
        with self._lock:
            self._opened_at = self._clock()
            self._transition(STATE_OPEN)

    def reset(self) -> None:
        """Administratively close the breaker and clear its window."""
        with self._lock:
            self._outcomes.clear()
            self._probe_in_flight = False
            self._opened_at = None
            self._transition(STATE_CLOSED)

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` through the breaker.

        Raises :class:`BreakerOpen` without calling ``fn`` when the
        breaker is open (or its half-open probe slot is taken).  Any
        exception from ``fn`` counts as a failure and propagates;
        a normal return counts as a success.
        """
        self._before_call()
        try:
            result = fn()
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result
