"""Pre-trained model zoo.

Pre-training MiniCLIP and MiniLM is deterministic but not free, so this
module memoizes complete pre-trained bundles — in memory per process and
on disk across processes (``.cache/repro`` beside the working
directory).  Benchmarks and tests ask the zoo for a bundle instead of
pre-training inline, just as the original code downloads HuggingFace
checkpoints.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import zipfile
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..datasets.world import ConceptUniverse
from ..iosafe import atomic_write_bytes, quarantine, retry_io
from ..obs import get_logger, registry, span
from ..text.corpus import build_text_corpus
from ..text.minilm import MiniLM
from ..text.tokenizer import Vocabulary, WordTokenizer
from ..vision.encoder import PatchFeatureExtractor
from .alignment import PropertyAligner
from .model import MiniCLIP
from .pretrain import PretrainConfig, pretrain_clip

__all__ = ["PretrainedBundle", "get_pretrained_bundle", "clear_memory_cache"]

_MEMORY_CACHE: Dict[str, "PretrainedBundle"] = {}
_log = get_logger("repro.clip.zoo")


@dataclasses.dataclass
class PretrainedBundle:
    """Everything downstream code needs from pre-training."""

    universe: ConceptUniverse
    vocab: Vocabulary
    tokenizer: WordTokenizer
    minilm: MiniLM
    clip: MiniCLIP
    patch_extractor: PatchFeatureExtractor
    aligner: PropertyAligner
    pretrain_losses: list


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / ".cache" / "repro"


def _config_key(kind: str, num_concepts: int, seed: int, max_len: int,
                config: PretrainConfig) -> str:
    payload = json.dumps({
        "kind": kind, "num_concepts": num_concepts, "seed": seed,
        "max_len": max_len, "pretrain": dataclasses.asdict(config),
        "version": 5,
    }, sort_keys=True)
    return hashlib.sha1(payload.encode()).hexdigest()[:16]


def _build_bundle(kind: str, num_concepts: int, seed: int, max_len: int,
                  config: PretrainConfig) -> PretrainedBundle:
    universe = ConceptUniverse(num_concepts, kind=kind, seed=seed)
    vocab = Vocabulary(universe.vocabulary_words())
    tokenizer = WordTokenizer(vocab, max_len=max_len)
    minilm = MiniLM(vocab).pretrain(build_text_corpus(universe, seed=seed),
                                    seed=seed)
    clip = MiniCLIP(len(vocab), max_len=max_len, rng=seed)
    losses = pretrain_clip(clip, universe, tokenizer, config)
    extractor = PatchFeatureExtractor(seed=seed)
    aligner = PropertyAligner(extractor, minilm).fit(universe, seed=seed)
    return PretrainedBundle(universe, vocab, tokenizer, minilm, clip,
                            extractor, aligner, losses)


def _save_bundle(path: Path, bundle: PretrainedBundle) -> None:
    state = {f"clip.{k}": v for k, v in bundle.clip.state_dict().items()}
    state["minilm.embeddings"] = bundle.minilm.embeddings
    state["aligner.weights"] = bundle.aligner._weights
    state["losses"] = np.asarray(bundle.pretrain_losses, dtype=np.float64)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **state)
    # Atomic publish: a process killed mid-save must never leave a
    # truncated archive where every later process trips over it.
    retry_io(lambda: atomic_write_bytes(path, buffer.getvalue()),
             name="zoo.save")


def _load_bundle(path: Path, kind: str, num_concepts: int, seed: int,
                 max_len: int) -> Optional[PretrainedBundle]:
    # np.load on an .npz is lazy: a file with a valid zip header but a
    # corrupt body (truncated write, bad disk) opens fine and only
    # raises BadZipFile when an array is actually read — so the whole
    # deserialization is one recovery boundary, not just the open.  The
    # byte read itself is retried first: a transient I/O hiccup should
    # cost milliseconds, not a full pre-training rebuild.
    try:
        raw = retry_io(path.read_bytes, name="zoo.load")
    except OSError:
        return None
    try:
        archive = np.load(io.BytesIO(raw))
        universe = ConceptUniverse(num_concepts, kind=kind, seed=seed)
        vocab = Vocabulary(universe.vocabulary_words())
        tokenizer = WordTokenizer(vocab, max_len=max_len)
        minilm = MiniLM(vocab)
        minilm.embeddings = archive["minilm.embeddings"]
        clip = MiniCLIP(len(vocab), max_len=max_len, rng=seed)
        clip.load_state_dict({k[len("clip."):]: archive[k]
                              for k in archive.files if k.startswith("clip.")})
        extractor = PatchFeatureExtractor(seed=seed)
        aligner = PropertyAligner(extractor, minilm)
        aligner._weights = archive["aligner.weights"]
        losses = archive["losses"].tolist()
    except (zipfile.BadZipFile, OSError, ValueError, KeyError):
        return None
    return PretrainedBundle(universe, vocab, tokenizer, minilm, clip,
                            extractor, aligner, losses)


def get_pretrained_bundle(kind: str = "bird", num_concepts: int = 80,
                          seed: int = 0, max_len: int = 77,
                          config: Optional[PretrainConfig] = None,
                          use_disk_cache: bool = True) -> PretrainedBundle:
    """Return a (possibly cached) fully pre-trained model bundle."""
    config = config or PretrainConfig(seed=seed)
    key = _config_key(kind, num_concepts, seed, max_len, config)
    reg = registry()
    if key in _MEMORY_CACHE:
        reg.counter("cache.memory_hit").inc()
        return _MEMORY_CACHE[key]
    path = _cache_dir() / f"bundle-{key}.npz"
    bundle = None
    if use_disk_cache and path.exists():
        bundle = _load_bundle(path, kind, num_concepts, seed, max_len)
        if bundle is None:
            # A cache entry that exists but will not deserialize is
            # corrupt: quarantine it (keeping the evidence under a
            # .corrupt suffix) so the rebuilt bundle replaces it and
            # later processes never re-trip on the same bad bytes.
            reg.counter("cache.corrupt").inc()
            _log.warning("corrupt bundle cache, rebuilding",
                         path=str(path))
            quarantine(path)
        else:
            reg.counter("cache.hit").inc()
            _log.debug("bundle loaded from disk cache", key=key)
    if bundle is None:
        reg.counter("cache.miss").inc()
        with span("zoo/build") as build:
            bundle = _build_bundle(kind, num_concepts, seed, max_len, config)
        reg.histogram("cache.build_seconds").observe(build.elapsed)
        _log.info("bundle built", kind=kind, num_concepts=num_concepts,
                  seed=seed, seconds=build.elapsed)
        if use_disk_cache:
            try:
                _save_bundle(path, bundle)
            except OSError:
                pass  # a read-only checkout should not break pre-training
    _MEMORY_CACHE[key] = bundle
    return bundle


def clear_memory_cache() -> None:
    """Drop all in-process cached bundles (used by tests)."""
    _MEMORY_CACHE.clear()
