"""MiniCLIP — the pre-trained multi-modal large model substitute.

Architecture follows CLIP (§II-B of the paper): a transformer text
encoder and a ViT-style image encoder projected into a joint embedding
space, trained with the symmetric contrastive loss.  Three properties
the paper relies on are preserved:

* a **joint space** where cosine similarity ranks text-image pairs,
* a **frozen image tower** during downstream prompt tuning (§II-C), and
* a text tower that can consume either *token id sequences* (hard
  prompts, sequence-based encoder of Fig. 4a) or *precomputed input
  embeddings* (soft prompts injected before the transformer, the
  feature-based encoder of Fig. 4b).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn.init import SeedLike, rng_from
from ..vision.encoder import VisionEncoder
from ..vision.image import ImageSpec

__all__ = ["TextEncoder", "MiniCLIP"]


class TextEncoder(nn.Module):
    """CLIP text tower with CLS pooling and a projection head."""

    def __init__(self, vocab_size: int, embed_dim: int = 64, width: int = 48,
                 depth: int = 2, num_heads: int = 4, max_len: int = 77,
                 rng: SeedLike = None) -> None:
        super().__init__()
        rng = rng_from(rng)
        self.width = width
        self.max_len = max_len
        self.token_embed = nn.Embedding(vocab_size, width, rng=rng)
        self.positions = nn.Parameter(nn.normal((1, max_len, width), rng))
        self.encoder = nn.TransformerEncoder(width, depth, num_heads, rng=rng)
        self.project = nn.Linear(width, embed_dim, bias=False, rng=rng)

    def forward(self, token_ids: np.ndarray,
                mask: Optional[np.ndarray] = None) -> nn.Tensor:
        """Encode ``(B, L)`` integer token ids into ``(B, embed_dim)``."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim == 1:
            token_ids = token_ids[None]
        length = token_ids.shape[1]
        if length > self.max_len:
            raise ValueError(f"sequence length {length} exceeds max_len {self.max_len}")
        embeddings = self.token_embed(token_ids)
        return self.forward_embeddings(embeddings, mask)

    def forward_embeddings(self, embeddings: nn.Tensor,
                           mask: Optional[np.ndarray] = None) -> nn.Tensor:
        """Encode precomputed input embeddings ``(B, L, width)``.

        This is the hook the feature-based soft-prompt encoder uses: the
        fused label ⊕ structural-prompt vectors (Eq. 7) enter here in
        place of token embeddings.
        """
        length = embeddings.shape[1]
        if length > self.max_len:
            raise ValueError(f"sequence length {length} exceeds max_len {self.max_len}")
        x = embeddings + self.positions[:, :length, :]
        encoded = self.encoder(x, mask)
        return self.project(encoded[:, 0, :])


class MiniCLIP(nn.Module):
    """Dual-encoder CLIP miniature with a learnable logit scale."""

    def __init__(self, vocab_size: int, embed_dim: int = 64,
                 text_width: int = 48, text_depth: int = 2,
                 vision_width: int = 48, vision_depth: int = 2,
                 num_heads: int = 4, max_len: int = 77,
                 spec: ImageSpec = ImageSpec(), rng: SeedLike = None) -> None:
        super().__init__()
        self._init_args = dict(vocab_size=vocab_size, embed_dim=embed_dim,
                               text_width=text_width, text_depth=text_depth,
                               vision_width=vision_width,
                               vision_depth=vision_depth, num_heads=num_heads,
                               max_len=max_len, spec=spec)
        rng = rng_from(rng)
        self.embed_dim = embed_dim
        self.text = TextEncoder(vocab_size, embed_dim, text_width, text_depth,
                                num_heads, max_len, rng=rng)
        self.vision = VisionEncoder(embed_dim, vision_width, vision_depth,
                                    num_heads, spec, rng=rng)
        # CLIP parameterizes temperature as exp(logit_scale); init ~ 1/0.07.
        self.logit_scale = nn.Parameter(np.asarray([np.log(1.0 / 0.07)],
                                                   dtype=np.float32))

    # -- encoding --------------------------------------------------------
    def encode_text(self, token_ids: np.ndarray,
                    mask: Optional[np.ndarray] = None) -> nn.Tensor:
        """L2-normalized text embeddings."""
        return nn.functional.l2_normalize(self.text(token_ids, mask))

    def encode_text_embeddings(self, embeddings: nn.Tensor,
                               mask: Optional[np.ndarray] = None) -> nn.Tensor:
        """L2-normalized embeddings from precomputed input embeddings."""
        return nn.functional.l2_normalize(self.text.forward_embeddings(embeddings, mask))

    def encode_image(self, pixels: np.ndarray) -> nn.Tensor:
        """L2-normalized image embeddings."""
        return nn.functional.l2_normalize(self.vision(pixels))

    # -- scoring ------------------------------------------------------------
    def similarity_logits(self, text_embeds: nn.Tensor,
                          image_embeds: nn.Tensor) -> nn.Tensor:
        """Scaled cosine logits: ``exp(logit_scale) * T @ I^T``."""
        scale = self.logit_scale.exp()
        return (text_embeds @ image_embeds.transpose()) * scale

    def clone(self) -> "MiniCLIP":
        """A fresh MiniCLIP with identical weights and no shared state.

        Each matcher tunes its own copy so pre-trained weights in the
        zoo stay pristine across experiments.
        """
        copy = MiniCLIP(**self._init_args, rng=0)
        copy.load_state_dict(self.state_dict())
        return copy

    def freeze_image_tower(self) -> "MiniCLIP":
        """Freeze the image encoder (and the contrastive temperature), as
        CrossEM does before prompt tuning (§II-C)."""
        self.vision.freeze()
        self.logit_scale.requires_grad = False
        return self
