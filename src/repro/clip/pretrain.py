"""Contrastive pre-training of MiniCLIP on the synthetic caption corpus.

Stands in for the web-scale pre-training of CLIP/ALIGN: batches of
(caption, rendered image) pairs are pushed together with the symmetric
InfoNCE objective, producing the joint embedding space CrossEM
prompt-tunes.  Pre-training is deterministic given its seed.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from .. import nn
from ..datasets.world import ConceptUniverse
from ..nn.init import rng_from
from ..obs import get_logger, registry, span
from ..text.corpus import build_caption_corpus
from ..text.tokenizer import WordTokenizer
from ..vision.image import render_concept
from .model import MiniCLIP

__all__ = ["PretrainConfig", "pretrain_clip", "clip_contrastive_loss"]

_log = get_logger("repro.clip.pretrain")


@dataclasses.dataclass
class PretrainConfig:
    """Hyper-parameters of the pre-training run."""

    epochs: int = 80
    batch_size: int = 32
    lr: float = 2e-3
    captions_per_concept: int = 8
    noisy_caption_rate: float = 0.1
    seed: int = 0


def clip_contrastive_loss(model: MiniCLIP, text_embeds: nn.Tensor,
                          image_embeds: nn.Tensor) -> nn.Tensor:
    """Symmetric InfoNCE over in-batch positives (CLIP's objective).

    Row *i* of texts matches row *i* of images; all other pairs in the
    batch act as negatives, in both directions.
    """
    logits = model.similarity_logits(text_embeds, image_embeds)
    targets = np.arange(len(text_embeds))
    loss_t = nn.functional.cross_entropy(logits, targets)
    loss_i = nn.functional.cross_entropy(logits.transpose(), targets)
    return (loss_t + loss_i) * 0.5


def pretrain_clip(model: MiniCLIP, universe: ConceptUniverse,
                  tokenizer: WordTokenizer,
                  config: Optional[PretrainConfig] = None,
                  verbose: bool = False) -> List[float]:
    """Pre-train ``model`` in place; returns per-epoch mean losses.

    A small fraction of captions is swapped between concepts
    (``noisy_caption_rate``), reproducing ALIGN-style label noise so the
    learned space is imperfect — leaving headroom for prompt tuning to
    improve on zero-shot, as the paper observes.
    """
    config = config or PretrainConfig()
    rng = rng_from(config.seed)
    corpus = build_caption_corpus(universe, config.captions_per_concept,
                                  seed=config.seed)
    # Render one image per caption pair.
    pairs: List[Tuple[str, np.ndarray]] = []
    for concept_index, caption in corpus:
        pixels = render_concept(universe[concept_index], rng)
        pairs.append((caption, pixels))
    # Noise: shuffle a fraction of captions across pairs.
    n_noisy = int(len(pairs) * config.noisy_caption_rate)
    if n_noisy >= 2:
        idx = rng.choice(len(pairs), size=n_noisy, replace=False)
        shuffled = rng.permutation(idx)
        captions = [pairs[i][0] for i in idx]
        for j, i in enumerate(shuffled):
            pairs[i] = (captions[j], pairs[i][1])

    optimizer = nn.AdamW(model.parameters(), lr=config.lr)
    losses: List[float] = []
    reg = registry()
    with span("pretrain"):
        for epoch in range(config.epochs):
            with span("epoch") as ep:
                order = rng.permutation(len(pairs))
                epoch_losses: List[float] = []
                for start in range(0, len(order), config.batch_size):
                    batch = [pairs[i]
                             for i in order[start:start + config.batch_size]]
                    if len(batch) < 2:
                        continue
                    token_ids = tokenizer.encode_batch(
                        [caption for caption, _ in batch])
                    mask = tokenizer.attention_mask(token_ids)
                    pixels = np.stack([img for _, img in batch])
                    optimizer.zero_grad()
                    text_embeds = model.encode_text(token_ids, mask)
                    image_embeds = model.encode_image(pixels)
                    loss = clip_contrastive_loss(model, text_embeds,
                                                 image_embeds)
                    loss.backward()
                    nn.clip_grad_norm(model.parameters(), 5.0)
                    optimizer.step()
                    # Keep the temperature in CLIP's stable range.
                    model.logit_scale.data = np.clip(model.logit_scale.data,
                                                     0.0, np.log(100.0))
                    epoch_losses.append(loss.item())
            losses.append(float(np.mean(epoch_losses)))
            reg.histogram("pretrain.epoch_loss").observe(losses[-1])
            _log.debug("pretrain epoch done", epoch=epoch + 1,
                       epochs=config.epochs, loss=losses[-1],
                       seconds=ep.elapsed)
            if verbose:
                print(f"[pretrain] epoch {epoch + 1}/{config.epochs} "
                      f"loss {losses[-1]:.4f}")
    return losses
