"""Cross-modal property alignment for PCP.

Algorithm 2 computes the property closeness matrix ``S_c = A x C`` from
BERT features of vertex labels (A) and ResNet patch features (C).  Real
BERT and ResNet do not share a space; in practice this requires a
pre-trained alignment between local text and local visual features.  We
make that component explicit: :class:`PropertyAligner` fits a ridge
regression from frozen patch features onto MiniLM phrase embeddings
using (rendered patch, attribute phrase) pairs sampled from the
pre-training universe — the same supervision web-scale pre-training
provides implicitly.  After fitting, patch features live in the MiniLM
space and ``A x C`` is meaningful.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..datasets.world import ConceptUniverse
from ..nn.init import SeedLike, rng_from
from ..text.minilm import MiniLM
from ..vision.encoder import PatchFeatureExtractor
from ..vision.image import render_concept

__all__ = ["PropertyAligner"]


class PropertyAligner:
    """Maps frozen patch features into the MiniLM text-embedding space."""

    def __init__(self, extractor: PatchFeatureExtractor, minilm: MiniLM,
                 ridge: float = 1e-2) -> None:
        self.extractor = extractor
        self.minilm = minilm
        self.ridge = ridge
        self._weights: np.ndarray | None = None

    def fit(self, universe: ConceptUniverse, views_per_concept: int = 2,
            seed: SeedLike = 0) -> "PropertyAligner":
        """Fit the patch→text map on rendered views of ``universe``."""
        rng = rng_from(seed)
        schema = universe.schema
        features: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        for concept in universe:
            for _ in range(views_per_concept):
                pixels = render_concept(concept, rng, occlusion_prob=0.0)
                patch_feats = self.extractor.features(pixels)
                for part, color in concept.visual_items():
                    phrase = (f"{schema.color_names[color]} "
                              f"{schema.part_names[part]}")
                    features.append(patch_feats[part])
                    targets.append(self.minilm.embed_text(phrase))
        x = np.stack(features)
        y = np.stack(targets)
        gram = x.T @ x + self.ridge * np.eye(x.shape[1], dtype=np.float64)
        self._weights = np.linalg.solve(gram, x.T @ y).astype(np.float32)
        return self

    def _require_fit(self) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("PropertyAligner.fit must be called first")
        return self._weights

    def project_patches(self, patch_features: np.ndarray) -> np.ndarray:
        """Project patch features (..., extractor.dim) into MiniLM space."""
        return patch_features @ self._require_fit()

    def patch_text_space(self, pixels: np.ndarray) -> np.ndarray:
        """Patch features of one image, already in MiniLM space:
        ``(num_patches, minilm.dim)``."""
        return self.project_patches(self.extractor.features(pixels))

    def patch_text_space_batch(self, images, chunk: int = 256,
                               workers=None) -> np.ndarray:
        """Aligned patch features for a whole repository,
        ``(num_images, num_patches, minilm.dim)``.

        Extraction and projection both run batched (optionally on a
        thread pool via ``workers`` / ``REPRO_ENCODE_WORKERS``); each
        image's rows equal the per-image :meth:`patch_text_space` output
        exactly, so PCP's closeness matrix is unchanged.
        """
        if not len(images):
            return np.zeros((0, self.extractor.spec.num_patches,
                             self.minilm.dim), dtype=np.float32)
        from ..vision.pipeline import chunked_encode

        def encode(start: int, stop: int) -> np.ndarray:
            pixels = np.stack([img.pixels for img in images[start:stop]])
            feats = self.extractor.features_pixels_batch(pixels)
            flat = feats.reshape(-1, feats.shape[-1]) @ self._require_fit()
            return flat.reshape(stop - start, feats.shape[1], -1)

        return chunked_encode(encode, len(images), chunk=chunk,
                              workers=workers, name="align_patches")
