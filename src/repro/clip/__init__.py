"""MMLM substrate: the MiniCLIP dual encoder, its pre-training and zoo."""

from .alignment import PropertyAligner
from .model import MiniCLIP, TextEncoder
from .pretrain import PretrainConfig, clip_contrastive_loss, pretrain_clip
from .zoo import PretrainedBundle, clear_memory_cache, get_pretrained_bundle

__all__ = ["MiniCLIP", "TextEncoder", "PretrainConfig", "pretrain_clip",
           "clip_contrastive_loss", "PropertyAligner", "PretrainedBundle",
           "get_pretrained_bundle", "clear_memory_cache"]
