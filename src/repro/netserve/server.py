"""The asyncio TCP front end (``repro serve --listen``).

One process, many connections, one shared :class:`MicroBatcher`:
concurrent queries from *different* clients coalesce into the same
fused scoring calls, which is where networked micro-batching earns its
keep — a single pipe can only batch against itself, a socket batches
across the whole client population.

Threading model: the asyncio event loop owns all socket I/O; the
batcher's worker pool owns all scoring.  Responses cross back via
``loop.call_soon_threadsafe`` onto per-connection write queues, so the
loop never blocks on a GEMM and a worker never touches a socket.

Per-connection discipline:

* at most ``conn_inflight`` match requests outstanding (submitted,
  response not yet written); beyond that the connection gets typed
  ``overloaded`` rejections — a client that pipelines without reading
  responses is shed, not buffered without bound;
* the write queue's depth is therefore bounded by
  ``conn_inflight + 1`` (tracked responses are capped by the
  outstanding limit; untracked ones — info, bad-line, rejections — are
  enqueued by the reader one at a time);
* a request's outstanding slot is released only after its response is
  written *and* drained to the kernel, so the cap reflects true
  end-to-end occupancy, not just scoring.

Graceful drain (SIGTERM/SIGINT): stop accepting, let every reader
finish its current line, answer everything in flight, flush every
write queue, then exit 0.  A second signal is idempotent.  Drain
progress is visible as ``netserve.drain.*`` metrics in the exported
snapshot.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import signal
import time
from typing import Any, Callable, Optional, Set, Tuple

from ..obs import get_logger, registry
from ..serve.loop import bad_line_response
from ..serve.service import MatchService
from .batcher import MicroBatcher, rejection_response
from .protocol import (MAX_LINE_BYTES, LineReader, OversizedLine,
                       decode_line, encode_response, info_payload,
                       stats_payload)

__all__ = ["NetServeConfig", "NetServer"]

_log = get_logger("repro.netserve.server")


@dataclasses.dataclass
class NetServeConfig:
    """Tuning knobs of the TCP front end (see README "Networked
    serving")."""

    #: bind address; port 0 binds an ephemeral port (tests)
    host: str = "127.0.0.1"
    port: int = 0
    #: micro-batch window: a request waits at most this long for
    #: companions before its batch flushes (0 disables coalescing)
    batch_window_ms: float = 2.0
    #: flush immediately once this many requests are pending
    max_batch: int = 16
    #: total requests queued + in flight before the batcher sheds
    max_pending: int = 256
    #: per-connection outstanding-request cap (see module docstring)
    conn_inflight: int = 32
    #: worker threads running fused scoring calls
    batch_workers: int = 2
    #: seconds the drain sequence waits for in-flight work to finish
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be non-negative")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if self.conn_inflight < 1:
            raise ValueError("conn_inflight must be at least 1")
        if self.batch_workers < 1:
            raise ValueError("batch_workers must be at least 1")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")


class NetServer:
    """Serve one :class:`MatchService` to many TCP clients.

    ``run()`` blocks until a drain completes (signal-initiated or via
    :meth:`trigger_drain`) and returns a process exit code: 0 when
    every in-flight request was answered and flushed, 1 when the drain
    timed out with work still pending.
    """

    def __init__(self, service: MatchService,
                 config: Optional[NetServeConfig] = None) -> None:
        self.service = service
        self.config = config if config is not None else NetServeConfig()
        self.batcher: Optional[MicroBatcher] = None
        #: (host, port) actually bound, available once serving
        self.bound: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._drain_event: Optional[asyncio.Event] = None
        self._conn_tasks: Set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------
    def run(self, *, install_signals: bool = True,
            ready: Optional[Callable[[Tuple[str, int]], None]] = None) -> int:
        """Blocking entry point; see class docstring."""
        return asyncio.run(self._main(install_signals, ready))

    def trigger_drain(self) -> None:
        """Thread-safe drain initiation (the programmatic SIGTERM).
        Idempotent, including after the server has already exited."""
        loop, event = self._loop, self._drain_event
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass  # loop already closed: the drain it would ask for is done

    async def _main(self, install_signals: bool,
                    ready: Optional[Callable[[Tuple[str, int]], None]]) -> int:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._drain_event = asyncio.Event()
        if install_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self._on_signal, sig)
        clean = await self._serve(ready)
        return 0 if clean else 1

    def _on_signal(self, sig: int) -> None:
        registry().counter("netserve.drain.signals").inc()
        _log.info("drain signal received", signal=signal.Signals(sig).name)
        self._drain_event.set()

    async def _serve(
            self,
            ready: Optional[Callable[[Tuple[str, int]], None]]) -> bool:
        cfg = self.config
        self.service.warmup()  # fail loud before accepting any client
        self.batcher = MicroBatcher(
            self.service, window_ms=cfg.batch_window_ms,
            max_batch=cfg.max_batch, max_pending=cfg.max_pending,
            workers=cfg.batch_workers)
        reg = registry()
        self._conns_gauge = reg.gauge("netserve.conns")
        self._conns_gauge.set(0)
        self._conns_total = reg.counter("netserve.conns_total")
        self._conn_shed = reg.counter("netserve.conn.overloaded_total")
        server = await asyncio.start_server(
            self._on_connection, cfg.host, cfg.port, limit=MAX_LINE_BYTES)
        sockname = server.sockets[0].getsockname()
        self.bound = (sockname[0], sockname[1])
        _log.info("listening", host=self.bound[0], port=self.bound[1],
                  window_ms=cfg.batch_window_ms, max_batch=cfg.max_batch)
        if ready is not None:
            ready(self.bound)
        await self._drain_event.wait()

        # -- drain sequence -----------------------------------------------
        started = time.monotonic()
        _log.info("draining", conns=len(self._conn_tasks))
        server.close()
        await server.wait_closed()  # no new connections
        # stop windowing immediately: every held request is pure delay
        # now, and connections cannot flush until they are answered
        self.batcher.hurry()
        pending: Set[asyncio.Task] = set()
        if self._conn_tasks:
            # readers observe the drain event, stop reading, wait for
            # their outstanding responses, flush, and close
            _, pending = await asyncio.wait(
                set(self._conn_tasks), timeout=cfg.drain_timeout_s)
            for task in pending:
                task.cancel()
        batch_clean = await asyncio.get_running_loop().run_in_executor(
            None, self.batcher.drain, cfg.drain_timeout_s)
        clean = batch_clean and not pending
        elapsed_ms = (time.monotonic() - started) * 1e3
        reg = registry()
        reg.histogram("netserve.drain.duration_ms").observe(elapsed_ms)
        reg.gauge("netserve.drain.clean").set(1.0 if clean else 0.0)
        _log.info("drain complete", clean=clean,
                  duration_ms=round(elapsed_ms, 3))
        return clean

    # -- per-connection handling -------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._conns_total.inc()
        self._conns_gauge.set(float(len(self._conn_tasks)))
        try:
            await self._connection_loop(reader, writer)
        except Exception as exc:  # a broken conn must never kill serving
            _log.warning("connection failed", error=f"{type(exc).__name__}: "
                                                    f"{exc}")
        finally:
            self._conn_tasks.discard(task)
            self._conns_gauge.set(float(len(self._conn_tasks)))
            with contextlib.suppress(Exception):
                writer.close()

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        cfg = self.config
        loop = asyncio.get_running_loop()
        # Unbounded queue with a bounded occupancy invariant: tracked
        # responses are capped by conn_inflight, untracked ones are
        # enqueued by this (sequential) reader — see module docstring.
        out_queue: asyncio.Queue = asyncio.Queue()
        outstanding = {"n": 0}
        writer_task = asyncio.ensure_future(
            self._writer_loop(writer, out_queue, outstanding))

        def deliver(response: dict) -> None:
            # called from a batcher worker thread
            loop.call_soon_threadsafe(out_queue.put_nowait, (response, True))

        drain_wait = asyncio.ensure_future(self._drain_event.wait())
        line_reader = LineReader(reader)
        try:
            while not self._drain_event.is_set():
                line_task = asyncio.ensure_future(line_reader.readline())
                done, _ = await asyncio.wait(
                    {line_task, drain_wait},
                    return_when=asyncio.FIRST_COMPLETED)
                if line_task not in done:
                    # draining: abandon the read, fall through to flush
                    line_task.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await line_task
                    break
                try:
                    raw = line_task.result()
                except OversizedLine as exc:
                    # the reader discarded the line and resynchronised:
                    # answer a typed bad_request, keep the connection
                    registry().counter("netserve.oversized_line").inc()
                    await out_queue.put((bad_line_response(
                        self.service, exc), False))
                    continue
                except (ConnectionError, OSError):
                    break
                if not raw:
                    break  # EOF: client half-closed, flush and finish
                if not raw.strip():
                    continue
                try:
                    request = decode_line(raw)
                except ValueError as exc:
                    await out_queue.put((bad_line_response(
                        self.service, exc), False))
                    continue
                if isinstance(request, dict) and request.get("op") == "info":
                    await out_queue.put((
                        {"id": request.get("id"), "ok": True,
                         "info": info_payload(
                             self.service, max_batch=cfg.max_batch,
                             window_ms=cfg.batch_window_ms)}, False))
                    continue
                if isinstance(request, dict) and \
                        request.get("op") == "stats":
                    # live scrape: answered inline like info — reading
                    # locked in-memory instruments, never a scoring call,
                    # so it cannot queue behind (or be shed by) matching
                    registry().counter("netserve.stats_total").inc()
                    await out_queue.put((
                        {"id": request.get("id"), "ok": True,
                         "stats": stats_payload(self.service)}, False))
                    continue
                if outstanding["n"] >= cfg.conn_inflight:
                    # pipelining past the cap without reading responses:
                    # typed shed, never unbounded buffering
                    self._conn_shed.inc()
                    request_id = request.get("id") \
                        if isinstance(request, dict) else None
                    await out_queue.put((rejection_response(
                        request_id, "overloaded",
                        f"connection has {outstanding['n']} responses "
                        f"outstanding (cap {cfg.conn_inflight}); "
                        f"read before writing more"), False))
                    continue
                outstanding["n"] += 1
                self.batcher.submit(request, deliver)
        finally:
            drain_wait.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await drain_wait
            # answer everything this connection still has in flight
            # before closing; batcher flushes are window-bounded, so
            # this resolves within ~one window unless scoring is stuck
            give_up = loop.time() + cfg.drain_timeout_s
            while outstanding["n"] > 0 and loop.time() < give_up:
                await asyncio.sleep(0.005)
            await out_queue.put(None)  # writer: flush then stop
            with contextlib.suppress(Exception):
                await writer_task

    async def _writer_loop(self, writer: asyncio.StreamWriter,
                           out_queue: asyncio.Queue,
                           outstanding: dict) -> None:
        broken = False
        while True:
            item = await out_queue.get()
            if item is None:
                break
            response, tracked = item
            if not broken:
                try:
                    writer.write(encode_response(response))
                    await writer.drain()
                except (ConnectionError, OSError):
                    # client went away mid-write: stop writing but keep
                    # consuming so outstanding slots still free up
                    broken = True
                    registry().counter("netserve.conn.broken_total").inc()
            if tracked:
                outstanding["n"] -= 1
        if not broken:
            with contextlib.suppress(Exception):
                await writer.drain()
