"""The dynamic micro-batcher: windowed coalescing of match queries.

Many clients each send single-vertex queries; served one at a time,
every query is a GEMV-shaped scoring call.  The batcher holds each
arriving request for at most one *window* (``batch_window_ms``), fusing
everything that arrives meanwhile into one
:meth:`MatchService.handle_batch` call — N GEMV-shaped requests become
tile-shaped GEMMs — and demultiplexes the positional responses back to
their callers.  Answers are bit-identical to unbatched serving because
``handle_batch`` scores through fixed-shape row tiles (DESIGN.md §13);
the batcher only changes *when* scoring runs, never *what* it computes.

Three latency rules, in priority order:

1. **Full batch beats the window** — the moment ``max_batch`` requests
   are pending the batch flushes, without waiting the window out.
2. **Deadlines beat the window** — a request whose ``budget_ms`` is too
   tight to survive a worst-case window wait (see
   :func:`bypasses_window`) skips coalescing and dispatches alone,
   immediately.  The window is an offer of amortization, never a tax on
   an urgent request.
3. **The window bounds everyone else** — no request waits longer than
   one window for its batch to form.

:class:`BatchWindow` is the pure, clock-free decision core (tested on a
fake clock); :class:`MicroBatcher` adds the real threads: a flusher
that times windows out and a worker pool that runs the fused calls.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Tuple

from ..obs import get_logger, registry

__all__ = ["BatchWindow", "MicroBatcher", "bypasses_window",
           "BYPASS_SLACK"]

_log = get_logger("repro.netserve.batcher")

#: a request only joins a window if its budget covers at least this
#: many windows — waiting the window out must not eat a large fraction
#: of the budget, or the wait itself manufactures deadline failures
BYPASS_SLACK = 2.0


def bypasses_window(budget_ms: Any, window_ms: float,
                    slack: float = BYPASS_SLACK) -> bool:
    """Should a request with this budget skip the batching window?

    True when ``budget_ms`` is a finite positive budget smaller than
    ``slack`` windows: in the worst case a request waits one full
    window before scoring even starts, so joining the window would
    spend ``1/slack`` (or more) of the budget on queueing.  Unbounded
    or malformed budgets never bypass — malformed ones must flow into
    the service to be answered ``bad_request`` like anywhere else.
    """
    if window_ms <= 0:
        return True  # windowless configuration: everything immediate
    if isinstance(budget_ms, bool) or not isinstance(budget_ms, (int, float)):
        return False
    if budget_ms <= 0:
        return False
    return float(budget_ms) < slack * window_ms


class BatchWindow:
    """Pure batching-decision state: what is pending, when to flush.

    Not thread-safe and never reads a clock — callers pass ``now`` in,
    which is what makes the window semantics testable on a fake clock.
    The window opens when the first item arrives into an empty batch
    and closes ``window_s`` later (or immediately on reaching
    ``max_batch``); it does NOT slide on later arrivals, so a steady
    trickle cannot postpone a flush indefinitely.
    """

    def __init__(self, window_s: float, max_batch: int) -> None:
        if window_s < 0:
            raise ValueError("window_s must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.window_s = window_s
        self.max_batch = max_batch
        self._items: List[Any] = []
        self._opened_at: Optional[float] = None

    def __len__(self) -> int:
        return len(self._items)

    def add(self, item: Any, now: float) -> bool:
        """Admit ``item``; returns True when the batch is now full and
        must flush without waiting for the window to expire."""
        if not self._items:
            self._opened_at = now
        self._items.append(item)
        return len(self._items) >= self.max_batch

    def flush_at(self) -> Optional[float]:
        """The absolute time this window expires; None while empty."""
        if self._opened_at is None:
            return None
        return self._opened_at + self.window_s

    def due(self, now: float) -> bool:
        """Has the window expired (or the batch filled) by ``now``?"""
        if not self._items:
            return False
        return len(self._items) >= self.max_batch or \
            now >= self._opened_at + self.window_s

    def drain(self) -> List[Any]:
        """Take every pending item and reset the window."""
        items, self._items = self._items, []
        self._opened_at = None
        return items


class MicroBatcher:
    """Thread-safe batching front door over a ``MatchService``.

    ``submit(request, deliver)`` enqueues one request; ``deliver`` is
    later called exactly once — from a worker thread — with the JSON
    response dict.  Requests are shed with a typed ``overloaded``
    response once ``max_pending`` are queued or in flight, mirroring
    the service's own admission semantics at the batching layer (the
    fused path does not pass through the service's BoundedQueue, so it
    needs its own honest bound).

    ``drain()`` stops intake, flushes whatever is pending, and blocks
    until every accepted request has been answered — the graceful-
    shutdown half of the SIGTERM story.
    """

    def __init__(self, service: Any, *, window_ms: float = 2.0,
                 max_batch: int = 16, max_pending: int = 256,
                 workers: int = 2,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.service = service
        self.window_ms = float(window_ms)
        self.max_batch = int(max_batch)
        self.max_pending = int(max_pending)
        self._clock = clock if clock is not None else time.monotonic
        self._window = BatchWindow(self.window_ms / 1000.0, self.max_batch)
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending = 0
        self._all_done = threading.Condition(self._lock)
        self._stopping = False
        self._hurry = False
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="netserve-batch")
        reg = registry()
        self._batch_size = reg.histogram("netserve.batch.size")
        self._flush_total = reg.counter("netserve.batch.flush_total")
        self._bypass_total = reg.counter("netserve.batch.bypass_total")
        self._shed_total = reg.counter("netserve.shed_total")
        self._pending_gauge = reg.gauge("netserve.pending")
        self._pending_gauge.set(0)
        self._flusher = threading.Thread(target=self._flush_loop,
                                         name="netserve-flusher",
                                         daemon=True)
        self._flusher.start()

    # -- intake ------------------------------------------------------------
    def submit(self, request: Any,
               deliver: Callable[[dict], None]) -> None:
        """Enqueue one request; ``deliver`` receives its response later.

        Never raises for per-request conditions: shed, shutdown and
        malformed requests all flow back through ``deliver`` as typed
        error responses, exactly like the service's own ``submit``.
        """
        request_id = request.get("id") if isinstance(request, dict) else None
        with self._lock:
            if self._stopping:
                self._shed_total.inc()
                deliver(rejection_response(request_id, "unavailable",
                                   "server is draining and no longer "
                                   "admits requests"))
                return
            if self._pending >= self.max_pending:
                self._shed_total.inc()
                deliver(rejection_response(
                    request_id, "overloaded",
                    f"batcher at capacity ({self._pending}/"
                    f"{self.max_pending}); request shed"))
                return
            self._pending += 1
            self._pending_gauge.set(self._pending)
            budget_ms = request.get("budget_ms") \
                if isinstance(request, dict) else None
            if self._hurry or bypasses_window(budget_ms, self.window_ms):
                # Too urgent to wait: dispatch alone, right now.  Still
                # through handle_batch, so the scoring kernel (and thus
                # every answer bit) matches the batched path.
                self._bypass_total.inc()
                self._pool.submit(self._run_batch, [(request, deliver)])
                return
            full = self._window.add((request, deliver), self._clock())
            self._wakeup.notify()
            if full:
                batch = self._window.drain()
                self._pool.submit(self._run_batch, batch)

    # -- flushing ----------------------------------------------------------
    def _flush_loop(self) -> None:
        while True:
            with self._lock:
                if self._stopping and not len(self._window):
                    return
                flush_at = self._window.flush_at()
                if flush_at is None:
                    if self._stopping:
                        return
                    self._wakeup.wait(timeout=0.1)
                    continue
                now = self._clock()
                if not self._stopping and not self._hurry \
                        and not self._window.due(now):
                    self._wakeup.wait(timeout=max(flush_at - now, 0.0))
                    continue
                batch = self._window.drain()
            if batch:
                self._pool.submit(self._run_batch, batch)

    def _run_batch(self,
                   batch: List[Tuple[Any, Callable[[dict], None]]]) -> None:
        requests = [request for request, _ in batch]
        try:
            responses = self.service.handle_batch(requests)
        except Exception as exc:  # handle_batch answers per-request;
            # reaching here is a bug, but callers still get answers
            _log.error("fused batch call failed", error=str(exc),
                       batch=len(batch))
            responses = [rejection_response(
                r.get("id") if isinstance(r, dict) else None,
                "serve_error", f"internal batch failure: {exc}")
                for r in requests]
        self._flush_total.inc()
        self._batch_size.observe(float(len(batch)))
        for (_, deliver), response in zip(batch, responses):
            try:
                deliver(response)
            except Exception as exc:
                _log.warning("response delivery failed", error=str(exc))
        with self._all_done:
            self._pending -= len(batch)
            self._pending_gauge.set(self._pending)
            if self._pending == 0:
                self._all_done.notify_all()

    # -- shutdown ----------------------------------------------------------
    def hurry(self) -> None:
        """Stop windowing, keep serving: flush whatever is pending now
        and dispatch every later submit immediately.  The drain
        sequence calls this first — once shutdown has begun, latency
        amortization is over and every held request is pure delay.
        Non-blocking; intake stays open until :meth:`drain`."""
        with self._lock:
            self._hurry = True
            self._wakeup.notify_all()

    def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Stop intake, flush pending work, wait for in-flight answers.

        Returns True if everything accepted was answered within
        ``timeout`` seconds.  Idempotent.
        """
        with self._lock:
            self._stopping = True
            self._wakeup.notify_all()
        self._flusher.join(timeout=timeout)
        with self._all_done:
            if self._pending:
                self._all_done.wait_for(lambda: self._pending == 0,
                                        timeout=timeout)
            drained = self._pending == 0
        self._pool.shutdown(wait=True)
        return drained


def rejection_response(request_id: Any, code: str, message: str) -> dict:
    """A typed error response minted at the batching layer (the request
    never reached the service, so no service-side trace exists)."""
    registry().counter("serve.requests_total").inc()
    registry().counter("serve.error_total").inc()
    registry().counter(f"serve.error.{code}").inc()
    return {"id": request_id, "ok": False,
            "error": {"type": code, "message": message},
            "elapsed_ms": 0.0}
