"""Networked serving: a TCP front end over :class:`MatchService`.

The stdin/stdout loop (:mod:`repro.serve.loop`) serves one client; this
package serves many, over a socket, with the same JSONL framing and the
same response schema — a client that worked against ``repro serve``
pipes works unchanged against ``repro serve --listen``.  The pieces:

* :mod:`repro.netserve.batcher` — the dynamic micro-batcher: concurrent
  single-vertex queries arriving within a latency-bounded window are
  coalesced into one fused :meth:`MatchService.handle_batch` call
  (N GEMV-shaped requests become tile-shaped GEMMs) without changing
  any answer bit (DESIGN.md §13).
* :mod:`repro.netserve.server` — the asyncio TCP server: per-connection
  JSONL framing, bounded write queues with typed ``overloaded``
  rejections for slow readers, and graceful drain on SIGTERM/SIGINT.
* :mod:`repro.netserve.protocol` — shared framing helpers and the
  ``info`` handshake answering repository metadata (vertex ids, sizes)
  so remote load generators need no local fit.

See README "Networked serving" and DESIGN.md §13 for the window-vs-
deadline semantics and the batched-exactness argument.
"""

from .batcher import BatchWindow, MicroBatcher, bypasses_window
from .protocol import (LineReader, OversizedLine, decode_line,
                       encode_response, info_payload)
from .server import NetServeConfig, NetServer

__all__ = [
    "BatchWindow", "MicroBatcher", "bypasses_window",
    "LineReader", "OversizedLine",
    "decode_line", "encode_response", "info_payload",
    "NetServeConfig", "NetServer",
]
