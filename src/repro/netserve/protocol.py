"""Wire protocol of the TCP front end.

The framing is exactly the stdio loop's: one JSON object per line,
``\\n``-terminated, responses correlated by ``id`` and allowed to
arrive out of submission order.  This module holds the few pieces both
the server and the socket load-generator driver need to agree on, so
neither grows a private copy.

Beyond match requests, the server answers two control operations:

``{"op": "info", "id": ...}`` →
``{"id": ..., "ok": true, "info": {...}}``

carrying repository metadata (entity vertices, image count, batching
limits).  Remote load generators use it to discover queryable vertices
without fitting a local matcher — the socket equivalent of what
``repro load`` reads off the in-process service.

``{"op": "stats", "id": ...}`` →
``{"id": ..., "ok": true, "stats": {...}}``

carrying a point-in-time snapshot of the process's metrics registry and
span aggregates (:func:`stats_payload`) — the live-scrape primitive
behind ``repro obs scrape`` and the router's fleet aggregation
(DESIGN.md §15).  Answered inline off the event loop: a snapshot is a
locked copy of in-memory instruments, never a scoring call, so a scrape
cannot queue behind (or be shed by) match traffic.
"""

from __future__ import annotations

import json
import time
from typing import Any, Optional

__all__ = ["MAX_LINE_BYTES", "LineReader", "OversizedLine", "decode_line",
           "encode_response", "info_payload", "stats_payload"]

#: hard per-line cap; a longer line is answered ``bad_request`` with the
#: offending bytes discarded, so one hostile client cannot balloon
#: server memory — and, since framing resynchronises at the next
#: newline, cannot kill its own connection's other requests either
MAX_LINE_BYTES = 1 << 20


class OversizedLine(ValueError):
    """A request line exceeded the per-line cap.

    The line's bytes were discarded and the stream is positioned at the
    start of the next line: the caller can answer a typed
    ``bad_request`` (id ``null`` — the request was never parsed) and
    keep reading, instead of hanging up on the whole connection.
    """

    def __init__(self, limit: int) -> None:
        super().__init__(f"request line exceeded {limit} bytes; "
                         f"line discarded")
        self.limit = limit


class LineReader:
    """Newline framing over an ``asyncio.StreamReader`` that survives
    oversized lines.

    ``StreamReader.readline`` raises on a too-long line *after*
    clearing its buffer mid-line, which leaves the stream unframed —
    the only safe continuation is to close the connection (the pre-PR-9
    behaviour).  This reader buffers for itself on top of ``read()``:
    when a line exceeds ``max_line_bytes`` it discards through the next
    newline (never holding more than one chunk of the oversized body in
    memory) and raises :class:`OversizedLine` with the stream
    resynchronised, so the connection keeps serving.

    Returned lines include their trailing newline, and EOF yields
    ``b""`` — the same contract as ``StreamReader.readline`` minus the
    connection-killing failure mode.
    """

    def __init__(self, reader: Any, *, max_line_bytes: int = MAX_LINE_BYTES,
                 chunk_bytes: int = 1 << 16) -> None:
        self._reader = reader
        self._max = max_line_bytes
        self._chunk = chunk_bytes
        self._buffer = bytearray()
        self._eof = False

    async def readline(self) -> bytes:
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                if newline > self._max:
                    del self._buffer[:newline + 1]
                    raise OversizedLine(self._max)
                line = bytes(self._buffer[:newline + 1])
                del self._buffer[:newline + 1]
                return line
            if len(self._buffer) > self._max:
                await self._discard_to_newline()
                raise OversizedLine(self._max)
            if self._eof:
                # trailing unterminated line (or empty buffer = clean EOF)
                line = bytes(self._buffer)
                self._buffer.clear()
                return line
            data = await self._reader.read(self._chunk)
            if not data:
                self._eof = True
            else:
                self._buffer.extend(data)

    async def _discard_to_newline(self) -> None:
        """Drop the oversized partial line, keep whatever follows the
        next newline (the start of the next, innocent request)."""
        self._buffer.clear()
        while not self._eof:
            data = await self._reader.read(self._chunk)
            if not data:
                self._eof = True
                return
            newline = data.find(b"\n")
            if newline >= 0:
                self._buffer.extend(data[newline + 1:])
                return


def decode_line(raw: bytes) -> Any:
    """Decode one request line; raises ``ValueError`` on bad UTF-8 or
    bad JSON (both are framing failures, answered identically)."""
    return json.loads(raw.decode("utf-8"))


def encode_response(response: dict) -> bytes:
    """One response, compactly encoded, newline-terminated."""
    return json.dumps(response, separators=(",", ":")).encode("utf-8") \
        + b"\n"


def info_payload(service: Any, *, max_batch: Optional[int] = None,
                 window_ms: Optional[float] = None) -> dict:
    """The ``info`` operation's body, read off a live service.

    ``vertices`` lists every queryable entity vertex so a remote client
    can build a workload; ``images`` bounds meaningful ``top_k``.
    """
    matcher = service.matcher
    info = {
        "vertices": [int(v) for v in matcher.vertex_ids],
        "images": len(matcher.images),
        "top_k_default": service.config.top_k_default,
        "indexed": matcher.search_index is not None,
    }
    if max_batch is not None:
        info["max_batch"] = max_batch
    if window_ms is not None:
        info["batch_window_ms"] = window_ms
    if service.config.shard_count is not None:
        # a shard worker advertises its partition so a router (or a
        # human with netcat) can see which slice of the image space
        # this process answers for
        info["shard"] = {"slot": service.config.shard_slot,
                         "count": service.config.shard_count,
                         "owned_images": service.owned_images}
    return info


def stats_payload(service: Any = None) -> dict:
    """The ``stats`` operation's body: the process's instruments, live.

    One registry snapshot plus the span aggregate — every row read
    under its instrument's lock, so each row is internally consistent
    even while worker threads are mid-observation (rows are not a
    cross-instrument atomic cut; see DESIGN.md §15).  ``captured_unix``
    lets a scraper order snapshots and compute rates.
    """
    from ..obs import registry, span_snapshot  # late: avoid cycle at import

    payload = {
        "metrics": registry().snapshot(),
        "spans": span_snapshot(),
        "captured_unix": time.time(),
    }
    if service is not None and service.config.shard_count is not None:
        payload["shard"] = {"slot": service.config.shard_slot,
                            "count": service.config.shard_count}
    return payload
