"""Wire protocol of the TCP front end.

The framing is exactly the stdio loop's: one JSON object per line,
``\\n``-terminated, responses correlated by ``id`` and allowed to
arrive out of submission order.  This module holds the few pieces both
the server and the socket load-generator driver need to agree on, so
neither grows a private copy.

Beyond match requests, the server answers one control operation:

``{"op": "info", "id": ...}`` →
``{"id": ..., "ok": true, "info": {...}}``

carrying repository metadata (entity vertices, image count, batching
limits).  Remote load generators use it to discover queryable vertices
without fitting a local matcher — the socket equivalent of what
``repro load`` reads off the in-process service.
"""

from __future__ import annotations

import json
from typing import Any, Optional

__all__ = ["MAX_LINE_BYTES", "decode_line", "encode_response",
           "info_payload"]

#: hard per-line cap; a longer line is answered ``bad_request`` and the
#: connection closed, so one hostile client cannot balloon server memory
MAX_LINE_BYTES = 1 << 20


def decode_line(raw: bytes) -> Any:
    """Decode one request line; raises ``ValueError`` on bad UTF-8 or
    bad JSON (both are framing failures, answered identically)."""
    return json.loads(raw.decode("utf-8"))


def encode_response(response: dict) -> bytes:
    """One response, compactly encoded, newline-terminated."""
    return json.dumps(response, separators=(",", ":")).encode("utf-8") \
        + b"\n"


def info_payload(service: Any, *, max_batch: Optional[int] = None,
                 window_ms: Optional[float] = None) -> dict:
    """The ``info`` operation's body, read off a live service.

    ``vertices`` lists every queryable entity vertex so a remote client
    can build a workload; ``images`` bounds meaningful ``top_k``.
    """
    matcher = service.matcher
    info = {
        "vertices": [int(v) for v in matcher.vertex_ids],
        "images": len(matcher.images),
        "top_k_default": service.config.top_k_default,
        "indexed": matcher.search_index is not None,
    }
    if max_batch is not None:
        info["max_batch"] = max_batch
    if window_ms is not None:
        info["batch_window_ms"] = window_ms
    return info
