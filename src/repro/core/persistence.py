"""Persistence of tuned matchers.

A fitted :class:`~repro.core.matcher.CrossEM` owns three kinds of tuned
state: its private CLIP copy, the soft-prompt module (prompt table +
fusion weights) when the soft prompt is in use, and the discrete prompt
strings otherwise.  ``save_matcher`` serializes all of it into one
``.npz`` archive; ``load_matcher`` restores it into a freshly
constructed matcher over the same bundle and dataset, reproducing the
saved matcher's scores exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..clip.zoo import PretrainedBundle
from ..datalake.graph import Graph
from .crossem_plus import CrossEMPlus
from .matcher import CrossEM

__all__ = ["save_matcher", "load_matcher"]


def save_matcher(matcher: CrossEM, path: Union[str, Path]) -> None:
    """Serialize a fitted matcher's tuned state to ``path`` (.npz)."""
    if matcher.graph is None:
        raise RuntimeError("only fitted matchers can be saved")
    config = matcher.config
    meta = {
        "kind": "plus" if isinstance(matcher, CrossEMPlus) else "base",
        "prompt": config.prompt,
        "vertex_ids": list(matcher.vertex_ids),
    }
    state = {f"clip.{k}": v for k, v in matcher.clip.state_dict().items()}
    if matcher.soft_prompts is not None:
        for key, value in matcher.soft_prompts.state_dict().items():
            if key.startswith("clip."):
                continue  # the clip reference is saved above
            state[f"soft.{key}"] = value
    state["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(Path(path), **state)


def load_matcher(path: Union[str, Path], bundle: PretrainedBundle,
                 graph: Graph, images, matcher: CrossEM) -> CrossEM:
    """Restore tuned state into ``matcher`` (a fresh, configured matcher
    over the same bundle/graph/images).

    ``matcher`` is fitted with ``epochs=0`` semantics first (prompt
    structures are rebuilt deterministically), then its weights are
    overwritten from the archive.  Returns the same matcher, ready for
    :meth:`~repro.core.matcher.CrossEM.score`.
    """
    archive = np.load(Path(path))
    meta = json.loads(bytes(archive["meta"].tobytes()).decode())
    saved_epochs = matcher.config.epochs
    matcher.config.epochs = 0
    try:
        matcher.fit(graph, images, meta["vertex_ids"])
    finally:
        matcher.config.epochs = saved_epochs
    if meta["prompt"] != matcher.config.prompt:
        raise ValueError(
            f"archive was saved with prompt={meta['prompt']!r}, matcher is "
            f"configured with {matcher.config.prompt!r}")
    matcher.clip.load_state_dict(
        {k[len("clip."):]: archive[k]
         for k in archive.files if k.startswith("clip.")})
    if matcher.soft_prompts is not None:
        soft_state = matcher.soft_prompts.state_dict()
        for key in list(soft_state):
            archived = f"soft.{key}"
            if archived in archive.files:
                soft_state[key] = archive[archived]
        matcher.soft_prompts.load_state_dict(soft_state)
    return matcher
