"""Persistence of tuned matchers.

A fitted :class:`~repro.core.matcher.CrossEM` owns three kinds of tuned
state: its private CLIP copy, the soft-prompt module (prompt table +
fusion weights) when the soft prompt is in use, and the discrete prompt
strings otherwise.  ``save_matcher`` serializes all of it into one
``.npz`` archive; ``load_matcher`` restores it into a freshly
constructed matcher over the same bundle and dataset, reproducing the
saved matcher's scores exactly.

Both directions are hardened: saves are atomic (a crash mid-write never
leaves a truncated archive at the target path) and loads validate the
archive's metadata *before* paying for the prompt-structure rebuild,
close the archive handle, and fail loudly — with
:class:`~repro.iosafe.CorruptArtifactError` for byte-level damage and
``KeyError`` for archives missing tuned state — rather than silently
keeping freshly-initialized weights.
"""

from __future__ import annotations

import io
import json
import zipfile
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..clip.zoo import PretrainedBundle
from ..datalake.graph import Graph
from ..iosafe import CorruptArtifactError, atomic_write_bytes, retry_io
from .matcher import CrossEM

__all__ = ["save_matcher", "load_matcher"]


def save_matcher(matcher: CrossEM, path: Union[str, Path]) -> Path:
    """Serialize a fitted matcher's tuned state to ``path`` (.npz).

    Returns the path actually written: a missing ``.npz`` suffix is
    appended explicitly (``np.savez`` used to do this silently, so
    ``load_matcher(path)`` could fail to find what ``save_matcher(path)``
    wrote).  The write is atomic — write-to-temp + fsync + rename — so a
    crash never leaves a partial archive at the final path.
    """
    if matcher.graph is None:
        raise RuntimeError("only fitted matchers can be saved")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    config = matcher.config
    meta = {
        "kind": matcher._checkpoint_kind,
        "prompt": config.prompt,
        "vertex_ids": list(matcher.vertex_ids),
    }
    state = {f"clip.{k}": v for k, v in matcher.clip.state_dict().items()}
    if matcher.soft_prompts is not None:
        for key, value in matcher.soft_prompts.state_dict().items():
            if key.startswith("clip."):
                continue  # the clip reference is saved above
            state[f"soft.{key}"] = value
    state["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **state)
    return retry_io(lambda: atomic_write_bytes(path, buffer.getvalue()),
                    name="matcher.save")


def _read_archive(path: Path) -> Dict[str, np.ndarray]:
    """Fully materialize the archive (closing the file handle) and
    convert byte-level damage into one typed error."""
    if not path.exists():
        raise FileNotFoundError(f"no matcher archive at {path}")
    try:
        with np.load(path) as archive:
            return {key: archive[key] for key in archive.files}
    except (zipfile.BadZipFile, ValueError, EOFError, KeyError) as exc:
        raise CorruptArtifactError(
            f"matcher archive {path} is corrupt: {exc}") from exc


def load_matcher(path: Union[str, Path], bundle: PretrainedBundle,
                 graph: Graph, images, matcher: CrossEM) -> CrossEM:
    """Restore tuned state into ``matcher`` (a fresh, configured matcher
    over the same bundle/graph/images).

    The archive's metadata is validated first — prompt kind and matcher
    class must match *before* the expensive ``epochs=0`` fit rebuilds
    the prompt structures.  The matcher's weights are then overwritten
    from the archive; a soft-prompt archive missing any tuned key raises
    ``KeyError`` instead of silently keeping freshly-initialized
    weights.  Returns the same matcher, ready for
    :meth:`~repro.core.matcher.CrossEM.score`.
    """
    arrays = retry_io(lambda: _read_archive(Path(path)), name="matcher.load")
    try:
        meta = json.loads(bytes(arrays["meta"].tobytes()).decode())
    except KeyError:
        raise CorruptArtifactError(
            f"matcher archive {path} has no meta record")
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptArtifactError(
            f"matcher archive {path} has an unreadable meta record") from exc
    if meta["prompt"] != matcher.config.prompt:
        raise ValueError(
            f"archive was saved with prompt={meta['prompt']!r}, matcher is "
            f"configured with {matcher.config.prompt!r}")
    if meta.get("kind", matcher._checkpoint_kind) != matcher._checkpoint_kind:
        raise ValueError(
            f"archive was saved by a {meta['kind']!r} matcher, refusing to "
            f"restore into {matcher._checkpoint_kind!r}")
    saved_epochs = matcher.config.epochs
    matcher.config.epochs = 0
    try:
        matcher.fit(graph, images, meta["vertex_ids"])
    finally:
        matcher.config.epochs = saved_epochs
    matcher.clip.load_state_dict(
        {k[len("clip."):]: v for k, v in arrays.items()
         if k.startswith("clip.")})
    if matcher.soft_prompts is not None:
        soft_state = matcher.soft_prompts.state_dict()
        missing = [key for key in soft_state
                   if not key.startswith("clip.")
                   and f"soft.{key}" not in arrays]
        if missing:
            raise KeyError(
                f"matcher archive {path} lacks tuned soft-prompt state for "
                f"{sorted(missing)}; refusing to serve freshly-initialized "
                f"weights")
        for key in list(soft_state):
            archived = f"soft.{key}"
            if archived in arrays:
                soft_state[key] = arrays[archived]
        matcher.soft_prompts.load_state_dict(soft_state)
    return matcher
