"""Durable training checkpoints: snapshot, verify, resume.

A long prompt-tuning run owns exactly the state needed to continue it
bit-identically after a crash:

* the tuned parameters (soft-prompt table + Eq. 7 fusion weights),
* the optimizer moments (AdamW ``m``/``v`` and the bias-correction
  step counter),
* the training RNG's bit-generator state (batch order),
* the epoch counter, per-epoch losses and current pseudo-labels.

:class:`CheckpointManager` writes one self-verifying file per
checkpointed epoch.  The container format is deliberately simple::

    MAGIC (8 bytes) | header length (8-byte LE) | header JSON | payload

where the payload is an uncompressed ``.npz`` of the state arrays and
the header records the schema version, a SHA-256 digest of the payload
and the caller's metadata (epoch, config fingerprint, RNG state).  A
reader verifies magic, schema and digest *before* deserializing, so
every torn, truncated or bit-flipped file is rejected with a typed
:class:`CheckpointCorruptError` instead of a ``BadZipFile`` surprise —
and :meth:`CheckpointManager.latest` then quarantines the bad file and
falls back to the newest older checkpoint that still verifies.

Writes go through :func:`repro.iosafe.atomic_write_bytes` (temp + fsync
+ rename), so a crash mid-write never shadows a good checkpoint with a
partial one.
"""

from __future__ import annotations

import hashlib
import io
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..iosafe import (CorruptArtifactError, atomic_write_bytes, quarantine,
                      retry_io)
from ..obs import get_logger, registry, span

__all__ = ["CHECKPOINT_MAGIC", "SCHEMA_VERSION", "CheckpointError",
           "CheckpointCorruptError", "CheckpointMismatchError",
           "write_checkpoint", "read_checkpoint", "CheckpointManager"]

_log = get_logger("repro.core.checkpoint")

CHECKPOINT_MAGIC = b"REPROCK1"
SCHEMA_VERSION = 1

_HEADER_PREFIX = len(CHECKPOINT_MAGIC) + 8
#: a header larger than this is certainly garbage length bytes
_MAX_HEADER_BYTES = 16 * 1024 * 1024


class CheckpointError(RuntimeError):
    """Base class for checkpoint failures."""


class CheckpointCorruptError(CheckpointError, CorruptArtifactError):
    """The checkpoint file's bytes fail magic/schema/digest validation."""


class CheckpointMismatchError(CheckpointError):
    """A structurally valid checkpoint does not belong to this run
    (different prompt kind, seed, matcher class or data shape)."""


def write_checkpoint(path: Union[str, Path], arrays: Dict[str, np.ndarray],
                     meta: dict) -> Path:
    """Atomically write ``arrays`` + ``meta`` as a verified checkpoint.

    The payload digest is computed over the serialized archive bytes, so
    any later mutation — truncation, torn write, bit rot — is caught by
    :func:`read_checkpoint` before deserialization.
    """
    buffer = io.BytesIO()
    # Uncompressed: checkpoints are rewritten every K epochs and read on
    # the crash-recovery path; cheap writes beat small files here.
    np.savez(buffer, **arrays)
    payload = buffer.getvalue()
    header = json.dumps({
        "schema": SCHEMA_VERSION,
        "sha256": hashlib.sha256(payload).hexdigest(),
        "meta": meta,
    }, sort_keys=True).encode()
    blob = (CHECKPOINT_MAGIC + len(header).to_bytes(8, "little")
            + header + payload)
    with span("ckpt/write"):
        path = retry_io(lambda: atomic_write_bytes(path, blob),
                        name="ckpt.write")
    registry().counter("ckpt.write").inc()
    _log.debug("checkpoint written", path=str(path), bytes=len(blob))
    return path


def read_checkpoint(path: Union[str, Path]) -> Tuple[Dict[str, np.ndarray], dict]:
    """Read and verify a checkpoint; returns ``(arrays, meta)``.

    Raises :class:`CheckpointCorruptError` (and increments the
    ``ckpt.corrupt`` counter) for any byte-level damage, and
    ``FileNotFoundError`` if the file does not exist.
    """
    path = Path(path)
    with span("ckpt/restore"):
        blob = retry_io(path.read_bytes, name="ckpt.read")
        try:
            arrays, meta = _parse_checkpoint(blob)
        except CheckpointCorruptError:
            registry().counter("ckpt.corrupt").inc()
            raise
    registry().counter("ckpt.restore").inc()
    return arrays, meta


def _parse_checkpoint(blob: bytes) -> Tuple[Dict[str, np.ndarray], dict]:
    if len(blob) < _HEADER_PREFIX:
        raise CheckpointCorruptError("checkpoint truncated before header")
    if blob[: len(CHECKPOINT_MAGIC)] != CHECKPOINT_MAGIC:
        raise CheckpointCorruptError("bad checkpoint magic")
    header_len = int.from_bytes(
        blob[len(CHECKPOINT_MAGIC): _HEADER_PREFIX], "little")
    if header_len <= 0 or header_len > _MAX_HEADER_BYTES or \
            _HEADER_PREFIX + header_len > len(blob):
        raise CheckpointCorruptError("checkpoint header length out of range")
    try:
        header = json.loads(blob[_HEADER_PREFIX: _HEADER_PREFIX + header_len])
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError("checkpoint header is not valid JSON") \
            from exc
    if not isinstance(header, dict) or "sha256" not in header:
        raise CheckpointCorruptError("checkpoint header missing digest")
    if header.get("schema") != SCHEMA_VERSION:
        raise CheckpointCorruptError(
            f"unsupported checkpoint schema {header.get('schema')!r} "
            f"(this build reads schema {SCHEMA_VERSION})")
    payload = blob[_HEADER_PREFIX + header_len:]
    if hashlib.sha256(payload).hexdigest() != header["sha256"]:
        raise CheckpointCorruptError("checkpoint payload digest mismatch")
    try:
        with np.load(io.BytesIO(payload)) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except Exception as exc:  # digest passed but npz still unreadable
        raise CheckpointCorruptError(
            "checkpoint payload failed to deserialize") from exc
    return arrays, header.get("meta", {})


class CheckpointManager:
    """Epoch-indexed checkpoints in one directory, pruned and verified.

    ``every`` controls the cadence (a checkpoint after every K-th
    epoch); ``keep`` bounds how many recent checkpoints survive pruning
    — more than one on purpose, so a checkpoint corrupted *after* a
    successful write still leaves an older recovery point.
    """

    def __init__(self, directory: Union[str, Path], every: int = 1,
                 keep: int = 3) -> None:
        if every < 1:
            raise ValueError("every must be at least 1")
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.directory = Path(directory)
        self.every = every
        self.keep = keep

    def path_for(self, epoch: int) -> Path:
        return self.directory / f"ckpt-{epoch:06d}.ckpt"

    def should_save(self, epoch: int) -> bool:
        """Whether the (0-based) just-completed ``epoch`` is on cadence."""
        return (epoch + 1) % self.every == 0

    def checkpoints(self) -> List[Path]:
        """All checkpoint files, oldest first (lexicographic == epoch
        order thanks to the zero-padded name)."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("ckpt-*.ckpt"))

    def save(self, epoch: int, arrays: Dict[str, np.ndarray],
             meta: dict) -> Path:
        path = write_checkpoint(self.path_for(epoch), arrays, meta)
        self._prune()
        return path

    def _prune(self) -> None:
        for stale in self.checkpoints()[: -self.keep]:
            try:
                stale.unlink()
            except OSError:
                pass  # pruning is best-effort; the next save retries

    def latest(self) -> Optional[Tuple[Dict[str, np.ndarray], dict, Path]]:
        """The newest checkpoint that verifies, or ``None``.

        Corrupt files encountered on the way are quarantined (renamed to
        ``*.corrupt``) so the next scan does not re-read them, and the
        search continues with the next-older candidate — recovery, not
        crash.
        """
        for path in reversed(self.checkpoints()):
            try:
                arrays, meta = read_checkpoint(path)
            except CheckpointCorruptError as exc:
                _log.warning("corrupt checkpoint skipped", path=str(path),
                             error=str(exc))
                quarantine(path)
                continue
            except FileNotFoundError:
                continue  # raced with pruning
            return arrays, meta, path
        return None
