"""Data cleaning with matching probabilities (the paper's future work).

The conclusion of the paper proposes extending prompt tuning "to support
more data management tasks such as data cleaning".  This module
implements that extension for the image side of a data lake: a fitted
matcher's matching-probability distribution (Eq. 4) is used to flag
repository images that are *unmatchable* — corrupted views, images of
entities absent from the graph, or mislabeled provenance.

Two complementary detectors:

* :func:`affinity_outliers` — an image whose best matching probability
  against every vertex prompt is anomalously low matches nothing in the
  lake (corruption / out-of-scope).
* :func:`provenance_conflicts` — an image whose claimed provenance
  (e.g. the directory/record it was ingested with) disagrees with its
  confidently matched vertex is likely mislabeled.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from .matcher import CrossEM

__all__ = ["ImageFlag", "affinity_outliers", "provenance_conflicts",
           "clean_repository"]


@dataclasses.dataclass(frozen=True)
class ImageFlag:
    """One flagged image with the reason and supporting evidence."""

    image_position: int
    reason: str
    score: float
    best_vertex: Optional[int] = None


def _best_affinities(matcher: CrossEM):
    """Per-image (best similarity, best row) over all vertex prompts,
    via the matcher's (frozen) scoring path."""
    scores = matcher.score()
    return scores.max(axis=0), scores.argmax(axis=0)


def affinity_outliers(matcher: CrossEM, z_threshold: float = 2.0) -> List[ImageFlag]:
    """Flag images that match nothing in the lake.

    Combines two standardized signals: the image's *best* vertex
    affinity (low for out-of-scope content) and its matching *margin*
    (best minus median — a genuine entity photo matches one prompt far
    better than the rest, a corrupted one matches everything about
    equally).  Images whose combined z-score falls below
    ``-z_threshold`` are flagged, worst first.
    """
    if z_threshold <= 0:
        raise ValueError("z_threshold must be positive")
    scores = matcher.score()
    best = scores.max(axis=0)
    argbest = scores.argmax(axis=0)
    margin = best - np.median(scores, axis=0)

    def zscore(values: np.ndarray) -> np.ndarray:
        std = values.std()
        return (values - values.mean()) / std if std > 0 else np.zeros_like(values)

    combined = zscore(best) + zscore(margin)
    flags = [
        ImageFlag(int(position), "low-affinity", float(combined[position]),
                  matcher.vertex_ids[int(argbest[position])])
        for position in np.flatnonzero(combined < -z_threshold)]
    return sorted(flags, key=lambda f: f.score)


def provenance_conflicts(matcher: CrossEM,
                         claimed_vertex: Dict[int, int],
                         margin: float = 0.05) -> List[ImageFlag]:
    """Flag images whose confident match contradicts their provenance.

    ``claimed_vertex`` maps image position → the vertex the ingestion
    pipeline claims the image depicts.  An image is flagged when the
    matcher's best vertex differs from the claim *and* beats the claimed
    vertex's score by at least ``margin``.
    """
    scores = matcher.score()
    row_of = {v: i for i, v in enumerate(matcher.vertex_ids)}
    flags: List[ImageFlag] = []
    for position, claimed in claimed_vertex.items():
        if claimed not in row_of:
            raise KeyError(f"claimed vertex {claimed} is not matched by "
                           "this matcher")
        column = scores[:, position]
        best_row = int(column.argmax())
        claimed_score = float(column[row_of[claimed]])
        best_score = float(column[best_row])
        best_vertex = matcher.vertex_ids[best_row]
        if best_vertex != claimed and best_score - claimed_score >= margin:
            flags.append(ImageFlag(position, "provenance-conflict",
                                   best_score - claimed_score, best_vertex))
    return sorted(flags, key=lambda f: -f.score)


def clean_repository(matcher: CrossEM,
                     claimed_vertex: Optional[Dict[int, int]] = None,
                     z_threshold: float = 2.0,
                     margin: float = 0.05) -> List[ImageFlag]:
    """Run both detectors; returns deduplicated flags, worst first."""
    flags = list(affinity_outliers(matcher, z_threshold))
    if claimed_vertex:
        seen = {f.image_position for f in flags}
        flags.extend(f for f in provenance_conflicts(matcher, claimed_vertex,
                                                     margin)
                     if f.image_position not in seen)
    return flags
