"""CrossEM+ — the improved matching framework (§IV).

CrossEM plus three optimizations, each individually switchable for the
Table IV ablation:

* **MBG** — PCP mini-batch generation (Alg. 2) replaces the full
  |V| x |I| cross product with proximity-clustered partitions, cutting
  both trained pairs (time) and live activations (memory).
* **NS** — property-based negative sampling (Alg. 3) pads partitions
  with hard negatives.
* **OPC** — the orthogonal prompt constraint (Eq. 9), combined with the
  contrastive loss by Eq. 10, applies when the soft prompt is in use.

With MBG disabled the framework falls back to *random* partitions of the
same granularity (the paper's "w/o MBG" variant), so the ablation
isolates the clustering itself rather than the batching machinery.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from .. import nn
from ..clip.zoo import PretrainedBundle
from ..nn.init import rng_from
from ..obs import get_logger, registry, span
from .losses import batch_contrastive_loss, combined_loss, orthogonal_constraint
from .matcher import CrossEM, CrossEMConfig
from .minibatch import (MiniBatchPlan, Partition, PCPConfig,
                        generate_minibatches)
from .negative import NegativeSamplingConfig, augment_plan

__all__ = ["CrossEMPlusConfig", "CrossEMPlus"]

_log = get_logger("repro.core.crossem_plus")


@dataclasses.dataclass
class CrossEMPlusConfig(CrossEMConfig):
    """CrossEM config extended with the §IV optimizations.

    Defaults follow the paper: soft prompt, all three optimizations on,
    loss weight beta = 0.8.
    """

    prompt: str = "soft"
    use_mbg: bool = True
    use_ns: bool = True
    use_opc: bool = True
    beta: float = 0.8
    #: weight of PCP proximity when mining pseudo-labels (0 disables)
    proximity_label_weight: float = 0.3
    pcp: PCPConfig = dataclasses.field(default_factory=PCPConfig)
    negative: NegativeSamplingConfig = dataclasses.field(
        default_factory=NegativeSamplingConfig)


class CrossEMPlus(CrossEM):
    """CrossEM with mini-batch generation, negative sampling and the
    orthogonal prompt constraint."""

    # The partition plan is rebuilt deterministically from the seed in
    # _before_training, so checkpoints carry no plan state — but a plus
    # checkpoint must never restore into a base matcher (and vice
    # versa): their epoch batch streams differ for the same RNG state.
    _checkpoint_kind = "plus"

    def __init__(self, bundle: PretrainedBundle,
                 config: Optional[CrossEMPlusConfig] = None) -> None:
        super().__init__(bundle, config or CrossEMPlusConfig())
        self.plan: Optional[MiniBatchPlan] = None

    # -- partition construction ------------------------------------------------
    def _random_plan(self, rng: np.random.Generator) -> MiniBatchPlan:
        """The "w/o MBG" fallback: partitions with PCP's granularity but
        random membership.  Proximity is still computed when NS is on
        (NS needs it); otherwise a zero matrix placeholder is used."""
        config: CrossEMPlusConfig = self.config
        if config.use_ns:
            plan = generate_minibatches(self.graph, self.vertex_ids, self.images,
                                        self.bundle.minilm, self.bundle.aligner,
                                        config.pcp)
            proximity = plan.proximity
        else:
            proximity = np.zeros((len(self.vertex_ids), len(self.images)),
                                 dtype=np.float32)
        vertex_order = rng.permutation(len(self.vertex_ids))
        image_order = rng.permutation(len(self.images))
        subsets = np.array_split(vertex_order,
                                 min(config.pcp.num_vertex_subsets,
                                     len(self.vertex_ids)))
        # Match PCP's pruning+clustering granularity: each vertex subset
        # sees the same *number* of image groups, drawn at random.
        kept_fraction = 1.0 - config.pcp.prune_quantile
        partitions: List[Partition] = []
        for subset in subsets:
            if not len(subset):
                continue
            vertices = [self.vertex_ids[i] for i in subset]
            n_kept = max(2, int(len(self.images) * kept_fraction))
            kept = rng.choice(image_order, size=n_kept, replace=False)
            clusters = np.array_split(rng.permutation(kept),
                                      config.pcp.num_image_clusters)
            for cluster in clusters:
                if len(cluster) >= 2:
                    partitions.append(Partition(list(vertices),
                                                [int(i) for i in cluster]))
        rng.shuffle(partitions)
        return MiniBatchPlan(partitions, proximity, list(self.vertex_ids))

    def _build_plan(self, rng: np.random.Generator) -> MiniBatchPlan:
        config: CrossEMPlusConfig = self.config
        if config.use_mbg:
            plan = generate_minibatches(self.graph, self.vertex_ids, self.images,
                                        self.bundle.minilm, self.bundle.aligner,
                                        config.pcp)
        else:
            plan = self._random_plan(rng)
        if config.use_ns:
            plan = augment_plan(plan, config.negative)
        return plan

    # -- training hooks ------------------------------------------------------
    def _ensure_plan(self) -> MiniBatchPlan:
        if self.plan is None:
            self.plan = self._build_plan(rng_from(self.config.seed + 1))
        return self.plan

    def _before_training(self) -> None:
        """PCP mini-batch generation is data preprocessing (§IV-A): run
        it before the timed epochs, invalidating any plan from a
        previous fit."""
        self.plan = None
        with span("fit/plan"):
            plan = self._ensure_plan()
        full_pairs = len(self.vertex_ids) * len(self.images)
        reg = registry()
        reg.gauge("plan.partitions").set(len(plan.partitions))
        reg.gauge("plan.pairs").set(plan.total_pairs)
        reg.gauge("plan.pair_coverage").set(
            plan.total_pairs / full_pairs if full_pairs else 0.0)
        _log.info("mini-batch plan built", partitions=len(plan.partitions),
                  pairs=plan.total_pairs, full_pairs=full_pairs)

    def _refresh_pseudo_labels(self) -> None:
        self._ensure_plan()  # labeling mixes in the plan's proximity
        super()._refresh_pseudo_labels()

    def _iter_epoch(self, rng: np.random.Generator):
        """Batches come from the (cached) partition plan: each partition
        is tiled into N1 x N2 chunks, covering only partition-local pairs."""
        self._ensure_plan()
        config: CrossEMPlusConfig = self.config
        batches: List[Tuple[List[int], List[int]]] = []
        for partition in self.plan.partitions:
            vertices = list(partition.vertex_ids)
            images = list(partition.image_indices)
            rng.shuffle(vertices)
            rng.shuffle(images)
            for vs in range(0, len(vertices), config.vertices_per_batch):
                vertex_chunk = vertices[vs:vs + config.vertices_per_batch]
                if len(vertex_chunk) < 2:
                    continue
                for is_ in range(0, len(images), config.images_per_batch):
                    image_chunk = images[is_:is_ + config.images_per_batch]
                    if len(image_chunk) >= 2:
                        batches.append((vertex_chunk, image_chunk))
        rng.shuffle(batches)
        return batches

    def _label_scores(self) -> np.ndarray:
        """Partition-local labeling evidence with a PCP proximity prior.

        Two differences from CrossEM's full cross product:

        * scores are computed only for (vertex, image) pairs that share
          a partition — pruned candidates never materialize, which is
          where CrossEM+'s memory saving comes from ("unrelated entities
          can be pruned during training", §II-C);
        * Eq. 8 property proximity (an independent evidence source) is
          z-mixed into the scores, sharpening the mutual-top-1
          pseudo-labels — the accuracy edge of CrossEM+.
        """
        plan = self._ensure_plan()
        config: CrossEMPlusConfig = self.config
        with nn.no_grad():
            text = self._encode_all_vertices()
        scores = np.full((len(self.vertex_ids), len(self.images)), -np.inf,
                         dtype=np.float32)
        row_of = {v: i for i, v in enumerate(self.vertex_ids)}
        for partition in plan.partitions:
            rows = np.asarray([row_of[v] for v in partition.vertex_ids])
            columns = np.asarray(partition.image_indices)
            with nn.no_grad():
                block = (nn.Tensor(text[rows])
                         @ self._encode_images(columns).transpose()).numpy()
            scores[np.ix_(rows, columns)] = np.maximum(
                scores[np.ix_(rows, columns)], block)
        covered = np.isfinite(scores)
        if config.proximity_label_weight > 0:
            proximity = plan.proximity

            def zscore(matrix: np.ndarray, mask: np.ndarray) -> np.ndarray:
                values = matrix[mask]
                std = values.std()
                out = (matrix - values.mean()) / (std if std > 0 else 1.0)
                return out

            mixed = (zscore(np.where(covered, scores, 0.0), covered)
                     + config.proximity_label_weight
                     * zscore(proximity, np.ones_like(covered)))
            scores = np.where(covered, mixed, -np.inf)
        return scores

    def _batch_loss(self, text_embeds: nn.Tensor, image_embeds: nn.Tensor,
                    vertex_chunk: List[int],
                    positives: np.ndarray) -> Optional[nn.Tensor]:
        config: CrossEMPlusConfig = self.config
        contrastive = batch_contrastive_loss(text_embeds, image_embeds,
                                             config.temperature, positives)
        if contrastive is None:
            return None
        if not (config.use_opc and self.soft_prompts is not None):
            return contrastive
        prompts = self.soft_prompts.prompt_matrix(vertex_chunk)
        return combined_loss(contrastive, orthogonal_constraint(prompts),
                             config.beta)

    @property
    def trained_pairs(self) -> int:
        """Candidate pairs actually visited per epoch (vs |V| x |I|)."""
        if self.plan is None:
            return 0
        return self.plan.total_pairs
