"""Evaluation metrics: Hits@k, MRR and efficiency reporting.

The paper evaluates accuracy with Hits@{1,3,5} and Mean Reciprocal
Rank, and efficiency with per-epoch training time (seconds) and peak
GPU memory (GB).  Rankings here are rows of a similarity matrix —
higher is better — and a vertex may have several gold images (the paper
does not assume one-to-one matching), so the rank of a vertex is the
rank of its *best-ranked* gold image.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

import numpy as np

__all__ = ["RankingResult", "evaluate_ranking", "hits_at_k",
           "mean_reciprocal_rank", "EfficiencyReport", "MatchingSetResult",
           "matching_set_metrics"]


def _first_relevant_ranks(scores: np.ndarray,
                          gold: Sequence[Sequence[int]]) -> np.ndarray:
    """Rank (1-based) of the best-ranked gold column per row."""
    if len(scores) != len(gold):
        raise ValueError("scores and gold must align row-wise")
    ranks = np.zeros(len(scores), dtype=np.int64)
    for i, (row, positives) in enumerate(zip(scores, gold)):
        if not len(positives):
            raise ValueError(f"row {i} has no gold matches")
        order = np.argsort(-row, kind="stable")
        position = np.isin(order, np.asarray(positives)).argmax()
        ranks[i] = int(position) + 1
    return ranks


def hits_at_k(scores: np.ndarray, gold: Sequence[Sequence[int]], k: int) -> float:
    """Fraction of rows whose best gold column ranks within top ``k``
    (in percent, as the paper reports)."""
    ranks = _first_relevant_ranks(np.asarray(scores), gold)
    return float((ranks <= k).mean() * 100.0)


def mean_reciprocal_rank(scores: np.ndarray,
                         gold: Sequence[Sequence[int]]) -> float:
    """MRR over rows (in [0, 1])."""
    ranks = _first_relevant_ranks(np.asarray(scores), gold)
    return float((1.0 / ranks).mean())


@dataclasses.dataclass(frozen=True)
class RankingResult:
    """Bundle of the paper's accuracy metrics for one method/dataset."""

    hits1: float
    hits3: float
    hits5: float
    mrr: float

    def as_dict(self) -> Dict[str, float]:
        return {"H@1": self.hits1, "H@3": self.hits3, "H@5": self.hits5,
                "MRR": self.mrr}

    def __str__(self) -> str:
        return (f"H@1={self.hits1:5.2f}  H@3={self.hits3:5.2f}  "
                f"H@5={self.hits5:5.2f}  MRR={self.mrr:.3f}")


def evaluate_ranking(scores: np.ndarray,
                     gold: Sequence[Sequence[int]]) -> RankingResult:
    """Compute H@1/3/5 and MRR in one pass."""
    scores = np.asarray(scores)
    ranks = _first_relevant_ranks(scores, gold)
    return RankingResult(
        hits1=float((ranks <= 1).mean() * 100.0),
        hits3=float((ranks <= 3).mean() * 100.0),
        hits5=float((ranks <= 5).mean() * 100.0),
        mrr=float((1.0 / ranks).mean()),
    )


@dataclasses.dataclass(frozen=True)
class MatchingSetResult:
    """Set-level quality of a matching set S against the gold pairs —
    the precision/recall view standard in the EM literature, which
    complements the ranking metrics the paper reports."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    def __str__(self) -> str:
        return (f"P={self.precision:.3f}  R={self.recall:.3f}  "
                f"F1={self.f1:.3f}")


def matching_set_metrics(predicted, gold) -> MatchingSetResult:
    """Precision/recall of a predicted pair set against the gold set.

    Both arguments are iterables of hashable pairs.  An empty predicted
    set has precision 1 by convention (no wrong assertions were made).
    """
    predicted = set(predicted)
    gold = set(gold)
    if not gold:
        raise ValueError("gold matching set must not be empty")
    true_positives = len(predicted & gold)
    precision = true_positives / len(predicted) if predicted else 1.0
    recall = true_positives / len(gold)
    return MatchingSetResult(precision=precision, recall=recall)


@dataclasses.dataclass
class EfficiencyReport:
    """Training efficiency record (Table III / Fig. 8 quantities)."""

    seconds_per_epoch: float
    peak_memory_bytes: int

    @property
    def peak_memory_gb(self) -> float:
        return self.peak_memory_bytes / (1024.0**3)

    @property
    def peak_memory_mb(self) -> float:
        return self.peak_memory_bytes / (1024.0**2)

    def __str__(self) -> str:
        return (f"T={self.seconds_per_epoch:.2f}s/epoch  "
                f"Mem={self.peak_memory_mb:.1f}MB")
