"""CrossEM — the prompt-tuning matching framework (Algorithm 1).

Given the unified graph G and image repository I, CrossEM prompt-tunes
the pre-trained MiniCLIP text tower (the image tower and temperature
stay frozen, §II-C) with the batch contrastive objective of Eqs. 2-3,
using one of three prompt generators (§III).  Training is unsupervised:
mini-batches tile the full |V| x |I| candidate cross product and
positives are self-labeled from current similarities — the quadratic
cost that motivates CrossEM+ (§IV).
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
import warnings
from pathlib import Path
from typing import (Callable, Dict, Iterator, List, Optional, Sequence, Set,
                    Tuple, Union)

import numpy as np

from .. import nn
from ..clip.zoo import PretrainedBundle
from ..datalake.aggregate import GNNAggregator, GraphSageAggregator
from ..datalake.graph import Graph
from ..nn.init import rng_from
from ..obs import get_logger, registry, span
from ..obs.trace import add_trace_event, trace_span
from ..vision.image import SyntheticImage
from ..vision.pipeline import chunked_encode
from .checkpoint import (CheckpointManager, CheckpointMismatchError,
                         read_checkpoint)
from .losses import batch_contrastive_loss
from .metrics import EfficiencyReport, RankingResult, evaluate_ranking
from .prompts import HardPromptGenerator, SoftPromptModule, baseline_prompt

__all__ = ["CrossEMConfig", "CrossEM"]

_log = get_logger("repro.core.matcher")


@dataclasses.dataclass
class CrossEMConfig:
    """Hyper-parameters of Algorithm 1.

    ``prompt`` selects the generator: ``"baseline"`` (naive §II-B
    template), ``"hard"`` (f_pro^h) or ``"soft"`` (f_pro^s).
    ``vertices_per_batch`` x ``images_per_batch`` is the paper's batch
    size N = N1 x N2.
    """

    prompt: str = "hard"
    d: int = 1
    epochs: int = 5
    vertices_per_batch: int = 8
    images_per_batch: int = 16
    lr: float = 5e-4
    temperature: float = 0.07
    alpha: float = 0.5
    aggregator: str = "gnn"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.prompt not in ("baseline", "hard", "soft"):
            raise ValueError(f"unknown prompt kind {self.prompt!r}")
        if self.aggregator not in ("gnn", "sage"):
            raise ValueError(f"unknown aggregator {self.aggregator!r}")

    def make_aggregator(self):
        if self.aggregator == "sage":
            return GraphSageAggregator(seed=self.seed)
        return GNNAggregator()


class CrossEM:
    """The CrossEM matcher.

    Typical use::

        matcher = CrossEM(bundle, CrossEMConfig(prompt="soft"))
        matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices)
        result = matcher.evaluate(dataset, split.test)

    After :meth:`fit`, :attr:`efficiency` holds per-epoch time and peak
    memory (the Table III quantities).
    """

    #: discriminator recorded in checkpoints/archives so state saved by
    #: one matcher class is never silently restored into another
    _checkpoint_kind = "base"

    def __init__(self, bundle: PretrainedBundle,
                 config: Optional[CrossEMConfig] = None) -> None:
        self.bundle = bundle
        self.config = config or CrossEMConfig()
        # Tune a private copy so the zoo's pre-trained weights survive.
        self.clip = bundle.clip.clone()
        self.tokenizer = bundle.tokenizer
        self.graph: Optional[Graph] = None
        self.images: List[SyntheticImage] = []
        self.vertex_ids: List[int] = []
        self.soft_prompts: Optional[SoftPromptModule] = None
        self._hard_prompts: Dict[int, str] = {}
        self._prompt_token_ids: Optional[np.ndarray] = None
        self._prompt_mask: Optional[np.ndarray] = None
        self._vertex_pos: Dict[int, int] = {}
        self._text_embeds: Optional[np.ndarray] = None
        self._image_embeds: Optional[np.ndarray] = None
        self._pseudo_labels: Dict[int, int] = {}
        self._search_index = None
        self.efficiency: Optional[EfficiencyReport] = None
        self.epoch_losses: List[float] = []
        # Per-thread stage hook (see encode_hook): thread-local so
        # concurrent serve workers sharing one matcher cannot see each
        # other's deadlines.
        self._hook_local = threading.local()

    # -- stage hooks --------------------------------------------------------
    @contextlib.contextmanager
    def encode_hook(self, hook: Callable[[str], None]) -> Iterator[None]:
        """Install a per-thread hook called at encode/score stage
        boundaries with the stage name.

        The serving layer uses this for deadline propagation: the hook
        is ``Deadline.check``, so a request's budget is re-examined
        between stages (and between per-chunk encodes) instead of only
        when the whole call finishes.  Any exception the hook raises
        aborts the stage and propagates to the caller.  The hook is
        thread-local and restored on exit, so nested/concurrent use is
        safe.
        """
        previous = getattr(self._hook_local, "hook", None)
        self._hook_local.hook = hook
        try:
            yield
        finally:
            self._hook_local.hook = previous

    def _stage(self, name: str) -> None:
        # The event lands before the hook runs, so when the hook is a
        # deadline check that raises, the trace shows the boundary that
        # caught it in causal order.
        add_trace_event("stage", stage=name)
        hook = getattr(self._hook_local, "hook", None)
        if hook is not None:
            hook(name)

    # -- prompt handling ----------------------------------------------------
    def _prepare_prompts(self) -> None:
        """Build the prompt generator and, for the discrete kinds,
        tokenize every vertex's prompt once.

        Hard and baseline prompts are static strings, so re-running
        ``encode_batch`` per training batch only repeats work — the
        padded id matrix and mask are cached here, and (because the
        prompts also have no trainable parameters) the full vertex
        embedding matrix is cached lazily by :meth:`encode_vertices`.
        Both caches are invalidated on every :meth:`fit`.
        """
        config = self.config
        self._text_embeds = None
        self._prompt_token_ids = None
        self._prompt_mask = None
        self._vertex_pos = {v: i for i, v in enumerate(self.vertex_ids)}
        if config.prompt == "soft":
            self.soft_prompts = SoftPromptModule(
                self.graph, self.vertex_ids, self.clip, self.tokenizer,
                self.bundle.minilm, alpha=config.alpha, d=config.d,
                aggregator=config.make_aggregator(), rng=config.seed)
            return
        if config.prompt == "hard":
            generator = HardPromptGenerator(self.graph, d=config.d)
            self._hard_prompts = {v: generator.generate(v)
                                  for v in self.vertex_ids}
        else:
            self._hard_prompts = {v: baseline_prompt(self.graph.label(v))
                                  for v in self.vertex_ids}
        with span("prompts/tokenize"):
            texts = [self._hard_prompts[v] for v in self.vertex_ids]
            self._prompt_token_ids = self.tokenizer.encode_batch(texts)
            self._prompt_mask = self.tokenizer.attention_mask(
                self._prompt_token_ids)

    def _cached_text_matrix(self) -> np.ndarray:
        """The full ``(|V|, embed_dim)`` discrete-prompt embedding matrix.

        Valid because hard/baseline prompts carry no trainable
        parameters: the text tower never changes between fit and
        inference, so one frozen forward pass per fit is exact (see
        DESIGN.md).  Built on first use from the cached token matrix,
        then sliced by every caller.
        """
        reg = registry()
        if self._text_embeds is None:
            reg.counter("matcher.prompt_cache.build").inc()
            add_trace_event("cache", cache="prompt", hit=False)
            with span("encode/text_cache"), nn.no_grad():
                self._text_embeds = chunked_encode(
                    lambda s, e: self.clip.encode_text(
                        self._prompt_token_ids[s:e],
                        self._prompt_mask[s:e]).numpy(),
                    len(self.vertex_ids), chunk=64, name="encode_text")
        else:
            reg.counter("matcher.prompt_cache.hit").inc()
            add_trace_event("cache", cache="prompt", hit=True)
        return self._text_embeds

    def encode_vertices(self, vertex_ids: Sequence[int]) -> nn.Tensor:
        """Prompted text embeddings for ``vertex_ids`` (grad-enabled for
        the soft prompt; served from the frozen-prompt cache otherwise)."""
        self._stage("encode_text")
        if self.config.prompt == "soft":
            return self.soft_prompts(vertex_ids)
        if self._prompt_token_ids is not None:
            rows = np.asarray([self._vertex_pos[v] for v in vertex_ids])
            return nn.Tensor(self._cached_text_matrix()[rows])
        return self.encode_vertices_reference(vertex_ids)

    def encode_vertices_reference(self, vertex_ids: Sequence[int]) -> nn.Tensor:
        """The uncached discrete-prompt path: re-tokenize and re-encode
        every call (retained as the golden reference for the cache)."""
        texts = [self._hard_prompts[v] for v in vertex_ids]
        token_ids = self.tokenizer.encode_batch(texts)
        mask = self.tokenizer.attention_mask(token_ids)
        return self.clip.encode_text(token_ids, mask)

    def _encode_images(self, indices: Sequence[int]) -> nn.Tensor:
        """Frozen image-tower embeddings for a batch of image indices.

        The tower is frozen (§II-C), so embeddings are computed once per
        fit and sliced afterwards; the first call fills the cache via
        the shared chunked (optionally thread-pooled) encode path.
        """
        self._stage("encode_image")
        if self._image_embeds is None:
            with span("encode/image_cache"), nn.no_grad():
                self._image_embeds = chunked_encode(
                    lambda s, e: self.clip.encode_image(
                        np.stack([img.pixels
                                  for img in self.images[s:e]])).numpy(),
                    len(self.images), chunk=64, name="encode_image")
        return nn.Tensor(self._image_embeds[np.asarray(indices)])

    # -- training (Algorithm 1) ------------------------------------------------
    def _trainable_parameters(self) -> List[nn.Parameter]:
        """What prompt *tuning* tunes (Alg. 1 line 10 back-propagates to
        the prompting function Pro, not the encoders): the soft prompt
        table and the Eq. 7 fusion weights.  Hard and baseline prompts
        are discrete and have no learnable parameters — matching the
        paper, where CrossEM w/ f_pro^h reports no training time (the
        "-" entries of Table IV)."""
        if self.soft_prompts is None:
            return []
        clip_params = set(map(id, self.clip.parameters()))
        return [p for p in self.soft_prompts.parameters()
                if id(p) not in clip_params]

    def _epoch_batches(self, rng: np.random.Generator) -> List[Tuple[List[int], List[int]]]:
        """Randomly split the full candidate cross product into
        (vertex chunk, image chunk) mini-batches (Alg. 1 line 3)."""
        config = self.config
        vertex_order = rng.permutation(len(self.vertex_ids))
        image_order = rng.permutation(len(self.images))
        vertex_chunks = [
            [self.vertex_ids[i] for i in vertex_order[s:s + config.vertices_per_batch]]
            for s in range(0, len(vertex_order), config.vertices_per_batch)]
        image_chunks = [
            list(image_order[s:s + config.images_per_batch])
            for s in range(0, len(image_order), config.images_per_batch)]
        batches = [(vc, ic) for vc in vertex_chunks for ic in image_chunks
                   if len(vc) >= 2 and len(ic) >= 2]
        rng.shuffle(batches)
        return batches

    def _train_batch(self, optimizer: nn.AdamW, vertex_chunk: List[int],
                     image_chunk: List[int]) -> float:
        # Algorithm 1 lines 5-9: every batch runs prompt generation and
        # both encoders.  The positive set X_p keeps only vertices whose
        # current pseudo-positive image sits in this batch; the rest of
        # the batch acts as negatives.  A batch with empty X_p still
        # pays its forward cost (this is exactly the inefficiency on
        # large data that motivates CrossEM+'s mini-batch generation).
        optimizer.zero_grad()
        text_embeds = self.encode_vertices(vertex_chunk)
        image_embeds = self._encode_images(image_chunk)
        keep_rows: List[int] = []
        positives: List[int] = []
        column_of = {image: column for column, image in enumerate(image_chunk)}
        for row, vertex in enumerate(vertex_chunk):
            pseudo = self._pseudo_labels.get(vertex)
            if pseudo is not None and pseudo in column_of:
                keep_rows.append(row)
                positives.append(column_of[pseudo])
        if not keep_rows:
            return float("nan")
        loss = self._batch_loss(text_embeds[np.asarray(keep_rows)],
                                image_embeds,
                                [vertex_chunk[r] for r in keep_rows],
                                np.asarray(positives))
        if loss is None:
            return float("nan")
        loss.backward()
        nn.clip_grad_norm(optimizer.params, 5.0)
        optimizer.step()
        return loss.item()

    def _batch_loss(self, text_embeds: nn.Tensor, image_embeds: nn.Tensor,
                    vertex_chunk: List[int],
                    positives: np.ndarray) -> Optional[nn.Tensor]:
        """The per-batch objective; CrossEM+ overrides this to add the
        orthogonal prompt constraint."""
        return batch_contrastive_loss(text_embeds, image_embeds,
                                      self.config.temperature, positives)

    # -- unsupervised pseudo-labeling --------------------------------------
    def _label_scores(self) -> np.ndarray:
        """The score matrix pseudo-labels are mined from.

        CrossEM scores the *full* |V| x |I| candidate cross product —
        the quadratic object whose cost §III's discussion calls out.
        (CrossEM+ overrides this with partition-local scoring and a PCP
        proximity prior.)  The matmul runs through tracked tensors so
        the memory meter sees the materialized candidate matrix.
        """
        with nn.no_grad():
            text = self._encode_all_vertices()
            scores = nn.Tensor(text) @ self._encode_images(
                range(len(self.images))).transpose()
        return scores.numpy()

    def _refresh_pseudo_labels(self) -> None:
        """Self-label X_p as the *globally mutual* top-similarity pairs:
        vertex v's best image I such that v is also I's best vertex.
        Mutuality keeps precision high, which unsupervised contrastive
        tuning needs to avoid reinforcing one-directional errors."""
        scores = self._label_scores()
        best_image = scores.argmax(axis=1)
        best_vertex = scores.argmax(axis=0)
        self._pseudo_labels = {
            vertex: int(best_image[row])
            for row, vertex in enumerate(self.vertex_ids)
            if best_vertex[best_image[row]] == row}

    def _encode_all_vertices(self, batch: int = 32) -> np.ndarray:
        if self.config.prompt != "soft" and self._prompt_token_ids is not None:
            return self._cached_text_matrix()
        chunks = [self.encode_vertices(self.vertex_ids[s:s + batch]).numpy()
                  for s in range(0, len(self.vertex_ids), batch)]
        return np.concatenate(chunks, axis=0)

    def fit(self, graph: Graph, images: Sequence[SyntheticImage],
            vertex_ids: Optional[Sequence[int]] = None, *,
            checkpoint_dir: Optional[Union[str, Path]] = None,
            checkpoint_every: int = 1,
            resume_from: Optional[Union[str, Path]] = None) -> "CrossEM":
        """Run Algorithm 1; returns self.

        ``vertex_ids`` defaults to the graph's entity vertices.

        With ``checkpoint_dir`` set, the tuned state (prompt parameters,
        optimizer moments, RNG state, epoch counter, pseudo-labels) is
        snapshotted atomically after every ``checkpoint_every``-th epoch
        and after the final one.  ``resume_from`` — a checkpoint file or
        a directory holding them — restores the newest verified snapshot
        and continues from its epoch; under a fixed seed the resumed run
        is bit-identical to an uninterrupted one (see DESIGN.md).  A
        resume directory without any valid checkpoint trains from
        scratch, so crash-retry loops need no special first-run casing.
        """
        self.graph = graph
        self.images = list(images)
        self.vertex_ids = list(vertex_ids if vertex_ids is not None
                               else graph.entity_ids())
        if len(self.vertex_ids) < 2 or len(self.images) < 2:
            raise ValueError("need at least two vertices and two images")
        self.clip.freeze_image_tower()
        self._prepare_prompts()
        self._image_embeds = None
        self._pseudo_labels = {}
        self._before_training()
        rng = rng_from(self.config.seed)
        trainable = self._trainable_parameters()
        epochs = self.config.epochs if trainable else 0
        optimizer = nn.AdamW(trainable, lr=self.config.lr) if trainable else None
        manager = CheckpointManager(checkpoint_dir, every=checkpoint_every) \
            if checkpoint_dir is not None else None
        epoch_seconds: List[float] = []
        tracker = nn.MemoryTracker()
        reg = registry()
        self.epoch_losses = []
        start_epoch = 0
        if resume_from is not None:
            start_epoch = self._resume_training(resume_from, optimizer, rng)
        with tracker, span("fit"):
            for epoch in range(start_epoch, epochs):
                with span("epoch") as ep:
                    with span("labels"):
                        self._refresh_pseudo_labels()
                    batches = list(self._iter_epoch(rng))
                    losses = [self._train_batch(optimizer, vc, ic)
                              for vc, ic in batches]
                epoch_seconds.append(ep.elapsed)
                losses = [l for l in losses if not np.isnan(l)]
                mean_loss = float(np.mean(losses)) if losses else 0.0
                self.epoch_losses.append(mean_loss)
                pairs = sum(len(vc) * len(ic) for vc, ic in batches)
                pairs_per_sec = pairs / ep.elapsed if ep.elapsed > 0 else 0.0
                reg.counter("train.batches").inc(len(batches))
                reg.counter("train.pairs").inc(pairs)
                reg.histogram("train.epoch_loss").observe(mean_loss)
                reg.histogram("train.epoch_seconds").observe(ep.elapsed)
                reg.gauge("train.pairs_per_sec").set(pairs_per_sec)
                _log.info("epoch done", epoch=epoch + 1, epochs=epochs,
                          loss=mean_loss, pairs=pairs,
                          pairs_per_sec=pairs_per_sec, seconds=ep.elapsed)
                if manager is not None and \
                        (manager.should_save(epoch) or epoch == epochs - 1):
                    self._save_checkpoint(manager, optimizer, rng, epoch)
        self.efficiency = EfficiencyReport(
            seconds_per_epoch=float(np.mean(epoch_seconds)) if epoch_seconds else 0.0,
            peak_memory_bytes=tracker.peak_bytes)
        return self

    # -- checkpoint / resume -----------------------------------------------
    def _checkpoint_state(self, optimizer: Optional[nn.AdamW],
                          rng: np.random.Generator,
                          epoch: int) -> Tuple[Dict[str, np.ndarray], dict]:
        """Everything a resumed run needs to continue bit-identically:
        tuned parameters, optimizer moments, RNG state, epoch counter,
        losses and the current pseudo-labels."""
        arrays: Dict[str, np.ndarray] = {
            "epoch_losses": np.asarray(self.epoch_losses, dtype=np.float64),
        }
        if self.soft_prompts is not None:
            for key, value in self.soft_prompts.state_dict().items():
                if key.startswith("clip."):
                    continue  # frozen; rebuilt deterministically from the zoo
                arrays[f"soft.{key}"] = value
        opt_step = 0
        if optimizer is not None:
            opt_state = optimizer.state_dict()
            opt_step = opt_state["step"]
            for i, moment in enumerate(opt_state["m"]):
                arrays[f"opt.m.{i}"] = moment
            for i, moment in enumerate(opt_state["v"]):
                arrays[f"opt.v.{i}"] = moment
        if self._pseudo_labels:
            vertices = sorted(self._pseudo_labels)
            arrays["labels.vertices"] = np.asarray(vertices, dtype=np.int64)
            arrays["labels.images"] = np.asarray(
                [self._pseudo_labels[v] for v in vertices], dtype=np.int64)
        meta = {
            "kind": self._checkpoint_kind,
            "prompt": self.config.prompt,
            "seed": self.config.seed,
            "epoch": epoch + 1,  # the next epoch to run
            "num_vertices": len(self.vertex_ids),
            "num_images": len(self.images),
            "opt_step": opt_step,
            "rng": rng.bit_generator.state,
        }
        return arrays, meta

    def _save_checkpoint(self, manager: CheckpointManager,
                         optimizer: Optional[nn.AdamW],
                         rng: np.random.Generator, epoch: int) -> Path:
        arrays, meta = self._checkpoint_state(optimizer, rng, epoch)
        path = manager.save(epoch, arrays, meta)
        _log.info("checkpoint saved", epoch=epoch + 1, path=str(path))
        return path

    def _resume_training(self, source: Union[str, Path],
                         optimizer: Optional[nn.AdamW],
                         rng: np.random.Generator) -> int:
        """Restore the newest verified checkpoint from ``source`` (a
        checkpoint file or a directory of them); returns the epoch to
        continue from (0 when a directory holds no valid checkpoint)."""
        source = Path(source)
        if source.is_dir() or (not source.exists()
                               and source.suffix != ".ckpt"):
            # A directory with no valid checkpoint — including one that
            # does not exist yet — means "first run of a retry loop":
            # train fresh.  Naming a specific .ckpt file that is missing
            # stays a hard error below.
            found = CheckpointManager(source).latest()
            if found is None:
                _log.info("no valid checkpoint to resume, training fresh",
                          directory=str(source))
                return 0
            arrays, meta, path = found
        else:
            arrays, meta = read_checkpoint(source)
            path = source
        expected = {"kind": self._checkpoint_kind,
                    "prompt": self.config.prompt,
                    "seed": self.config.seed,
                    "num_vertices": len(self.vertex_ids),
                    "num_images": len(self.images)}
        for field, want in expected.items():
            if meta.get(field) != want:
                raise CheckpointMismatchError(
                    f"checkpoint {path} was written with {field}="
                    f"{meta.get(field)!r}, this run has {want!r}")
        if self.soft_prompts is not None:
            state = self.soft_prompts.state_dict()
            own = [k for k in state if not k.startswith("clip.")]
            missing = [k for k in own if f"soft.{k}" not in arrays]
            if missing:
                raise CheckpointMismatchError(
                    f"checkpoint {path} lacks tuned state for: "
                    f"{sorted(missing)}")
            for key in own:
                state[key] = arrays[f"soft.{key}"]
            self.soft_prompts.load_state_dict(state)
        if optimizer is not None:
            try:
                optimizer.load_state_dict({
                    "step": meta["opt_step"],
                    "m": [arrays[f"opt.m.{i}"]
                          for i in range(len(optimizer.params))],
                    "v": [arrays[f"opt.v.{i}"]
                          for i in range(len(optimizer.params))]})
            except (KeyError, ValueError) as exc:
                raise CheckpointMismatchError(
                    f"checkpoint {path} optimizer state does not fit this "
                    f"run: {exc}") from exc
        try:
            rng.bit_generator.state = meta["rng"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointMismatchError(
                f"checkpoint {path} carries an incompatible RNG state: "
                f"{exc}") from exc
        if "labels.vertices" in arrays:
            self._pseudo_labels = {
                int(v): int(i) for v, i in zip(arrays["labels.vertices"],
                                               arrays["labels.images"])}
        self.epoch_losses = [float(l) for l in arrays["epoch_losses"]]
        epoch = int(meta["epoch"])
        _log.info("resumed from checkpoint", path=str(path), epoch=epoch)
        return epoch

    def _before_training(self) -> None:
        """Hook for one-time data preprocessing before the timed epochs
        (CrossEM+ builds its PCP partition plan here — the paper reports
        *per-epoch training* time, with mini-batch generation counted as
        preprocessing, §IV-A)."""

    def _iter_epoch(self, rng: np.random.Generator):
        """Yield this epoch's (vertex chunk, image chunk) batches;
        CrossEM+ overrides this with PCP partitions."""
        return self._epoch_batches(rng)

    # -- inference ---------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self.graph is None:
            raise RuntimeError("CrossEM.fit must be called before inference")

    def score(self, vertex_ids: Optional[Sequence[int]] = None,
              vertex_batch: int = 64, *,
              image_batch: Optional[int] = None) -> np.ndarray:
        """Similarity matrix (vertices x all images), evaluated frozen.

        ``vertex_batch`` chunks the *vertex* encoding (it was misnamed
        ``image_batch`` historically; the old keyword still works but
        warns).  Discrete prompts skip the chunking entirely: their
        cached embedding matrix is sliced instead of re-encoded.
        """
        if image_batch is not None:
            warnings.warn("score(image_batch=...) chunks vertices and was "
                          "renamed to vertex_batch", DeprecationWarning,
                          stacklevel=2)
            vertex_batch = image_batch
        self._require_fitted()
        with trace_span("matcher/score"):
            self._stage("score")
            vertex_ids = list(vertex_ids if vertex_ids is not None
                              else self.vertex_ids)
            text = self._text_queries(vertex_ids, vertex_batch)
            image_matrix = self._encode_images(range(len(self.images))).numpy()
            return text @ image_matrix.T

    def _text_queries(self, vertex_ids: Sequence[int],
                      vertex_batch: int = 64) -> np.ndarray:
        """The prompted text embedding rows for ``vertex_ids`` — the
        query operand both the brute-force GEMM and the ANN index
        search against."""
        if self.config.prompt != "soft" and \
                self._prompt_token_ids is not None:
            rows = np.asarray([self._vertex_pos[v] for v in vertex_ids])
            return self._cached_text_matrix()[rows]
        # encode_vertices fires the per-thread stage hook before
        # every chunk, so a deadline is re-checked per chunk here.
        with nn.no_grad():
            return np.concatenate(
                [self.encode_vertices(
                    vertex_ids[s:s + vertex_batch]).numpy()
                 for s in range(0, len(vertex_ids), vertex_batch)],
                axis=0)

    # -- ANN index ---------------------------------------------------------------
    @property
    def search_index(self):
        """The attached ANN index, or ``None`` (brute-force scoring)."""
        return self._search_index

    def attach_index(self, index) -> None:
        """Route ``match_pairs`` top-k through ``index`` (an
        :class:`repro.index.IVFPQIndex` over this matcher's image
        embeddings).  ``CrossEM.score`` is untouched — it stays the
        exact golden reference the index is measured against."""
        self._require_fitted()
        if index.count != len(self.images):
            raise ValueError(
                f"index holds {index.count} vectors but the matcher "
                f"serves {len(self.images)} images")
        self._search_index = index
        _log.info("search index attached", vectors=index.count,
                  nlist=index.nlist, nprobe=index.nprobe)

    def detach_index(self) -> None:
        """Back to brute-force scoring."""
        self._search_index = None

    def build_index(self, config=None):
        """Build, attach and return an IVF-PQ index over this matcher's
        frozen image-tower embeddings."""
        from ..index import build_ivfpq

        self._require_fitted()
        embeddings = np.ascontiguousarray(
            self._encode_images(range(len(self.images))).numpy(),
            dtype=np.float32)
        index = build_ivfpq(embeddings, config)
        self.attach_index(index)
        return index

    def score_topk(self, vertex_ids: Optional[Sequence[int]] = None,
                   top_k: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """Per-vertex top-``top_k`` ``(image positions, scores)`` — via
        the attached ANN index when present, else the exact brute GEMM.

        Both paths order by ``(-score, image position)``; rows are
        ``-1`` / ``-inf`` padded if fewer than ``top_k`` images exist.
        """
        from ..index.topk import deterministic_topk_rows

        self._require_fitted()
        vertex_ids = list(vertex_ids if vertex_ids is not None
                          else self.vertex_ids)
        if self._search_index is not None:
            with trace_span("matcher/score_topk"):
                self._stage("score")
                text = self._text_queries(vertex_ids)
                result = self._search_index.search(text, top_k)
            return result.ids, result.scores
        scores = self.score(vertex_ids)
        top = deterministic_topk_rows(scores, top_k)
        return top, np.take_along_axis(scores, top, axis=1)

    def evaluate(self, dataset, vertex_ids: Optional[Sequence[int]] = None) -> RankingResult:
        """Rank all images per vertex and score H@k/MRR against the
        dataset's ground truth."""
        vertex_ids = list(vertex_ids if vertex_ids is not None else self.vertex_ids)
        with span("evaluate"):
            scores = self.score(vertex_ids)
            gold = [dataset.images_of_vertex(v) for v in vertex_ids]
            result = evaluate_ranking(scores, gold)
        reg = registry()
        reg.gauge("eval.hits1").set(result.hits1)
        reg.gauge("eval.hits3").set(result.hits3)
        reg.gauge("eval.hits5").set(result.hits5)
        reg.gauge("eval.mrr").set(result.mrr)
        _log.info("evaluated", vertices=len(vertex_ids), h1=result.hits1,
                  h3=result.hits3, h5=result.hits5, mrr=result.mrr)
        return result

    def match_pairs(self, vertex_ids: Optional[Sequence[int]] = None,
                    top_k: int = 1,
                    threshold: Optional[float] = None) -> Set[Tuple[int, int]]:
        """The matching set S (Definition 2).

        By default each vertex contributes its ``top_k`` highest-scoring
        images.  With ``threshold`` set, S instead contains every pair
        whose similarity reaches the threshold (the paper does not
        assume one-to-one matching), which trades precision for recall —
        see :func:`repro.core.metrics.matching_set_metrics`.

        Top-k selection is deterministic under score ties — ordered by
        ``(-score, image position)`` — so the brute-force path and an
        attached ANN index (see :meth:`attach_index`) return identical
        matching sets wherever the index shortlist is exact.  Threshold
        mode needs every score, so it always runs the brute GEMM.
        """
        from ..index.topk import deterministic_topk_rows

        self._require_fitted()
        vertex_ids = list(vertex_ids if vertex_ids is not None else self.vertex_ids)
        pairs: Set[Tuple[int, int]] = set()
        if threshold is None and self._search_index is not None \
                and top_k > 0:
            with trace_span("matcher/match_index"):
                self._stage("score")
                text = self._text_queries(vertex_ids)
                result = self._search_index.search(text, top_k)
            for row, vertex in enumerate(vertex_ids):
                for column in result.ids[row]:
                    if column >= 0:
                        pairs.add((vertex, self.images[int(column)].image_id))
            return pairs
        scores = self.score(vertex_ids)
        top: Optional[np.ndarray] = None
        if threshold is None:
            top = deterministic_topk_rows(scores, top_k)
        for row, vertex in enumerate(vertex_ids):
            if threshold is not None:
                columns = np.flatnonzero(scores[row] >= threshold)
            else:
                columns = top[row]
            for column in columns:
                pairs.add((vertex, self.images[int(column)].image_id))
        return pairs
