"""PCP — property-based closeness partition for mini-batch generation
(§IV-A, Algorithm 2).

Splits the huge |V| x |I| candidate cross product into partitions where
vertices co-occur with the images they plausibly match, so that
(i) training touches far fewer pairs and (ii) in-batch self-labeling
finds true positives more often.  Three phases, exactly as the paper:

1. *Property closeness calculation* — vertex label features (MiniLM, the
   BERT stand-in) against image patch features (frozen extractor mapped
   into text space by the :class:`~repro.clip.alignment.PropertyAligner`,
   the ResNet stand-in) give the closeness matrix S_c.
2. *Pairwise proximity exploration* — Eq. 8: S(v, I) sums, over v's
   d-hop neighbors plus itself, the best patch closeness.
3. *Cluster-based data partition* — random vertex subsets, proximity
   pruning of irrelevant images, k-means over per-image proximity
   distributions, shuffled into partitions.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..clip.alignment import PropertyAligner
from ..datalake.graph import Graph
from ..nn.init import SeedLike, rng_from
from ..obs import get_logger, registry, span
from ..text.minilm import MiniLM
from ..vision.image import SyntheticImage

__all__ = ["PCPConfig", "Partition", "MiniBatchPlan", "property_closeness",
           "pairwise_proximity", "pairwise_proximity_reference",
           "generate_minibatches", "kmeans", "kmeans_reference"]

_log = get_logger("repro.core.minibatch")


@dataclasses.dataclass
class PCPConfig:
    """Knobs of Algorithm 2."""

    d: int = 1
    #: number of random vertex subsets (k1)
    num_vertex_subsets: int = 4
    #: k-means cluster count over images per subset (k2)
    num_image_clusters: int = 4
    #: images whose proximity falls below this quantile of the subset's
    #: proximity values are pruned (the paper's absolute theta, made
    #: scale-free)
    prune_quantile: float = 0.4
    seed: int = 0


@dataclasses.dataclass
class Partition:
    """One mini-batch partition D_i = (V_i, I_i)."""

    vertex_ids: List[int]
    image_indices: List[int]

    @property
    def num_pairs(self) -> int:
        return len(self.vertex_ids) * len(self.image_indices)


@dataclasses.dataclass
class MiniBatchPlan:
    """PCP output: partitions plus the proximity matrix reused by
    property-based negative sampling (Algorithm 3)."""

    partitions: List[Partition]
    #: S(v, I): rows follow ``vertex_ids``, columns image indices
    proximity: np.ndarray
    vertex_ids: List[int]

    @property
    def total_pairs(self) -> int:
        return sum(p.num_pairs for p in self.partitions)

    def __post_init__(self) -> None:
        # vertex_row is called inside the negative-sampling loops, so an
        # O(|V|) list.index per call turned Algorithm 3 quadratic.
        self._row_of = {v: i for i, v in enumerate(self.vertex_ids)}

    def vertex_row(self, vertex_id: int) -> int:
        return self._row_of[vertex_id]


def _property_texts(graph: Graph, vertex_id: int, d: int) -> List[str]:
    """Textual properties of a vertex: its label plus one phrase per
    incident edge of its d-hop subgraph ("has wing color in grey" →
    "wing color grey"), mirroring how patch features were aligned to
    attribute phrases."""
    texts = [graph.label(vertex_id)]
    subgraph = graph.d_hop_subgraph(vertex_id, d)
    for edge in subgraph.edges():
        label = edge.label
        for stop_word in ("has ", "ref "):
            if label.startswith(stop_word):
                label = label[len(stop_word):]
        texts.append(f"{label} {subgraph.label(edge.target)}".strip())
    return texts


def property_closeness(graph: Graph, vertex_ids: Sequence[int],
                       images: Sequence[SyntheticImage], minilm: MiniLM,
                       aligner: PropertyAligner, d: int = 1
                       ) -> Tuple[Dict[int, np.ndarray], np.ndarray]:
    """Phase 1: property features per vertex and patch features per
    image, both L2-normalized in MiniLM space.

    Returns ``(property_features, patch_features)`` where
    ``property_features[vid]`` stacks that vertex's property phrase
    embeddings (one per d-hop edge, plus the label itself) and
    ``patch_features`` has shape ``(num_images, num_patches, dim)``.
    """
    # One embed_texts call over every vertex's property phrases: each
    # row only depends on its own text, so slicing the batch back apart
    # reproduces the per-vertex calls exactly.
    texts_per_vertex = [_property_texts(graph, vid, d) for vid in vertex_ids]
    bounds = np.cumsum([0] + [len(t) for t in texts_per_vertex])
    all_embeds = minilm.embed_texts([t for texts in texts_per_vertex
                                     for t in texts])
    properties: Dict[int, np.ndarray] = {}
    for row, vid in enumerate(vertex_ids):
        matrix = all_embeds[bounds[row]:bounds[row + 1]]
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        properties[vid] = (matrix / np.maximum(norms, 1e-8)).astype(np.float32)
    # Patch features run batched (and optionally thread-pooled) through
    # the same chunked path the matcher's image tower uses.
    patches = aligner.patch_text_space_batch(list(images))
    norms = np.linalg.norm(patches, axis=-1, keepdims=True)
    patches = (patches / np.maximum(norms, 1e-8)).astype(np.float32)
    return properties, patches


def pairwise_proximity(graph: Graph, vertex_ids: Sequence[int],
                       properties: Dict[int, np.ndarray],
                       patch_features: np.ndarray, d: int = 1) -> np.ndarray:
    """Phase 2 (Eq. 8): ``S(v, I) = sum_{v_j in N(v)} max_k S_c[v_j, c_k]``
    with ``N(v) = {v} ∪ V_d``, averaged over properties so vertices with
    different neighborhood sizes are comparable.
    Returns ``(len(vertex_ids), num_images)``.

    Vectorized: every vertex's property matrix is stacked into one
    ``(total_properties, dim)`` operand so the closeness computation is
    a single GEMM followed by one max-reduction; only the cheap
    per-vertex mean remains a loop.  The GEMM runs against *patch-major*
    columns so the per-image max reduces over axis 1 with a contiguous
    vectorized inner loop instead of a stride-``num_patches`` gather —
    the dominant cost of the naive layout.  BLAS GEMM results are
    row-sliceable and column-permutation-stable (each element's
    K-accumulation is independent of column order), and max is exactly
    commutative, so the matrix is bit-identical to
    :func:`pairwise_proximity_reference`.
    """
    num_images = patch_features.shape[0]
    proximity = np.zeros((len(vertex_ids), num_images), dtype=np.float32)
    if not len(vertex_ids):
        return proximity
    patch_major = np.ascontiguousarray(
        patch_features.transpose(1, 0, 2).reshape(
            -1, patch_features.shape[-1]))
    matrices = [properties[vid] for vid in vertex_ids]
    bounds = np.cumsum([0] + [len(m) for m in matrices])
    stacked = np.concatenate(matrices, axis=0)
    closeness = stacked @ patch_major.T  # (total_properties, patches * |I|)
    best = closeness.reshape(len(stacked), -1, num_images).max(axis=1)
    flat_patches = None
    for row, matrix in enumerate(matrices):
        if len(matrix) == 1:
            # BLAS routes single-row operands through gemv, which rounds
            # differently from the stacked gemm; redo these rows with
            # the reference's kernel so equality stays exact.
            if flat_patches is None:
                flat_patches = patch_features.reshape(
                    -1, patch_features.shape[-1])
            single = (matrix @ flat_patches.T).reshape(1, num_images, -1)
            proximity[row] = single.max(axis=2).mean(axis=0)
        else:
            proximity[row] = best[bounds[row]:bounds[row + 1]].mean(axis=0)
    return proximity


def pairwise_proximity_reference(graph: Graph, vertex_ids: Sequence[int],
                                 properties: Dict[int, np.ndarray],
                                 patch_features: np.ndarray,
                                 d: int = 1) -> np.ndarray:
    """The retained naive per-vertex loop (golden-equivalence tests
    assert :func:`pairwise_proximity` matches it exactly)."""
    num_images = patch_features.shape[0]
    flat_patches = patch_features.reshape(-1, patch_features.shape[-1])
    proximity = np.zeros((len(vertex_ids), num_images), dtype=np.float32)
    for row, vid in enumerate(vertex_ids):
        prop_matrix = properties[vid]
        closeness = prop_matrix @ flat_patches.T
        closeness = closeness.reshape(len(prop_matrix), num_images, -1)
        proximity[row] = closeness.max(axis=2).mean(axis=0)
    return proximity


def kmeans(points: np.ndarray, k: int, rng: SeedLike = None,
           iterations: int = 25) -> np.ndarray:
    """Seeded Lloyd's k-means; returns integer labels per point.

    Small and deterministic on purpose — scipy's kmeans2 seeds globally.
    Empty clusters are re-seeded from the farthest points.

    Distances use the ``‖x‖² + ‖c‖² − 2·x·cᵀ`` expansion: one GEMM and
    two squared-norm vectors instead of the ``(n, k, d)`` broadcast
    temporary the naive form materializes.  The expansion rounds
    differently at the ULP level, but assignments only consume distances
    through argmin/argmax, which golden tests pin to
    :func:`kmeans_reference` labels.
    """
    rng = rng_from(rng)
    n = len(points)
    k = min(k, n)
    if k <= 1:
        return np.zeros(n, dtype=np.int64)
    points = np.asarray(points)
    pts = points.astype(np.float64)
    # Centers follow the reference update exactly (means in the input
    # dtype, upcast on store) so the two variants only differ in how the
    # point-center distances round.
    centers = points[rng.choice(n, size=k, replace=False)].astype(np.float64)
    point_norms = (pts ** 2).sum(axis=1)
    labels = np.zeros(n, dtype=np.int64)
    iterations_run = 0
    for _ in range(iterations):
        iterations_run += 1
        center_norms = (centers ** 2).sum(axis=1)
        distances = (point_norms[:, None] + center_norms[None, :]
                     - 2.0 * (pts @ centers.T))
        new_labels = distances.argmin(axis=1)
        for cluster in range(k):
            members = points[new_labels == cluster]
            if len(members):
                centers[cluster] = members.mean(axis=0)
            else:
                farthest = distances.min(axis=1).argmax()
                centers[cluster] = points[farthest]
                new_labels[farthest] = cluster
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    registry().counter("pcp.kmeans_iterations").inc(iterations_run)
    return labels


def kmeans_reference(points: np.ndarray, k: int, rng: SeedLike = None,
                     iterations: int = 25) -> np.ndarray:
    """The retained naive Lloyd iteration with the ``(n, k, d)``
    broadcast temporary (golden tests assert :func:`kmeans` assigns the
    same labels)."""
    rng = rng_from(rng)
    n = len(points)
    k = min(k, n)
    if k <= 1:
        return np.zeros(n, dtype=np.int64)
    centers = points[rng.choice(n, size=k, replace=False)].astype(np.float64)
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        distances = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        for cluster in range(k):
            members = points[new_labels == cluster]
            if len(members):
                centers[cluster] = members.mean(axis=0)
            else:
                farthest = distances.min(axis=1).argmax()
                centers[cluster] = points[farthest]
                new_labels[farthest] = cluster
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return labels


def generate_minibatches(graph: Graph, vertex_ids: Sequence[int],
                         images: Sequence[SyntheticImage], minilm: MiniLM,
                         aligner: PropertyAligner,
                         config: Optional[PCPConfig] = None) -> MiniBatchPlan:
    """Run all three PCP phases (Algorithm 2)."""
    config = config or PCPConfig()
    rng = rng_from(config.seed)
    vertex_ids = list(vertex_ids)
    reg = registry()
    with span("pcp/closeness"):
        properties, patches = property_closeness(graph, vertex_ids, images,
                                                 minilm, aligner, config.d)
    with span("pcp/proximity"):
        proximity = pairwise_proximity(graph, vertex_ids, properties, patches,
                                       config.d)
    # Phase 3: random vertex split -> prune -> cluster -> shuffle.
    with span("pcp/partition"):
        order = rng.permutation(len(vertex_ids))
        subsets = np.array_split(order, min(config.num_vertex_subsets,
                                            len(vertex_ids)))
        partitions: List[Partition] = []
        for subset in subsets:
            if not len(subset):
                continue
            subset_vertices = [vertex_ids[i] for i in subset]
            subset_prox = proximity[subset]  # (|V_i|, |I|)
            relevance = subset_prox.max(axis=0)
            theta = np.quantile(relevance, config.prune_quantile)
            kept = np.flatnonzero(relevance > theta)
            if not len(kept):
                kept = np.arange(len(images))
            reg.counter("pcp.pruned_images").inc(len(images) - len(kept))
            # P_i(I): per-image distribution of proximity over the subset.
            columns = subset_prox[:, kept].T  # (|kept|, |V_i|)
            sums = columns.sum(axis=1, keepdims=True)
            distributions = columns / np.maximum(sums, 1e-8)
            labels = kmeans(distributions, config.num_image_clusters, rng)
            cluster_ids = list(np.unique(labels))
            rng.shuffle(cluster_ids)
            for cluster in cluster_ids:
                members = [int(kept[i])
                           for i in np.flatnonzero(labels == cluster)]
                rng.shuffle(members)
                if len(members) >= 2:
                    partitions.append(Partition(list(subset_vertices), members))
        rng.shuffle(partitions)
    for partition in partitions:
        reg.histogram("pcp.partition_vertices").observe(len(partition.vertex_ids))
        reg.histogram("pcp.partition_images").observe(len(partition.image_indices))
    _log.debug("pcp plan generated", vertices=len(vertex_ids),
               images=len(images), partitions=len(partitions))
    return MiniBatchPlan(partitions, proximity, vertex_ids)
