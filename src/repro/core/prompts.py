"""Prompt generation (§III): baseline, hard-encoding and soft prompts.

Three generators, matching the paper exactly:

* :func:`baseline_prompt` — the naive template "a photo of [MASK]" with
  the vertex label substituted (§II-B).
* :class:`HardPromptGenerator` — ``f_pro^h`` (§III-B): BFS over the
  d-hop subgraph produces one *neighboring sub-prompt* per neighbor
  ("has wing color in grey"), concatenated with glue tokens into the
  Example-2 template.  Subject to the encoder's token limit, so deep
  neighborhoods get truncated — the drawback the paper calls out.
* :class:`SoftPromptModule` — ``f_pro^s`` (§III-C): a *continuous*
  per-vertex prompt vector initialized from Eq. 6 neighbor aggregation
  of MiniLM label features, fused with the label embedding through the
  Eq. 7 layer ``ReLU(W (h(l_v) ⊕ f_s))`` and injected as the first
  input embedding of the feature-based text encoder.  The prompt table
  and fusion weights are learnable — this is what prompt *tuning* tunes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .. import nn
from ..clip.model import MiniCLIP
from ..datalake.aggregate import GNNAggregator, aggregate_soft_features
from ..datalake.graph import Graph
from ..nn.init import SeedLike, rng_from
from ..text.minilm import MiniLM
from ..text.tokenizer import WordTokenizer

__all__ = ["baseline_prompt", "HardPromptGenerator", "SoftPromptModule"]


def baseline_prompt(label: str, template: str = "a photo of a [MASK]") -> str:
    """The naive prompt of §II-B: the template with the label filled in."""
    if "[MASK]" not in template:
        raise ValueError("template must contain the [MASK] placeholder")
    return template.replace("[MASK]", label)


class HardPromptGenerator:
    """Discrete structural prompts ``f_pro^h(v)`` (Eq. 5).

    Parameters
    ----------
    graph:
        The unified data-lake graph.
    d:
        Neighborhood radius (hops).
    glue / pair_sep:
        The pre-defined token set T of Eq. 5: ``glue`` joins an edge
        label to a value ("in"), ``pair_sep`` joins sub-prompts (", "
        with a final "and").
    """

    def __init__(self, graph: Graph, d: int = 1, glue: str = "in",
                 pair_sep: str = ", ",
                 prefix: str = "a photo of a") -> None:
        if d < 1:
            raise ValueError("d must be at least 1")
        self.graph = graph
        self.d = d
        self.glue = glue
        self.pair_sep = pair_sep
        self.prefix = prefix

    def _sub_prompt(self, source: int, target: int, edge_label: str) -> str:
        """One neighboring sub-prompt s_i, e.g. "has wing color in grey".

        For entity-entity edges the edge label reads naturally without
        the glue token ("ref related to velkan tern" → "related to ...").
        """
        target_label = self.graph.label(target)
        edge_label = edge_label.strip()
        if edge_label.startswith("ref "):
            return f"{edge_label[4:]} {target_label}"
        if edge_label:
            return f"{edge_label} {self.glue} {target_label}"
        return f"{self.glue} {target_label}"

    def generate(self, vertex_id: int) -> str:
        """Serialize the d-hop neighborhood of ``vertex_id``.

        BFS order (Example 2): direct-neighbor sub-prompts first, then
        deeper hops prefixed with their parent's label ("long-wings has
        wing color in grey").
        """
        root_label = f"{self.prefix} {self.graph.label(vertex_id)}".strip()
        sub_prompts: List[str] = []
        visited = {vertex_id}
        frontier = [(vertex_id, "")]  # (vertex, its label prefix for hop>1)
        for hop in range(self.d):
            next_frontier: List[tuple] = []
            for node, prefix in frontier:
                for edge in self.graph.out_edges(node):
                    if edge.target in visited:
                        continue
                    visited.add(edge.target)
                    phrase = self._sub_prompt(node, edge.target, edge.label)
                    sub_prompts.append(f"{prefix}{phrase}".strip())
                    next_frontier.append(
                        (edge.target, f"{self.graph.label(edge.target)} "))
                for edge in self.graph.in_edges(node):
                    if edge.source in visited:
                        continue
                    visited.add(edge.source)
                    phrase = self._sub_prompt(node, edge.source, edge.label)
                    sub_prompts.append(f"{prefix}{phrase}".strip())
                    next_frontier.append(
                        (edge.source, f"{self.graph.label(edge.source)} "))
            frontier = next_frontier
        if not sub_prompts:
            return root_label
        if len(sub_prompts) == 1:
            joined = sub_prompts[0]
        else:
            joined = self.pair_sep.join(sub_prompts[:-1]) + f" and {sub_prompts[-1]}"
        return f"{root_label} {joined}"

    def generate_batch(self, vertex_ids: Sequence[int]) -> List[str]:
        return [self.generate(v) for v in vertex_ids]


class SoftPromptModule(nn.Module):
    """Continuous structural prompts ``f_pro^s`` with the Eq. 7 fusion.

    One learnable prompt vector per entity vertex, initialized by Eq. 6:

        f_pro^s(v) = alpha * h(v) + (1 - alpha) * mean_{v_j in N(v)} h(v_j)

    over MiniLM label embeddings aggregated by a GNN/GraphSAGE pass.
    ``forward`` fuses each vertex's prompt with its pooled label
    embedding and returns the input-embedding sequence for
    :meth:`repro.clip.model.TextEncoder.forward_embeddings`:
    ``[fused soft token, label token embeddings...]``.
    """

    def __init__(self, graph: Graph, vertex_ids: Sequence[int], clip: MiniCLIP,
                 tokenizer: WordTokenizer, minilm: MiniLM, alpha: float = 0.5,
                 d: int = 1, aggregator=None, rng: SeedLike = None,
                 template: str = "a photo of a [MASK]") -> None:
        super().__init__()
        rng = rng_from(rng)
        self.vertex_ids = list(vertex_ids)
        self._row_of = {v: i for i, v in enumerate(self.vertex_ids)}
        self.clip = clip
        self.tokenizer = tokenizer
        self.alpha = alpha
        width = clip.text.width
        prompt_dim = minilm.dim

        # Eq. 6 initialization over the d-hop-reachable label features.
        features: Dict[int, np.ndarray] = {}
        reachable = set(self.vertex_ids)
        for vid in self.vertex_ids:
            reachable.update(graph.d_hop_vertices(vid, d))
        for vid in reachable:
            features[vid] = minilm.embed_text(graph.label(vid))
        aggregator = aggregator or GNNAggregator()
        blended = aggregate_soft_features(graph, features, alpha, aggregator)
        init = np.stack([blended[v] for v in self.vertex_ids]).astype(np.float32)
        self.prompt_table = nn.Parameter(init)

        # Eq. 7 fusion: ReLU(W (h(l_v) ⊕ f_s)) -> one soft input token.
        # W starts as a pass-through on the label half (identity) with
        # small weights on the prompt half, so the untuned module behaves
        # like the baseline prompt and tuning *learns* how much structure
        # to inject.
        self.fusion = nn.Linear(width + prompt_dim, width, rng=rng)
        init_weight = np.zeros((width + prompt_dim, width), dtype=np.float32)
        init_weight[:width] = np.eye(width, dtype=np.float32)
        init_weight[width:] = nn.xavier_uniform((prompt_dim, width), rng) * 0.1
        self.fusion.weight.data = init_weight

        # Pre-tokenized templated labels: the soft token is *prepended*
        # to an in-distribution photo prompt so the untuned module stays
        # close to the pre-training text distribution.
        labels = [baseline_prompt(graph.label(v), template)
                  for v in self.vertex_ids]
        self._label_ids = tokenizer.encode_batch(labels)
        self._label_mask = tokenizer.attention_mask(self._label_ids)

    def prompt_matrix(self, vertex_ids: Sequence[int]) -> nn.Tensor:
        """Rows of the (learnable) prompt table for ``vertex_ids`` —
        the f_i^s matrix the orthogonal constraint (Eq. 9) regularizes."""
        rows = np.asarray([self._row_of[v] for v in vertex_ids])
        return self.prompt_table[rows]

    def forward(self, vertex_ids: Sequence[int]) -> nn.Tensor:
        """Encode ``vertex_ids`` through the feature-based text encoder;
        returns L2-normalized text embeddings ``(B, embed_dim)``."""
        rows = np.asarray([self._row_of[v] for v in vertex_ids])
        label_ids = self._label_ids[rows]
        label_mask = self._label_mask[rows]
        label_embeddings = self.clip.text.token_embed(label_ids)
        # Pooled label embedding h(l_v): mean over non-pad positions.
        # The denominator is clamped: a label that tokenizes to all-pad
        # would otherwise divide by zero, and the resulting NaN rows
        # poison every similarity they are matmul'd into.
        counts = np.maximum(label_mask.sum(axis=1, keepdims=True), 1)
        weights = (label_mask / counts).astype(np.float32)
        pooled = (label_embeddings * nn.Tensor(weights[:, :, None])).sum(axis=1)
        prompts = self.prompt_table[rows]
        fused = self.fusion(nn.concat([pooled, prompts], axis=1)).relu()
        # Append the soft token at the end of the sequence: inserting it
        # earlier would shift every later token's positional embedding
        # and wreck the pre-trained encoder's expectations, while late
        # positions saw variable-length captions during pre-training.
        sequence = nn.concat([label_embeddings,
                              fused.reshape(len(rows), 1, -1)], axis=1)
        mask = np.concatenate([label_mask,
                               np.ones((len(rows), 1), dtype=bool)], axis=1)
        return self.clip.encode_text_embeddings(sequence, mask)
