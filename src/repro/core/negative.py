"""Property-based negative sampling (§IV-B, Algorithm 3).

Uniform in-batch negatives are often trivially easy.  This sampler pulls
*hard* negatives into each partition: images whose proximity to the
partition's vertices is high (they share properties) but which do not
already belong to the partition — forcing the contrastive model to learn
the discriminative features the paper illustrates with the woodpecker's
"spots".  Batches are padded to a multiple of the batch size N and
shuffled at both the batch and partition level (Alg. 3 lines 3, 16-17).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..nn.init import rng_from
from ..obs import get_logger, registry, span
from .minibatch import MiniBatchPlan, Partition

__all__ = ["NegativeSamplingConfig", "sample_negatives", "augment_plan"]

_log = get_logger("repro.core.negative")


@dataclasses.dataclass
class NegativeSamplingConfig:
    """Knobs of Algorithm 3."""

    #: pad each partition's pair count up to a multiple of this
    batch_size: int = 16
    #: upper bound of the per-vertex random top-k (Alg. 3 line 9)
    max_top_k: int = 4
    seed: int = 0


def sample_negatives(plan: MiniBatchPlan, partition: Partition,
                     count: int, rng: np.random.Generator,
                     max_top_k: int = 4) -> List[int]:
    """Select up to ``count`` hard-negative image indices for
    ``partition``: per vertex, a random-k prefix of its proximity
    ranking, excluding images already in the partition."""
    excluded = set(partition.image_indices)
    negatives: List[int] = []
    rows: List[np.ndarray] = []
    for vertex in partition.vertex_ids:
        if len(negatives) >= count:
            break
        row = plan.proximity[plan.vertex_row(vertex)]
        rows.append(row)
        k = int(rng.integers(1, max_top_k + 1))
        # Walk the full ranking so only *fresh* images consume the
        # top-k budget: the old fixed window ranked[:k + len(excluded)]
        # could be entirely eaten by exclusions clustered at the top of
        # the ranking, under-filling the partition below its pad target
        # even though plenty of images remained.
        taken = 0
        for image_index in np.argsort(-row):
            if taken >= k or len(negatives) >= count:
                break
            image_index = int(image_index)
            if image_index in excluded:
                continue
            negatives.append(image_index)
            excluded.add(image_index)
            taken += 1
    if len(negatives) < count and rows:
        # The per-vertex top-k draws can sum below the deficit; top up
        # from the partition-mean proximity ranking so the batch-size
        # pad target is met whenever enough images exist at all.
        for image_index in np.argsort(-np.mean(rows, axis=0)):
            if len(negatives) >= count:
                break
            image_index = int(image_index)
            if image_index in excluded:
                continue
            negatives.append(image_index)
            excluded.add(image_index)
    return negatives[:count]


def augment_plan(plan: MiniBatchPlan,
                 config: Optional[NegativeSamplingConfig] = None) -> MiniBatchPlan:
    """Algorithm 3 over a whole plan: pad every partition with hard
    negatives to the nearest batch-size multiple and shuffle."""
    config = config or NegativeSamplingConfig()
    rng = rng_from(config.seed)
    reg = registry()
    total_negatives = 0
    augmented: List[Partition] = []
    with span("ns/augment"):
        for partition in plan.partitions:
            pairs = partition.num_pairs
            target = int(np.ceil(pairs / config.batch_size)) * config.batch_size
            deficit_pairs = target - pairs
            # Convert the pair deficit into extra image columns.
            extra_images = (deficit_pairs + len(partition.vertex_ids) - 1) \
                // max(1, len(partition.vertex_ids))
            negatives = sample_negatives(plan, partition, extra_images, rng,
                                         config.max_top_k) if extra_images else []
            reg.histogram("ns.negatives_per_partition").observe(len(negatives))
            total_negatives += len(negatives)
            images = list(partition.image_indices) + negatives
            rng.shuffle(images)
            augmented.append(Partition(list(partition.vertex_ids), images))
        rng.shuffle(augmented)
    reg.counter("ns.negatives").inc(total_negatives)
    _log.debug("negative sampling done", partitions=len(augmented),
               negatives=total_negatives)
    return MiniBatchPlan(augmented, plan.proximity, plan.vertex_ids)
