"""The paper's contribution: CrossEM / CrossEM+ prompt-tuning matchers."""

from .checkpoint import (CheckpointCorruptError, CheckpointError,
                         CheckpointManager, CheckpointMismatchError,
                         read_checkpoint, write_checkpoint)
from .cleaning import (ImageFlag, affinity_outliers, clean_repository,
                       provenance_conflicts)
from .crossem_plus import CrossEMPlus, CrossEMPlusConfig
from .losses import (batch_contrastive_loss, combined_loss,
                     matching_probability, orthogonal_constraint)
from .matcher import CrossEM, CrossEMConfig
from .metrics import (EfficiencyReport, MatchingSetResult, RankingResult,
                      evaluate_ranking, hits_at_k, matching_set_metrics,
                      mean_reciprocal_rank)
from .minibatch import (MiniBatchPlan, Partition, PCPConfig,
                        generate_minibatches, kmeans, pairwise_proximity,
                        property_closeness)
from .negative import NegativeSamplingConfig, augment_plan, sample_negatives
from .persistence import load_matcher, save_matcher
from .prompts import HardPromptGenerator, SoftPromptModule, baseline_prompt

__all__ = ["CrossEM", "CrossEMConfig", "CrossEMPlus", "CrossEMPlusConfig",
           "baseline_prompt", "HardPromptGenerator", "SoftPromptModule",
           "matching_probability", "batch_contrastive_loss",
           "orthogonal_constraint", "combined_loss", "PCPConfig",
           "Partition", "MiniBatchPlan", "generate_minibatches", "kmeans",
           "property_closeness", "pairwise_proximity",
           "NegativeSamplingConfig", "sample_negatives", "augment_plan",
           "RankingResult", "evaluate_ranking", "hits_at_k",
           "mean_reciprocal_rank", "EfficiencyReport", "save_matcher",
           "load_matcher", "ImageFlag", "affinity_outliers",
           "provenance_conflicts", "clean_repository", "MatchingSetResult",
           "matching_set_metrics", "CheckpointManager", "CheckpointError",
           "CheckpointCorruptError", "CheckpointMismatchError",
           "read_checkpoint", "write_checkpoint"]
