"""Training objectives (Eqs. 2-4, 9, 10).

CrossEM casts cross-modal EM as a *matching probability* problem with
the same contrastive objective CLIP was pre-trained with — this is how
the paper closes the objective gap (Challenge 1).  Training is
unsupervised: within each mini-batch, the positive set X_p is the
top-similarity pair per vertex (self-labeled) and X_n the remaining
pairs (§II-B, "X_p is collected from the pairs with top similarity").
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn

__all__ = ["matching_probability", "batch_contrastive_loss",
           "orthogonal_constraint", "combined_loss"]


def matching_probability(text_embeds: nn.Tensor, image_embeds: nn.Tensor,
                         temperature: float = 0.07) -> nn.Tensor:
    """Eq. 4: softmax over images of scaled cosine similarities.

    Row *i* is the matching distribution p(v_i, ·) over the image set.
    ``temperature`` is the paper's tau in (0, 1].
    """
    if not 0.0 < temperature <= 1.0:
        raise ValueError("temperature must be in (0, 1]")
    logits = (text_embeds @ image_embeds.transpose()) * (1.0 / temperature)
    return nn.functional.softmax(logits, axis=-1)


def _pseudo_positives(logits: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Self-labeled positives: *mutual* top-similarity pairs.

    X_p is "collected from the pairs with top similarity" (§II-B); we
    keep only pairs where the vertex's best image also names that vertex
    as its best — the high-precision reading that keeps unsupervised
    self-training from reinforcing one-directional mistakes.
    Returns (row indices, column indices) of the retained pairs.
    """
    best_image = logits.argmax(axis=1)
    best_vertex = logits.argmax(axis=0)
    rows = np.flatnonzero(best_vertex[best_image] == np.arange(len(best_image)))
    return rows, best_image[rows]


def batch_contrastive_loss(text_embeds: nn.Tensor, image_embeds: nn.Tensor,
                           temperature: float = 0.07,
                           positives: Optional[np.ndarray] = None
                           ) -> Optional[nn.Tensor]:
    """Eqs. 2-3 over one mini-batch (V_i, I_i).

    ``positives[i]`` is the image column treated as x_j for vertex i;
    when omitted, positives are self-labeled as the batch's mutual
    top-similarity pairs (unsupervised mode).  The loss is symmetrized
    as in Eq. 2: ``l(x_i, x_j) + l(x_j, x_i)`` averaged over positive
    pairs.  Returns ``None`` when no confident pair exists in the batch.
    """
    logits = (text_embeds @ image_embeds.transpose()) * (1.0 / temperature)
    if positives is None:
        rows, columns = _pseudo_positives(logits.numpy())
        if not len(rows):
            return None
    else:
        columns = np.asarray(positives)
        rows = np.arange(len(columns))
    # l(x_i, x_j): vertex i against all images in the batch.
    log_p_v = nn.functional.log_softmax(logits, axis=1)[rows, columns]
    # l(x_j, x_i): the positive image against all vertices in the batch.
    log_p_i = nn.functional.log_softmax(logits.transpose(), axis=1)[columns, rows]
    return -(log_p_v + log_p_i).mean() * 0.5


def orthogonal_constraint(prompt_matrix: nn.Tensor) -> nn.Tensor:
    """Eq. 9: ``|| F F^T - I ||_F1`` over row-normalized prompts.

    Encourages the soft prompts of different vertices in a mini-batch to
    be mutually orthogonal so structurally similar entities keep
    distinguishable prompts (§IV-C).
    """
    normalized = nn.functional.l2_normalize(prompt_matrix, axis=-1)
    gram = normalized @ normalized.transpose()
    identity = nn.Tensor(np.eye(gram.shape[0], dtype=np.float32))
    # Element-mean rather than raw sum so the constraint's scale does not
    # grow quadratically with batch size (keeps Eq. 10's beta meaningful
    # across batch shapes).
    return (gram - identity).abs().mean()


def combined_loss(contrastive: nn.Tensor, orthogonal: nn.Tensor,
                  beta: float = 0.8) -> nn.Tensor:
    """Eq. 10: ``beta * L_c + (1 - beta) * L_o``."""
    if not 0.0 <= beta <= 1.0:
        raise ValueError("beta must be in [0, 1]")
    return contrastive * beta + orthogonal * (1.0 - beta)
