"""Declarative SLOs evaluated against a load run, with budget math.

An :class:`SLOSpec` states the operating objectives a run must meet —
latency quantile bounds (measured from *intended* arrival time, so
queueing delay counts; see ``repro.loadgen``), a minimum availability,
and caps on the degraded/shed fractions.  :func:`evaluate_slo` checks a
run summary (the dict :meth:`repro.loadgen.LoadReport.summary` emits,
or any dict with the same keys) against the spec and returns per-
objective verdicts plus error-budget math:

* **availability** counts a request as answered when the service
  returned a result at any tier — ``ok`` or ``degraded``.  Shed,
  deadline-blown, errored and lost requests all spend error budget.
* **burn rate** is ``observed_failure / allowed_failure`` where
  ``allowed_failure = 1 - availability_target``: 1.0 means the run
  consumed its budget exactly; 2.0 means a sustained run like this
  exhausts a compliance window's budget in half the window.
* **budget remaining** is ``max(0, 1 - burn_rate)`` — the fraction of
  this window's error budget left over.

Latency objectives are evaluated over *answered* requests (ok +
degraded): a shed is an availability failure, not a fast success, and
letting its sub-millisecond rejection into the latency distribution
would reward shedding with a better p99.

Specs serialise to/from plain dicts (JSON files, frontier artifacts);
unknown keys raise so a typo'd objective cannot silently pass.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import List, Optional, Tuple

__all__ = ["SLOSpec", "ObjectiveResult", "SLOResult", "evaluate_slo",
           "format_slo", "load_spec"]


@dataclasses.dataclass(frozen=True)
class SLOSpec:
    """The declarative objectives; ``None`` disables an objective."""

    name: str = "default"
    #: latency bounds in milliseconds, per quantile
    p50_ms: Optional[float] = None
    p95_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    #: minimum fraction of offered requests answered (ok + degraded)
    availability: Optional[float] = None
    #: maximum fraction of offered requests answered degraded
    max_degraded: Optional[float] = None
    #: maximum fraction of offered requests shed by admission control
    max_shed: Optional[float] = None

    def __post_init__(self) -> None:
        for field in ("p50_ms", "p95_ms", "p99_ms"):
            value = getattr(self, field)
            if value is not None and value <= 0:
                raise ValueError(f"{field} must be positive")
        for field in ("availability", "max_degraded", "max_shed"):
            value = getattr(self, field)
            if value is not None and not 0.0 <= value <= 1.0:
                raise ValueError(f"{field} must be in [0, 1]")
        if all(getattr(self, f.name) is None
               for f in dataclasses.fields(self) if f.name != "name"):
            raise ValueError("an SLO spec needs at least one objective")

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)
                if getattr(self, f.name) is not None or f.name == "name"}

    @classmethod
    def from_dict(cls, doc: dict) -> "SLOSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown SLO objective(s): "
                             f"{', '.join(sorted(unknown))}")
        return cls(**doc)


@dataclasses.dataclass(frozen=True)
class ObjectiveResult:
    """One objective's verdict: what was required, what was measured."""

    objective: str
    bound: float
    measured: Optional[float]
    #: "<=" for caps (latency, degraded, shed); ">=" for availability
    direction: str
    ok: bool


@dataclasses.dataclass(frozen=True)
class SLOResult:
    """All objective verdicts plus the availability budget math."""

    spec: SLOSpec
    objectives: Tuple[ObjectiveResult, ...]
    #: None when the spec has no availability objective
    burn_rate: Optional[float]
    budget_remaining: Optional[float]

    @property
    def ok(self) -> bool:
        return all(objective.ok for objective in self.objectives)

    @property
    def violations(self) -> List[ObjectiveResult]:
        return [o for o in self.objectives if not o.ok]

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "ok": self.ok,
            "burn_rate": self.burn_rate,
            "budget_remaining": self.budget_remaining,
            "objectives": [dataclasses.asdict(o) for o in self.objectives],
        }


def _cap(name: str, bound: Optional[float],
         measured: Optional[float]) -> Optional[ObjectiveResult]:
    if bound is None:
        return None
    # a missing measurement fails the objective loudly: an SLO that
    # passes because nothing was measured is not an SLO
    ok = measured is not None and measured <= bound
    return ObjectiveResult(name, bound, measured, "<=", ok)


def evaluate_slo(spec: SLOSpec, summary: dict) -> SLOResult:
    """Check one run ``summary`` against ``spec`` (see module doc)."""
    objectives: List[ObjectiveResult] = []
    for field, key in (("p50_ms", "p50_ms"), ("p95_ms", "p95_ms"),
                       ("p99_ms", "p99_ms")):
        result = _cap(field, getattr(spec, field), summary.get(key))
        if result is not None:
            objectives.append(result)
    burn_rate = budget_remaining = None
    if spec.availability is not None:
        measured = summary.get("availability")
        ok = measured is not None and measured >= spec.availability
        objectives.append(ObjectiveResult(
            "availability", spec.availability, measured, ">=", ok))
        if measured is not None:
            allowed = 1.0 - spec.availability
            observed = 1.0 - measured
            if allowed > 0.0:
                burn_rate = observed / allowed
            else:
                burn_rate = 0.0 if observed <= 0.0 else float("inf")
            budget_remaining = max(0.0, 1.0 - burn_rate)
    for field, key in (("max_degraded", "degraded_fraction"),
                       ("max_shed", "shed_fraction")):
        result = _cap(field, getattr(spec, field), summary.get(key))
        if result is not None:
            objectives.append(result)
    return SLOResult(spec=spec, objectives=tuple(objectives),
                     burn_rate=burn_rate,
                     budget_remaining=budget_remaining)


def format_slo(result: SLOResult, *, label: Optional[str] = None) -> str:
    """One aligned verdict line per objective, plus the budget line.

    ``label`` tags the header (e.g. ``window 3/5`` or ``shard 2``) so a
    live judging loop can emit many verdicts tellingly.
    """
    tag = f" [{label}]" if label else ""
    lines = [f"SLO {result.spec.name!r}{tag}: "
             f"{'PASS' if result.ok else 'FAIL'}"]
    for objective in result.objectives:
        measured = ("unmeasured" if objective.measured is None
                    else f"{objective.measured:.6g}")
        mark = "ok" if objective.ok else "VIOLATED"
        lines.append(f"  {objective.objective:14s} {objective.direction} "
                     f"{objective.bound:<12.6g} measured {measured:<12s} "
                     f"{mark}")
    if result.burn_rate is not None:
        lines.append(f"  error budget: burn rate {result.burn_rate:.3g}x, "
                     f"{result.budget_remaining:.1%} of this window's "
                     f"budget remaining")
    return "\n".join(lines)


def load_spec(path) -> SLOSpec:
    """An :class:`SLOSpec` from a JSON file."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict):
        raise ValueError(f"SLO spec {path} must be a JSON object")
    return SLOSpec.from_dict(doc)
