"""Live fleet scraping: fetch, aggregate, and delta metric snapshots.

The ``stats`` protocol op (DESIGN.md §15) lets any process in the fleet
answer "what do your instruments say *right now*" without stopping:
workers reply with their registry snapshot plus span aggregates, and
the router replies with an already-aggregated fleet view.  This module
is the client and the aggregation math behind both:

* :func:`fetch_stats` — one-shot blocking scrape of a ``stats``-capable
  endpoint over a throwaway connection (the scrape analogue of
  ``loadgen.socketdrv.fetch_info``).
* :func:`aggregate_fleet` — fold per-shard snapshots into one fleet
  snapshot: counters **summed** (fleet throughput is the sum of shard
  throughputs), bucket histograms **merged bucketwise** when bounds
  agree (exact, via :meth:`BucketHistogram.merge`), and everything
  whose aggregate would lie — gauges, reservoir percentiles, span
  families, bucket layouts that disagree — **labeled per shard**
  (``labels: {"shard": "2"}``) so nothing is averaged into fiction.
* :func:`delta_summary` / :func:`combine_summaries` — turn two
  cumulative scrapes into the *window between them* (counter deltas,
  :meth:`BucketHistogram.delta_from` for latency quantiles) in the
  exact summary schema :func:`repro.obs.slo.evaluate_slo` judges, so
  ``repro obs slo --connect`` computes burn rate over a sliding window
  of live scrapes.

Each shard's snapshot is internally consistent per instrument (rows are
read under the instrument lock) but the fleet scrape is not a
distributed cut: shards answer a few milliseconds apart.  Deltas of
cumulative counters/buckets between two scrapes of the *same* process
are exact regardless.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .hist import BucketHistogram

__all__ = ["fetch_stats", "aggregate_fleet", "delta_summary",
           "combine_summaries"]

#: counter names the delta summary reads (see ``serve.service``)
_OFFERED = "serve.requests_total"
_OK = "serve.ok_total"
_DEGRADED = "serve.degraded_total"
_SHED = "serve.error.overloaded"
_ERRORS = "serve.error_total"


def fetch_stats(address: Tuple[str, int], *,
                timeout: float = 10.0) -> dict:
    """The ``stats`` payload of the server at ``address``.

    One throwaway connection, one request line, one (possibly large)
    response line; ``timeout`` bounds connect and read.  Raises
    ``ConnectionError`` when the server hangs up without answering,
    ``RuntimeError`` on a typed error response (e.g. a server too old
    to know the op), ``ValueError`` on a garbled line.
    """
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(b'{"op":"stats","id":"scrape"}\n')
        stream = sock.makefile("rb")
        line = stream.readline()
    if not line:
        raise ConnectionError(f"server at {address[0]}:{address[1]} "
                              f"closed without answering stats")
    response = json.loads(line)
    if not response.get("ok"):
        raise RuntimeError(f"stats request failed: {response.get('error')}")
    stats = response.get("stats")
    if not isinstance(stats, dict):
        raise ValueError("stats response carries no stats object")
    return stats


def _labeled(row: dict, slot: str) -> dict:
    """``row`` with ``shard=<slot>`` merged into its labels."""
    labels = dict(row.get("labels") or {})
    labels.setdefault("shard", slot)
    return dict(row, labels=labels)


def _bucket_hist(row: dict) -> BucketHistogram:
    """Rebuild the :class:`BucketHistogram` behind a metric row."""
    doc = dict(row["buckets"])
    doc.setdefault("count", row.get("count", 0))
    doc.setdefault("sum", row.get("sum", 0.0))
    doc.setdefault("min", row.get("min", 0.0))
    doc.setdefault("max", row.get("max", 0.0))
    return BucketHistogram.from_dict(doc)


def _merged_bucket_row(name: str, rows: Sequence[dict]) -> dict:
    merged = _bucket_hist(rows[0])
    for row in rows[1:]:
        merged.merge(_bucket_hist(row))
    doc = merged.to_dict()
    return {"type": "histogram", "name": name,
            "count": doc["count"], "sum": doc["sum"],
            "min": doc["min"], "max": doc["max"],
            "p50": merged.quantile(50.0),
            "p95": merged.quantile(95.0),
            "p99": merged.quantile(99.0),
            "buckets": {"bounds": doc["bounds"], "counts": doc["counts"]}}


def aggregate_fleet(per_shard: Dict[str, Optional[dict]],
                    own_rows: Iterable[dict] = (),
                    own_spans: Iterable[dict] = ()) -> dict:
    """Fold per-shard ``stats`` payloads into one fleet payload.

    ``per_shard`` maps shard label → the shard's ``stats`` dict, or
    ``None`` for a shard that failed to answer (still counted in
    ``shards.total`` so a scrape of a limping fleet says so).
    ``own_rows``/``own_spans`` are the aggregator's *own* instruments
    (router queue depths, breaker states), appended unlabeled —
    filtered to names the shards did not already report, so an
    in-process fleet sharing one registry never double-counts.
    """
    answered = {slot: stats for slot, stats in per_shard.items()
                if stats is not None}

    # group worker metric rows by (name, type-ish shape)
    counters: Dict[str, float] = {}
    bucket_rows: Dict[str, List[Tuple[str, dict]]] = {}
    labeled: List[dict] = []
    spans: List[dict] = []
    for slot in sorted(answered):
        stats = answered[slot]
        for row in stats.get("metrics", ()):
            kind = row.get("type")
            if kind == "counter":
                counters[row["name"]] = counters.get(row["name"], 0) \
                    + row.get("value", 0)
            elif kind == "histogram" and row.get("buckets"):
                bucket_rows.setdefault(row["name"], []) \
                    .append((slot, row))
            else:  # gauges and reservoir histograms: label, don't merge
                labeled.append(_labeled(row, slot))
        for row in stats.get("spans", ()):
            spans.append(_labeled(row, slot))

    metrics: List[dict] = [
        {"type": "counter", "name": name, "value": value}
        for name, value in counters.items()]
    for name, slot_rows in bucket_rows.items():
        bounds = slot_rows[0][1]["buckets"]["bounds"]
        if all(row["buckets"]["bounds"] == bounds
               for _, row in slot_rows[1:]):
            metrics.append(_merged_bucket_row(
                name, [row for _, row in slot_rows]))
        else:  # layouts disagree: per-shard truth beats a wrong merge
            metrics.extend(_labeled(row, slot) for slot, row in slot_rows)

    seen = {row["name"] for row in metrics}
    seen.update(row["name"] for row in labeled)
    metrics.extend(row for row in own_rows if row["name"] not in seen)
    span_seen = {row["name"] for row in spans}
    spans.extend(row for row in own_spans
                 if row["name"] not in span_seen)

    metrics.sort(key=lambda row: (row["name"],
                                  (row.get("labels") or {}).get("shard",
                                                                "")))
    labeled.sort(key=lambda row: (row["name"], row["labels"]["shard"]))
    spans.sort(key=lambda row: (row["name"],
                                (row.get("labels") or {}).get("shard", "")))
    captured = [stats.get("captured_unix") for stats in answered.values()
                if isinstance(stats.get("captured_unix"), (int, float))]
    return {
        "metrics": metrics + labeled,
        "spans": spans,
        "shards": {"total": len(per_shard), "answered": len(answered)},
        "per_shard": {slot: per_shard[slot] for slot in sorted(per_shard)},
        "captured_unix": max(captured) if captured else None,
    }


def _row_map(rows: Iterable[dict]) -> Dict[str, dict]:
    # unlabeled rows only: labeled rows are per-shard facets, and a
    # delta across the whole fleet reads the aggregated families
    return {row["name"]: row for row in rows if not row.get("labels")}


def _counter_delta(before: Dict[str, dict], after: Dict[str, dict],
                   name: str) -> int:
    older = before.get(name, {}).get("value", 0)
    newer = after.get(name, {}).get("value", 0)
    return max(0, int(newer) - int(older))


def delta_summary(before_rows: Iterable[dict],
                  after_rows: Iterable[dict], *,
                  latency_metric: str = "serve.request_ms") -> dict:
    """The window between two cumulative scrapes, as an SLO summary.

    ``before_rows``/``after_rows`` are the ``metrics`` lists of two
    scrapes of the same fleet (older first).  Counter deltas give
    offered/answered/degraded/shed; :meth:`BucketHistogram.delta_from`
    on ``latency_metric`` gives the window's latency quantiles (``None``
    when the metric is missing or reservoir-backed — evaluate_slo then
    fails latency objectives loudly rather than judging stale numbers).
    """
    before = _row_map(before_rows)
    after = _row_map(after_rows)
    offered = _counter_delta(before, after, _OFFERED)
    ok = _counter_delta(before, after, _OK)
    degraded = _counter_delta(before, after, _DEGRADED)
    shed = _counter_delta(before, after, _SHED)
    errors = _counter_delta(before, after, _ERRORS)
    answered = ok + degraded

    p50 = p95 = p99 = None
    latency_buckets = None
    older_row = before.get(latency_metric)
    newer_row = after.get(latency_metric)
    if newer_row is not None and newer_row.get("buckets"):
        if older_row is not None and older_row.get("buckets"):
            older = _bucket_hist(older_row)
        else:
            # cumulative instrument absent from the older scrape: the
            # process had simply observed nothing yet — delta from zero
            older = BucketHistogram(newer_row["buckets"]["bounds"])
        delta = _bucket_hist(newer_row).delta_from(older)
        if delta.count:
            p50 = delta.quantile(50.0)
            p95 = delta.quantile(95.0)
            p99 = delta.quantile(99.0)
        latency_buckets = delta.to_dict()

    return {
        "offered": offered,
        "answered": answered,
        "ok": ok,
        "degraded": degraded,
        "shed": shed,
        "errors": errors,
        "availability": (answered / offered) if offered else None,
        "degraded_fraction": (degraded / offered) if offered else None,
        "shed_fraction": (shed / offered) if offered else None,
        "p50_ms": p50, "p95_ms": p95, "p99_ms": p99,
        "latency_buckets": latency_buckets,
    }


def combine_summaries(summaries: Sequence[dict]) -> dict:
    """Fold consecutive :func:`delta_summary` windows into one — the
    sliding-window view live SLO judging burns down against."""
    if not summaries:
        raise ValueError("need at least one window summary")
    offered = sum(s.get("offered", 0) for s in summaries)
    ok = sum(s.get("ok", 0) for s in summaries)
    degraded = sum(s.get("degraded", 0) for s in summaries)
    shed = sum(s.get("shed", 0) for s in summaries)
    errors = sum(s.get("errors", 0) for s in summaries)
    answered = ok + degraded

    merged: Optional[BucketHistogram] = None
    for summary in summaries:
        doc = summary.get("latency_buckets")
        if not doc:
            continue
        hist = BucketHistogram.from_dict(doc)
        if merged is None:
            merged = hist
        else:
            merged.merge(hist)
    p50 = p95 = p99 = None
    if merged is not None and merged.count:
        p50 = merged.quantile(50.0)
        p95 = merged.quantile(95.0)
        p99 = merged.quantile(99.0)

    return {
        "offered": offered,
        "answered": answered,
        "ok": ok,
        "degraded": degraded,
        "shed": shed,
        "errors": errors,
        "availability": (answered / offered) if offered else None,
        "degraded_fraction": (degraded / offered) if offered else None,
        "shed_fraction": (shed / offered) if offered else None,
        "p50_ms": p50, "p95_ms": p95, "p99_ms": p99,
        "latency_buckets": merged.to_dict() if merged is not None else None,
    }
