"""Latency/throughput frontier sweeps with a CI-gateable knee artifact.

A single load run answers "how does the service behave at rate R"; the
capacity question is "what is the *highest* R at which it still meets
its SLOs".  :func:`sweep_frontier` steps an ascending ladder of
offered rates, runs the harness at each point, evaluates the SLO spec
against each summary, and detects the **knee**: the last rate whose
SLOs hold with every lower rate also holding (the contiguous-prefix
rule, so a fluke pass above a failing rate never inflates capacity).

The result is a committed JSON artifact (``repro load sweep
--output``).  ``repro obs diff`` understands it natively: the knee
flattens into synthetic gauges, most importantly
``frontier.knee.interarrival_ms`` (milliseconds between requests at
the knee — a *time-shaped* series where bigger is worse, so the
default regression policy gates a capacity loss exactly like a latency
regression).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from .slo import SLOSpec, evaluate_slo

__all__ = ["FRONTIER_SCHEMA", "sweep_frontier", "detect_knee",
           "frontier_rows", "is_frontier_doc", "save_frontier",
           "load_frontier", "format_frontier"]

FRONTIER_SCHEMA = "repro.frontier/1"


def sweep_frontier(run_point: Callable[[float], dict],
                   rates: Sequence[float], spec: SLOSpec, *,
                   meta: Optional[dict] = None,
                   progress: Optional[Callable[[str], None]] = None) -> dict:
    """Sweep ``rates`` (ascending) through ``run_point`` → artifact doc.

    ``run_point(rate)`` performs one load run at the offered rate and
    returns its summary dict (:meth:`LoadReport.summary`).
    """
    rates = [float(rate) for rate in rates]
    if not rates:
        raise ValueError("a sweep needs at least one rate")
    if any(b <= a for a, b in zip(rates, rates[1:])):
        raise ValueError("rates must be strictly ascending")
    points: List[dict] = []
    for rate in rates:
        if progress is not None:
            progress(f"offered rate {rate:g}/s ...")
        summary = run_point(rate)
        result = evaluate_slo(spec, summary)
        points.append({"rate": rate, "ok": result.ok,
                       "summary": summary, "slo": result.to_dict()})
        if progress is not None:
            verdict = "pass" if result.ok else "FAIL"
            progress(f"  p99={summary.get('p99_ms', 0.0):.1f}ms "
                     f"availability={summary.get('availability', 0.0):.3f} "
                     f"slo={verdict}")
    return {"schema": FRONTIER_SCHEMA, "spec": spec.to_dict(),
            "meta": meta or {}, "points": points,
            "knee": detect_knee(points)}


def detect_knee(points: Sequence[dict]) -> Optional[dict]:
    """The last point of the passing prefix, or ``None`` if the very
    first rate already violates the SLOs."""
    knee = None
    for point in points:
        if not point.get("ok"):
            break
        knee = point
    return knee


def is_frontier_doc(doc) -> bool:
    return isinstance(doc, dict) and (
        doc.get("schema") == FRONTIER_SCHEMA
        or ("points" in doc and "knee" in doc and "spec" in doc))


def _gauge(name: str, value) -> Optional[dict]:
    if value is None:
        return None
    return {"type": "gauge", "name": name, "value": float(value)}


def frontier_rows(doc: dict) -> List[dict]:
    """Synthetic gauge rows so ``repro obs diff`` can gate a frontier.

    The knee's capacity is exposed twice: ``frontier.knee.rate``
    (human-readable, bigger is better — never watched) and
    ``frontier.knee.interarrival_ms`` (its reciprocal in milliseconds,
    time-shaped so the bigger-is-worse watch semantics apply).
    """
    rows: List[dict] = []
    knee = doc.get("knee")
    if knee is not None:
        summary = knee.get("summary", {})
        rows.extend(filter(None, (
            _gauge("frontier.knee.rate", knee.get("rate")),
            _gauge("frontier.knee.interarrival_ms",
                   1000.0 / knee["rate"] if knee.get("rate") else None),
            _gauge("frontier.knee.p99_ms", summary.get("p99_ms")),
            _gauge("frontier.knee.availability",
                   summary.get("availability")),
        )))
    for point in doc.get("points", ()):
        rate = point.get("rate")
        summary = point.get("summary", {})
        key = f"frontier.point.r{rate:g}"
        rows.extend(filter(None, (
            _gauge(f"{key}.ok", 1.0 if point.get("ok") else 0.0),
            _gauge(f"{key}.p99_ms", summary.get("p99_ms")),
            _gauge(f"{key}.availability", summary.get("availability")),
            _gauge(f"{key}.shed_fraction", summary.get("shed_fraction")),
        )))
    return rows


def save_frontier(path, doc: dict) -> Path:
    from ..iosafe import atomic_write_bytes

    payload = json.dumps(doc, indent=2, sort_keys=True)
    return atomic_write_bytes(Path(path), payload.encode("utf-8"))


def load_frontier(path) -> dict:
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not is_frontier_doc(doc):
        raise ValueError(f"{path} is not a frontier artifact")
    return doc


def format_frontier(doc: dict) -> str:
    """The sweep as an aligned table with the knee marked."""
    knee = doc.get("knee")
    knee_rate = knee.get("rate") if knee else None
    lines = [f"{'':2s}{'rate/s':>8s} {'offered':>8s} {'p50':>9s} "
             f"{'p95':>9s} {'p99':>9s} {'avail':>7s} {'degr':>6s} "
             f"{'shed':>6s}  slo"]
    for point in doc.get("points", ()):
        summary = point.get("summary", {})
        marker = "*" if point.get("rate") == knee_rate else " "
        lines.append(
            f"{marker:2s}{point.get('rate', 0):>8g} "
            f"{summary.get('offered', 0):>8d} "
            f"{summary.get('p50_ms', 0.0):>7.1f}ms "
            f"{summary.get('p95_ms', 0.0):>7.1f}ms "
            f"{summary.get('p99_ms', 0.0):>7.1f}ms "
            f"{summary.get('availability', 0.0):>7.3f} "
            f"{summary.get('degraded_fraction', 0.0):>6.3f} "
            f"{summary.get('shed_fraction', 0.0):>6.3f}  "
            f"{'pass' if point.get('ok') else 'FAIL'}")
    if knee is not None:
        lines.append(f"knee: {knee_rate:g} req/s "
                     f"(* = last rate whose SLOs hold)")
    else:
        lines.append("knee: none — the lowest swept rate already "
                     "violates the SLOs")
    return "\n".join(lines)
