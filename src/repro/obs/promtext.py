"""OpenMetrics / Prometheus text exposition of the metrics registry.

Renders the same rows the JSONL exporter writes — counters, gauges,
histograms and span aggregates — in the text format a Prometheus scrape
(or ``promtool check metrics``) understands, so ``repro serve
--metrics-out run.jsonl`` can drop a scrape-ready ``run.prom`` snapshot
alongside the JSONL without any client library:

* counter ``cache.hit`` → ``repro_cache_hit_total 3``
* gauge ``train.pairs_per_sec`` → ``repro_train_pairs_per_sec 812.4``
* reservoir histogram rows → a *summary* family:
  ``{quantile="0.5"|"0.95"}`` samples plus ``_count`` / ``_sum``
* bucket-backed histogram rows (those carrying a ``buckets`` payload,
  e.g. the load harness's ``load.latency_ms``) → a classic *histogram*
  family: cumulative ``_bucket{le="..."}`` samples ending at
  ``le="+Inf"`` (always equal to ``_count``), plus ``_count``/``_sum``
* span rows → one shared ``repro_span_seconds`` summary family with a
  ``span="fit/epoch"`` label per path

Any row may additionally carry a ``labels`` dict (``{"shard": "2"}``);
its pairs are merged into every sample the row produces — how a fleet
scrape through the router keeps per-shard gauges and histograms apart
in one exposition (DESIGN.md §15).

Dotted names are sanitised to ``[a-zA-Z0-9_:]`` and prefixed; label
values are escaped per the exposition format.  Trace rows are *not*
rendered — per-request trees are unbounded-cardinality and belong in
the JSONL/`repro obs report` path, not a scrape.  The output ends with
``# EOF`` (the OpenMetrics terminator, which Prometheus' text parser
also accepts as a comment).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from .metrics import MetricsRegistry, registry
from .spans import span_snapshot

__all__ = ["render_openmetrics", "export_prom"]

_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, prefix: str) -> str:
    cleaned = _BAD_CHARS.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _fmt(value: float) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _row_labels(row: dict) -> str:
    """The row's own ``labels`` dict as ``k="v"`` pairs (sorted), or
    ``""`` — merged into every sample the row emits."""
    labels = row.get("labels")
    if not labels:
        return ""
    return ",".join(
        f'{_BAD_CHARS.sub("_", str(key))}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items()))


def _braced(*parts: str) -> str:
    """``{a,b}`` from the non-empty label fragments, or ``""``."""
    joined = ",".join(part for part in parts if part)
    return f"{{{joined}}}" if joined else ""


def render_openmetrics(rows: Iterable[dict], prefix: str = "repro") -> str:
    """Render exporter-schema ``rows`` as OpenMetrics text.

    Families are emitted sorted by name (deterministic diffs); every
    span row joins the single ``{prefix}_span_seconds`` family.
    """
    # family name -> (type, [sample lines])
    families: Dict[str, Tuple[str, List[str]]] = {}

    def family(name: str, kind: str) -> List[str]:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = (kind, [])
        return entry[1]

    span_family = f"{prefix}_span_seconds" if prefix else "span_seconds"
    quantile_50 = 'quantile="0.5"'
    quantile_95 = 'quantile="0.95"'
    for row in rows:
        kind = row.get("type")
        extra = _row_labels(row)
        if kind == "counter":
            name = _metric_name(row["name"], prefix)
            # the exposition format appends _total itself; strip an
            # existing suffix so serve.requests_total doesn't double up
            if name.endswith("_total"):
                name = name[:-len("_total")]
            family(name, "counter").append(
                f"{name}_total{_braced(extra)} {_fmt(row['value'])}")
        elif kind == "gauge":
            name = _metric_name(row["name"], prefix)
            family(name, "gauge").append(
                f"{name}{_braced(extra)} {_fmt(row['value'])}")
        elif kind == "histogram":
            name = _metric_name(row["name"], prefix)
            buckets = row.get("buckets")
            if buckets:
                lines = family(name, "histogram")
                running = 0
                for bound, count in zip(buckets["bounds"],
                                        buckets["counts"]):
                    running += int(count)
                    le = f'le="{_fmt(bound)}"'
                    lines.append(f"{name}_bucket{_braced(extra, le)} "
                                 f"{running}")
                # the +Inf bucket is total count by construction — the
                # overflow slot is the last entry of ``counts``
                inf = 'le="+Inf"'
                lines.append(f"{name}_bucket{_braced(extra, inf)} "
                             f"{_fmt(row['count'])}")
                lines.append(f"{name}_count{_braced(extra)} "
                             f"{_fmt(row['count'])}")
                lines.append(f"{name}_sum{_braced(extra)} "
                             f"{_fmt(row['sum'])}")
            else:
                lines = family(name, "summary")
                lines.append(f"{name}{_braced(extra, quantile_50)} "
                             f"{_fmt(row['p50'])}")
                lines.append(f"{name}{_braced(extra, quantile_95)} "
                             f"{_fmt(row['p95'])}")
                lines.append(f"{name}_count{_braced(extra)} "
                             f"{_fmt(row['count'])}")
                lines.append(f"{name}_sum{_braced(extra)} "
                             f"{_fmt(row['sum'])}")
        elif kind == "span":
            label = f'span="{_escape_label(row["name"])}"'
            lines = family(span_family, "summary")
            lines.append(f"{span_family}"
                         f"{_braced(extra, label, quantile_50)} "
                         f"{_fmt(row['p50_seconds'])}")
            lines.append(f"{span_family}"
                         f"{_braced(extra, label, quantile_95)} "
                         f"{_fmt(row['p95_seconds'])}")
            lines.append(f"{span_family}_count{_braced(extra, label)} "
                         f"{_fmt(row['count'])}")
            lines.append(f"{span_family}_sum{_braced(extra, label)} "
                         f"{_fmt(row['total_seconds'])}")
        # meta / trace rows are deliberately not scrape material

    out: List[str] = []
    for name in sorted(families):
        kind, lines = families[name]
        out.append(f"# TYPE {name} {kind}")
        out.extend(lines)
    out.append("# EOF")
    return "\n".join(out) + "\n"


def export_prom(path, reg: Optional[MetricsRegistry] = None,
                include_spans: bool = True,
                prefix: str = "repro") -> Path:
    """Atomically write an OpenMetrics snapshot of the registry
    (default: process-wide) to ``path``; returns the path."""
    from ..iosafe import atomic_write_bytes  # late: iosafe imports repro.obs

    reg = reg if reg is not None else registry()
    rows: List[dict] = list(reg.snapshot())
    if include_spans:
        rows.extend(span_snapshot())
    text = render_openmetrics(rows, prefix=prefix)
    return atomic_write_bytes(Path(path), text.encode("utf-8"))
