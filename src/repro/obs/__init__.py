"""Observability: logging, spans, metrics, request traces, exposition.

One small subsystem gives the whole reproduction a common telemetry
vocabulary:

* :mod:`repro.obs.log` — structured key=value logging, controlled by
  ``REPRO_LOG_LEVEL`` or :func:`configure_logging`.
* :mod:`repro.obs.spans` — nestable wall-time spans aggregated into a
  hierarchical profile (``with span("fit/epoch"): ...``).
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms (reservoir- or fixed-bucket-backed, see
  :mod:`repro.obs.hist`).
* :mod:`repro.obs.slo` / :mod:`repro.obs.frontier` — declarative SLO
  specs evaluated against load-run summaries, and latency/throughput
  frontier sweeps with a CI-gateable knee artifact.
* :mod:`repro.obs.trace` — request-scoped traces: a span *tree* with
  typed events per request, head-sampled into a bounded recorder, with
  cross-thread context propagation for pooled work.
* :mod:`repro.obs.export` — atomic JSONL export of metrics + span
  profiles + sampled traces so runs and CI can be diffed.
* :mod:`repro.obs.promtext` — OpenMetrics/Prometheus text rendering of
  the same rows (scrape-ready ``.prom`` snapshots).
* :mod:`repro.obs.scrape` — live fleet scraping over the ``stats``
  protocol op: fetch, per-shard aggregation (sum / merge / label),
  scrape-delta SLO summaries (DESIGN.md §15).
* :mod:`repro.obs.report` / :mod:`repro.obs.diff` — the analysis layer
  behind ``repro obs report`` and ``repro obs diff``.

Everything is dependency-free and safe to import from any module; none
of it changes numeric results.  The disabled paths (log level ``off``,
:func:`set_spans_enabled(False) <set_spans_enabled>`,
:func:`set_tracing_enabled(False) <set_tracing_enabled>` — all three
via ``REPRO_TELEMETRY=0``) reduce to an integer comparison, two clock
reads, respectively one thread-local read per call site; no recorder
lock is ever taken while tracing is disabled.
"""

from .export import export_jsonl, read_jsonl
from .frontier import (detect_knee, format_frontier, frontier_rows,
                       load_frontier, save_frontier, sweep_frontier)
from .hist import BucketHistogram, log_bounds
from .log import Logger, configure as configure_logging, get_logger, level_name
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry, registry)
from .promtext import export_prom, render_openmetrics
from .scrape import (aggregate_fleet, combine_summaries, delta_summary,
                     fetch_stats)
from .slo import (ObjectiveResult, SLOResult, SLOSpec, evaluate_slo,
                  format_slo, load_spec)
from .spans import (format_profile, reset_spans, set_spans_enabled, span,
                    span_snapshot, spans_enabled)
from .trace import (SamplePolicy, Trace, TraceRecorder, Tracer,
                    activate_context, add_trace_event, capture_context,
                    current_trace, flag_trace, set_tracing_enabled,
                    shift_span_row, trace_recorder, trace_span, tracer,
                    tracing_enabled)

__all__ = [
    "Logger", "configure_logging", "get_logger", "level_name",
    "span", "span_snapshot", "format_profile", "reset_spans",
    "set_spans_enabled", "spans_enabled",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "registry",
    "BucketHistogram", "log_bounds",
    "SLOSpec", "SLOResult", "ObjectiveResult", "evaluate_slo",
    "format_slo", "load_spec",
    "sweep_frontier", "detect_knee", "frontier_rows",
    "save_frontier", "load_frontier", "format_frontier",
    "export_jsonl", "read_jsonl",
    "export_prom", "render_openmetrics",
    "SamplePolicy", "Trace", "TraceRecorder", "Tracer",
    "trace_recorder", "tracer", "set_tracing_enabled", "tracing_enabled",
    "current_trace", "trace_span", "add_trace_event", "flag_trace",
    "capture_context", "activate_context", "shift_span_row",
    "fetch_stats", "aggregate_fleet", "delta_summary", "combine_summaries",
]
