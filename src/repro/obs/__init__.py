"""Observability: structured logging, span timers and a metrics registry.

One small subsystem gives the whole reproduction a common telemetry
vocabulary:

* :mod:`repro.obs.log` — structured key=value logging, controlled by
  ``REPRO_LOG_LEVEL`` or :func:`configure_logging`.
* :mod:`repro.obs.spans` — nestable wall-time spans aggregated into a
  hierarchical profile (``with span("fit/epoch"): ...``).
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms.
* :mod:`repro.obs.export` — JSONL export of metrics + span profiles so
  benchmark runs and CI can be diffed.

Everything is dependency-free and safe to import from any module; none
of it changes numeric results.  The disabled paths (log level ``off``,
:func:`set_spans_enabled(False) <set_spans_enabled>`) reduce to an
integer comparison respectively two clock reads per call site.
"""

from .export import export_jsonl, read_jsonl
from .log import Logger, configure as configure_logging, get_logger, level_name
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry, registry)
from .spans import (format_profile, reset_spans, set_spans_enabled, span,
                    span_snapshot, spans_enabled)

__all__ = [
    "Logger", "configure_logging", "get_logger", "level_name",
    "span", "span_snapshot", "format_profile", "reset_spans",
    "set_spans_enabled", "spans_enabled",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "registry",
    "export_jsonl", "read_jsonl",
]
