"""A process-wide metrics registry: counters, gauges, histograms.

The registry is the single sink for quantities the reproduction wants
to report or diff across runs — cache hit rates, partition sizes,
per-epoch losses, pairs/sec.  Instruments are created on first use and
keyed by dotted name::

    from repro.obs import registry

    registry().counter("cache.corrupt").inc()
    registry().gauge("train.pairs_per_sec").set(rate)
    registry().histogram("pcp.partition_images").observe(len(images))

Every instrument takes a per-instrument lock so concurrent writers
(e.g. data-parallel workers, serve worker pools) never lose updates;
``Gauge.set`` stays last-write-wins while ``Gauge.inc``/``dec`` adjust
atomically (queue depths).  ``snapshot()`` returns plain dicts in the
same schema the JSONL exporter writes, so tests can assert on either.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from .hist import BucketHistogram
from .spans import _MAX_SAMPLES, Reservoir, percentile

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "registry"]


class Counter:
    """Monotonically increasing count (atomic under a lock)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def row(self) -> dict:
        # read under the lock: a live scrape snapshots while writer
        # threads are mid-inc, and a torn read must never surface
        with self._lock:
            value = self._value
        return {"type": "counter", "name": self.name, "value": value}


class Gauge:
    """A point-in-time value that can move both ways.

    ``set`` is last-write-wins; ``inc``/``dec`` are atomic adjustments
    for values maintained from several threads (queue depth, in-flight
    requests, breaker state transitions).
    """

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def row(self) -> dict:
        with self._lock:
            value = self._value
        return {"type": "gauge", "name": self.name, "value": value}


class Histogram:
    """A distribution summary: count/sum/min/max plus p50/p95.

    Two percentile backends, chosen at creation time:

    * **reservoir** (default, ``buckets=None``) — a seeded uniform
      reservoir of at most ``_MAX_SAMPLES`` samples
      (:class:`~repro.obs.spans.Reservoir`).  Percentiles are
      interpolated from the sample, so they estimate the whole stream
      with no up-front knowledge of its range — but on long runs the
      tail (p99+) rests on however few retained samples land in the top
      percentile, making extreme quantiles noisy estimates.
    * **fixed buckets** (``buckets=<ascending upper bounds>``) — a
      :class:`~repro.obs.hist.BucketHistogram`: every observation is
      counted exactly into a pre-declared log-scale bucket, so any
      quantile (including p99/p999) is wrong by at most one bucket's
      relative width, never by sampling luck, and two histograms over
      the same bounds merge losslessly.  The cost is choosing the
      bucket layout up front; values outside it land in the overflow
      bucket (counted, but quantile resolution degrades to "above the
      last bound").

    Use the reservoir for open-ended value ranges (losses, partition
    sizes); use buckets for latencies and anything whose tail gates a
    decision (SLOs, load-test frontiers).  Count, sum and the extrema
    stay exact under both backends.
    """

    __slots__ = ("name", "_count", "_sum", "_min", "_max", "_samples",
                 "_buckets", "_lock")

    def __init__(self, name: str,
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        if buckets is not None:
            self._samples = None
            self._buckets: Optional[BucketHistogram] = \
                BucketHistogram(buckets)
        else:
            self._samples = Reservoir(_MAX_SAMPLES, seed_key=name)
            self._buckets = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if self._buckets is not None:
                self._buckets.observe(value)
            else:
                self._samples.offer(value)

    def merge_bucket(self, other: BucketHistogram) -> None:
        """Merge a pre-aggregated :class:`BucketHistogram` into this
        (bucket-backed) instrument — how the load harness publishes a
        run's latency distribution without replaying every sample."""
        with self._lock:
            if self._buckets is None:
                raise ValueError(f"histogram {self.name!r} is "
                                 "reservoir-backed; cannot merge buckets")
            self._buckets.merge(other)
            self._count += other.count
            self._sum += other.sum
            self._min = min(self._min, other.min)
            self._max = max(self._max, other.max)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        with self._lock:
            if self._buckets is not None:
                return self._buckets.quantile(q)
            samples = list(self._samples.values)
        return percentile(samples, q)

    def row(self) -> dict:
        with self._lock:
            count, total = self._count, self._sum
            low = self._min if count else 0.0
            high = self._max if count else 0.0
            if self._buckets is not None:
                # Bucket-backed rows additionally carry the raw bucket
                # layout (rendered by promtext as a classic `le` family)
                # and an exact-by-construction p99.
                return {"type": "histogram", "name": self.name,
                        "count": count, "sum": total, "min": low,
                        "max": high,
                        "p50": self._buckets.quantile(50.0),
                        "p95": self._buckets.quantile(95.0),
                        "p99": self._buckets.quantile(99.0),
                        "buckets": {"bounds": list(self._buckets.bounds),
                                    "counts": list(self._buckets.counts)}}
            samples = list(self._samples.values)
        return {"type": "histogram", "name": self.name, "count": count,
                "sum": total, "min": low, "max": high,
                "p50": percentile(samples, 50.0),
                "p95": percentile(samples, 95.0)}


class MetricsRegistry:
    """Get-or-create home for all instruments of one process/test."""

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(name, **kwargs)
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {cls.__name__}")
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get-or-create; ``buckets`` selects the fixed-bucket backend
        on first creation (ignored if the instrument already exists)."""
        if buckets is not None:
            return self._get(name, Histogram, buckets=buckets)
        return self._get(name, Histogram)

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        with self._lock:
            return self._instruments.get(name)

    def snapshot(self) -> List[dict]:
        """One schema row per instrument, sorted by name."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return [instrument.row() for _, instrument in instruments]

    def reset(self) -> None:
        """Drop every instrument (a fresh start per run/test)."""
        with self._lock:
            self._instruments.clear()


_default = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default
