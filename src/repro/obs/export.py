"""JSONL export of metrics and span profiles.

One line per record.  The first line is a ``meta`` header; every other
line is either a registry instrument row or a span row::

    {"type": "meta", "schema_version": 1, "created_unix": ..., ...}
    {"type": "counter", "name": "cache.hit", "value": 3}
    {"type": "gauge", "name": "train.pairs_per_sec", "value": 812.4}
    {"type": "histogram", "name": "train.epoch_loss", "count": 10,
     "sum": ..., "min": ..., "max": ..., "p50": ..., "p95": ...}
    {"type": "span", "name": "fit/epoch", "count": 10,
     "total_seconds": ..., "p50_seconds": ..., "p95_seconds": ...}

JSONL rather than one JSON blob so benchmark runs can be diffed with
line-oriented tools and appended to without re-parsing.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import List, Optional

from .metrics import MetricsRegistry, registry
from .spans import span_snapshot

__all__ = ["SCHEMA_VERSION", "export_jsonl", "read_jsonl"]

SCHEMA_VERSION = 1


def export_jsonl(path, reg: Optional[MetricsRegistry] = None,
                 include_spans: bool = True,
                 meta: Optional[dict] = None) -> int:
    """Write the registry (default: process-wide) and span profile to
    ``path``; returns the number of rows written (incl. the header)."""
    reg = reg if reg is not None else registry()
    rows: List[dict] = [{"type": "meta", "schema_version": SCHEMA_VERSION,
                         "created_unix": time.time(), **(meta or {})}]
    rows.extend(reg.snapshot())
    if include_spans:
        rows.extend(span_snapshot())
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows)


def read_jsonl(path) -> List[dict]:
    """Parse a metrics JSONL file back into a list of row dicts."""
    rows: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows
