"""JSONL export of metrics, span profiles and sampled traces.

One line per record.  The first line is a ``meta`` header; every other
line is a registry instrument row, a span row, or (schema v2) a sampled
request trace::

    {"type": "meta", "schema_version": 3, "created_unix": ..., ...}
    {"type": "counter", "name": "cache.hit", "value": 3}
    {"type": "gauge", "name": "train.pairs_per_sec", "value": 812.4}
    {"type": "histogram", "name": "train.epoch_loss", "count": 10,
     "sum": ..., "min": ..., "max": ..., "p50": ..., "p95": ...}
    {"type": "span", "name": "fit/epoch", "count": 10,
     "total_seconds": ..., "p50_seconds": ..., "p95_seconds": ...}
    {"type": "trace", "trace_id": "...", "name": "serve.request",
     "flags": ["degraded"], "sampled": "forced", "duration_ms": ...,
     "spans": {"name": ..., "start_ms": ..., "duration_ms": ...,
               "events": [...], "children": [...]}}

JSONL rather than one JSON blob so benchmark runs can be diffed with
line-oriented tools and appended to without re-parsing.

The file is published atomically (:func:`repro.iosafe.atomic_write_bytes`):
a crash mid-export leaves the previous version or the complete new one,
never a truncated line.  :func:`read_jsonl` additionally tolerates
truncation from *other* writers — an undecodable line is skipped and
counted (``obs.read.corrupt_lines``) instead of poisoning the whole
file.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import List, Optional

from .metrics import MetricsRegistry, registry
from .spans import span_snapshot
from .trace import TraceRecorder, trace_recorder

__all__ = ["SCHEMA_VERSION", "export_jsonl", "read_jsonl"]

#: v2 added ``trace`` rows (request span trees); v3 adds optional
#: ``buckets`` payloads on histogram rows (bucket-backed instruments),
#: a ``p99`` facet alongside them, and ``started`` + ``request`` events
#: on trace rows so exported traces can be replayed as load schedules.
#: Older files still read fine — every addition is a new optional key.
SCHEMA_VERSION = 3


def export_jsonl(path, reg: Optional[MetricsRegistry] = None,
                 include_spans: bool = True,
                 include_traces: bool = True,
                 recorder: Optional[TraceRecorder] = None,
                 meta: Optional[dict] = None) -> int:
    """Atomically write the registry (default: process-wide), span
    profile and sampled traces to ``path``; returns the number of rows
    written (incl. the header)."""
    from ..iosafe import atomic_write_bytes  # late: iosafe imports repro.obs

    reg = reg if reg is not None else registry()
    rows: List[dict] = [{"type": "meta", "schema_version": SCHEMA_VERSION,
                         "created_unix": time.time(), **(meta or {})}]
    rows.extend(reg.snapshot())
    if include_spans:
        rows.extend(span_snapshot())
    if include_traces:
        recorder = recorder if recorder is not None else trace_recorder()
        rows.extend(recorder.snapshot())
    payload = "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)
    atomic_write_bytes(Path(path), payload.encode("utf-8"))
    return len(rows)


def read_jsonl(path) -> List[dict]:
    """Parse a metrics JSONL file back into a list of row dicts.

    An undecodable line (a torn write from a non-atomic producer, a
    crash mid-append) is skipped rather than raised: each one increments
    the ``obs.read.corrupt_lines`` counter so silent data loss still
    shows up in telemetry.
    """
    from .log import get_logger  # late import keeps module deps one-way

    rows: List[dict] = []
    skipped = 0
    with Path(path).open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except ValueError:
                skipped += 1
                get_logger("repro.obs.export").warning(
                    "skipping corrupt metrics line", path=str(path),
                    line=number)
    if skipped:
        registry().counter("obs.read.corrupt_lines").inc(skipped)
    return rows
