"""Human-readable report over an exported metrics/trace JSONL file.

``repro obs report run.jsonl`` renders two views of one export:

* the aggregate span profile as an indented flame-style table
  (per-path count / total / p50 / p95, children under parents, heaviest
  siblings first) — the process-wide "where does time go";
* the top-N slowest sampled traces, each as its span tree with typed
  events (breaker transitions, degradation decisions, deadline checks,
  cache hits, sheds) interleaved in causal (timestamp) order — the
  per-request "where did *this* request's time go";
* any bucket-backed histograms (schema v3 rows carrying a ``buckets``
  payload, e.g. ``load.latency_ms``) as ASCII bar charts with exact
  per-bucket counts.

Everything renders from the exported rows alone, so reports work on any
machine the JSONL lands on, long after the serving process is gone.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_span_table", "format_bucket_histogram", "format_trace",
           "format_report"]


def format_span_table(rows: Iterable[dict]) -> str:
    """The aggregate span rows as an indented tree, heaviest first
    (same layout as :func:`repro.obs.spans.format_profile`, but driven
    from exported rows)."""
    by_path = {row["name"]: row for row in rows if row.get("type") == "span"}
    if not by_path:
        return ""
    children: Dict[Optional[str], List[str]] = {}
    for path in by_path:
        parent = path.rsplit("/", 1)[0] if "/" in path else None
        if parent is not None and parent not in by_path:
            parent = None
        children.setdefault(parent, []).append(path)

    lines = [f"{'span':40s} {'count':>7s} {'total':>9s} "
             f"{'p50':>9s} {'p95':>9s}"]

    def emit(path: str, depth: int) -> None:
        row = by_path[path]
        label = "  " * depth + path.rsplit("/", 1)[-1]
        lines.append(f"{label:40s} {row['count']:7d} "
                     f"{row['total_seconds']:8.3f}s "
                     f"{row['p50_seconds']:8.4f}s "
                     f"{row['p95_seconds']:8.4f}s")
        for child in sorted(children.get(path, []),
                            key=lambda p: -by_path[p]["total_seconds"]):
            emit(child, depth + 1)

    for top in sorted(children.get(None, []),
                      key=lambda p: -by_path[p]["total_seconds"]):
        emit(top, 0)
    return "\n".join(lines)


def format_bucket_histogram(row: dict, *, width: int = 40) -> str:
    """One bucket-backed histogram row as an ASCII bar chart.

    Empty leading/trailing buckets are trimmed; each kept bucket shows
    its upper bound, exact count, and a bar scaled to the modal bucket.
    """
    payload = row.get("buckets") or {}
    bounds = list(payload.get("bounds", ()))
    counts = list(payload.get("counts", ()))
    header = (f"{row['name']}  count={row['count']} "
              f"sum={row['sum']:.6g} p50={row.get('p50', 0.0):.6g} "
              f"p95={row.get('p95', 0.0):.6g} p99={row.get('p99', 0.0):.6g}")
    occupied = [index for index, count in enumerate(counts) if count]
    if not occupied:
        return header + "\n  (empty)"
    first, last = occupied[0], occupied[-1]
    peak = max(counts[first:last + 1])
    lines = [header]
    for index in range(first, last + 1):
        bound = "+Inf" if index >= len(bounds) else f"{bounds[index]:.4g}"
        bar = "#" * max(1 if counts[index] else 0,
                        round(counts[index] / peak * width))
        lines.append(f"  le {bound:>10s} {counts[index]:>8d} {bar}")
    return "\n".join(lines)


def _format_attrs(attrs: dict) -> str:
    return " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))


def _emit_span(span: dict, depth: int, lines: List[str]) -> None:
    indent = "  " * depth
    # subtrees grafted from another process carry a "process" marker
    # (DESIGN.md §15) — surface the boundary in the rendered timeline
    name = span["name"]
    if span.get("process"):
        name = f"[{span['process']}] {name}"
    lines.append(f"{indent}{name:{max(1, 42 - len(indent))}s} "
                 f"@{span['start_ms']:8.2f}ms "
                 f"+{span['duration_ms']:8.2f}ms")
    # Children and events share one causal timeline inside their parent:
    # merge them by timestamp so e.g. a breaker transition prints before
    # the tier span it caused to be skipped.
    timeline = [("span", child["start_ms"], child)
                for child in span.get("children", ())]
    timeline += [("event", event["at_ms"], event)
                 for event in span.get("events", ())]
    timeline.sort(key=lambda item: item[1])
    for kind, _, item in timeline:
        if kind == "span":
            _emit_span(item, depth + 1, lines)
        else:
            attrs = _format_attrs(item.get("attrs", {}))
            lines.append(f"{'  ' * (depth + 1)}* {item['kind']}"
                         f"{' ' + attrs if attrs else '':s} "
                         f"@{item['at_ms']:.2f}ms")


def format_trace(trace: dict) -> str:
    """One trace row as an indented span tree with its event timeline."""
    flags = ",".join(trace.get("flags", ())) or "-"
    lines = [f"trace {trace['trace_id']}  {trace.get('name', 'request')}  "
             f"{trace['duration_ms']:.2f}ms  flags={flags}  "
             f"sampled={trace.get('sampled', 'head')}"]
    _emit_span(trace["spans"], 1, lines)
    return "\n".join(lines)


def format_report(rows: Sequence[dict], top: int = 5) -> str:
    """The full report: meta header, span table, slowest traces."""
    sections: List[str] = []
    meta = next((row for row in rows if row.get("type") == "meta"), None)
    if meta is not None:
        detail = " ".join(f"{key}={meta[key]}" for key in sorted(meta)
                          if key not in ("type",))
        sections.append(f"export {detail}")
    table = format_span_table(rows)
    if table:
        sections.append("== span profile ==\n" + table)
    bucket_rows = [row for row in rows
                   if row.get("type") == "histogram" and row.get("buckets")]
    if bucket_rows:
        body = "\n\n".join(format_bucket_histogram(row)
                           for row in bucket_rows)
        sections.append("== latency histograms ==\n" + body)
    traces = [row for row in rows if row.get("type") == "trace"]
    if traces:
        slowest = sorted(traces, key=lambda t: -t["duration_ms"])[:top]
        body = "\n\n".join(format_trace(trace) for trace in slowest)
        sections.append(f"== slowest traces ({len(slowest)} of "
                        f"{len(traces)} sampled) ==\n" + body)
    if not sections:
        return "nothing to report: export holds no spans or traces"
    return "\n\n".join(sections)
