"""Diff two metric exports, with regression thresholds for CI gating.

``repro obs diff old.jsonl new.jsonl`` flattens every instrument of two
exports into scalar series (histograms and spans contribute their
``count``/``sum``/``p50``/``p95`` facets), prints the per-instrument
delta, and exits non-zero when a *watched* metric regressed past the
threshold — so a serve smoke or benchmark run can gate a build on its
own telemetry.

Two input formats are accepted per side:

* an exporter JSONL file (``--metrics-out`` output, any schema version);
* a ``bench_hotpaths.py`` JSON report (``BENCH_hotpaths.json`` or the
  committed quick baseline): its ``paths.<name>.{optimized_s,...}``
  entries become synthetic gauges named ``bench.<name>.<field>``, so the
  committed benchmark baseline works directly as the "old" side;
* a frontier artifact (``repro load sweep --output``, detected by its
  ``repro.frontier/1`` schema): the knee and per-point summaries become
  ``frontier.*`` gauges — notably ``frontier.knee.interarrival_ms``,
  time-shaped so a capacity loss trips the default watch like any
  latency regression.

A regression is: the metric matches a watch pattern (default: the
time-shaped names ``*seconds*``, ``*_s``, ``*_ms``, ``*.p50``,
``*.p95``, ``*duration*`` — where bigger is worse), it *increased*, the
relative increase exceeds ``threshold_pct`` **and** the absolute
increase exceeds ``min_delta`` (micro-benchmark noise floor).
"""

from __future__ import annotations

import dataclasses
import json
import math
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .export import read_jsonl

__all__ = ["DEFAULT_WATCH", "DiffEntry", "load_rows", "flatten_rows",
           "diff_rows", "find_regressions", "format_diff"]

#: metric-name globs where an increase is a regression by default
DEFAULT_WATCH = ("*seconds*", "*_s", "*_ms", "*.p50", "*.p95", "*duration*")


@dataclasses.dataclass(frozen=True)
class DiffEntry:
    """One metric compared across the two exports."""

    name: str
    old: Optional[float]
    new: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        if self.old is None or self.new is None:
            return None
        return self.new - self.old

    @property
    def pct(self) -> Optional[float]:
        if self.old is None or self.new is None:
            return None
        if self.old == 0.0:
            return math.inf if self.new != 0.0 else 0.0
        return (self.new - self.old) / abs(self.old) * 100.0


def _rows_from_bench(doc: dict) -> List[dict]:
    """Synthetic gauge rows from a ``bench_hotpaths.py`` report."""
    rows: List[dict] = []
    for path_name, entry in sorted(doc.get("paths", {}).items()):
        for field, value in sorted(entry.items()):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                rows.append({"type": "gauge",
                             "name": f"bench.{path_name}.{field}",
                             "value": float(value)})
    return rows


def load_rows(path) -> List[dict]:
    """Exporter rows from ``path`` — a metrics JSONL file, a
    ``bench_hotpaths.py`` JSON report (detected by its ``paths`` key),
    or a frontier artifact (detected by its schema)."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except ValueError:
            doc = None
        if isinstance(doc, dict):
            from .frontier import frontier_rows, is_frontier_doc

            if is_frontier_doc(doc):
                return frontier_rows(doc)
            if "paths" in doc:
                return _rows_from_bench(doc)
    return read_jsonl(path)


def flatten_rows(rows: Iterable[dict]) -> Dict[str, float]:
    """Every instrument as scalar series keyed by dotted name."""
    flat: Dict[str, float] = {}
    for row in rows:
        kind = row.get("type")
        name = row.get("name")
        if kind in ("counter", "gauge"):
            flat[name] = float(row["value"])
        elif kind == "histogram":
            for field in ("count", "sum", "p50", "p95"):
                flat[f"{name}.{field}"] = float(row[field])
            # bucket-backed histograms carry an exact tail facet too
            if "p99" in row:
                flat[f"{name}.p99"] = float(row["p99"])
        elif kind == "span":
            flat[f"{name}.count"] = float(row["count"])
            flat[f"{name}.total_seconds"] = float(row["total_seconds"])
            flat[f"{name}.p50"] = float(row["p50_seconds"])
            flat[f"{name}.p95"] = float(row["p95_seconds"])
        # meta and trace rows carry no diffable scalars
    return flat


def diff_rows(old_rows: Iterable[dict],
              new_rows: Iterable[dict]) -> List[DiffEntry]:
    """Compare two row sets; metrics present on one side only appear
    with ``None`` on the other (never a regression, always visible)."""
    old_flat = flatten_rows(old_rows)
    new_flat = flatten_rows(new_rows)
    names = sorted(set(old_flat) | set(new_flat))
    return [DiffEntry(name, old_flat.get(name), new_flat.get(name))
            for name in names]


def find_regressions(entries: Sequence[DiffEntry], *,
                     threshold_pct: float = 25.0,
                     min_delta: float = 0.0,
                     watch: Sequence[str] = DEFAULT_WATCH) -> List[DiffEntry]:
    """The entries that breach the regression policy (see module doc)."""
    breaches = []
    for entry in entries:
        if entry.delta is None or entry.delta <= 0:
            continue
        if not any(fnmatch(entry.name, pattern) for pattern in watch):
            continue
        if entry.delta < min_delta:
            continue
        pct = entry.pct
        if pct is not None and pct > threshold_pct:
            breaches.append(entry)
    return breaches


def _fmt_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.6g}"


def format_diff(entries: Sequence[DiffEntry],
                regressions: Sequence[DiffEntry] = (), *,
                changed_only: bool = False) -> str:
    """Aligned per-metric delta table; regressions are marked ``!``."""
    breached = {entry.name for entry in regressions}
    lines = [f"{'':1s} {'metric':44s} {'old':>12s} {'new':>12s} "
             f"{'delta':>12s} {'pct':>9s}"]
    for entry in entries:
        if changed_only and (entry.delta is None or entry.delta == 0.0):
            if entry.old is not None and entry.new is not None:
                continue
        pct = entry.pct
        pct_text = "-" if pct is None else (
            "inf" if math.isinf(pct) else f"{pct:+.1f}%")
        marker = "!" if entry.name in breached else " "
        lines.append(f"{marker} {entry.name:44s} {_fmt_value(entry.old):>12s} "
                     f"{_fmt_value(entry.new):>12s} "
                     f"{_fmt_value(entry.delta):>12s} {pct_text:>9s}")
    return "\n".join(lines)
