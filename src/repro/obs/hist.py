"""Fixed-bucket log-scale histograms: exact, mergeable, tail-honest.

The reservoir histograms in :mod:`repro.obs.spans` /
:mod:`repro.obs.metrics` estimate percentiles from a bounded uniform
sample.  That is the right trade for unbounded-cardinality span paths,
but it is *tail-blind*: on a long run p99+ is interpolated from however
few of the 4096 retained samples happen to sit in the top percentile,
so a load test's most important number becomes a noisy estimate.

A :class:`BucketHistogram` takes the opposite trade.  The bucket
boundaries are fixed up front (log-scale, so relative error is uniform
across decades of latency) and every observation lands in exactly one
bucket counter:

* **exact counts** — no sampling, no reservoir distortion in the tail:
  a quantile is wrong by at most one bucket's relative width
  (~21 % at the default 12 buckets/decade), never by sampling luck;
* **mergeable** — two histograms over the same boundaries add
  bucket-wise, so per-worker or per-sweep-point results combine into
  one distribution without re-observing anything;
* **bounded memory** — ~70 integers for the default latency layout,
  regardless of how many observations arrive.

Instances are *not* internally locked; callers that share one across
threads synchronise around it (``repro.obs.metrics.Histogram`` does,
and the load harness records under its own lock).
"""

from __future__ import annotations

import bisect
import math
from typing import List, Optional, Sequence

__all__ = ["BucketHistogram", "log_bounds", "DEFAULT_LATENCY_BOUNDS_MS"]


def log_bounds(lo: float, hi: float, per_decade: int = 12) -> List[float]:
    """Geometric bucket upper bounds from ``lo`` until ``hi`` is covered.

    ``per_decade`` buckets per factor of 10 keeps the relative width of
    every bucket at ``10**(1/per_decade)`` (≈1.21 for the default), so a
    quantile read from the histogram is off by at most that factor.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi for log-scale bounds")
    if per_decade < 1:
        raise ValueError("per_decade must be at least 1")
    count = int(math.ceil(per_decade * math.log10(hi / lo))) + 1
    return [lo * 10.0 ** (i / per_decade) for i in range(count)]


#: default layout for request latencies in milliseconds: 0.1 ms .. 60 s
DEFAULT_LATENCY_BOUNDS_MS: Sequence[float] = tuple(
    log_bounds(0.1, 60_000.0, per_decade=12))


class BucketHistogram:
    """Exact counts over fixed bucket boundaries, plus count/sum/min/max.

    ``bounds`` are ascending bucket *upper* edges; an implicit overflow
    bucket (``+Inf``) catches everything above the last edge, so no
    observation is ever dropped.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        if bounds is None:
            bounds = DEFAULT_LATENCY_BOUNDS_MS
        bounds = [float(b) for b in bounds]
        if not bounds:
            raise ValueError("at least one bucket bound is required")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly ascending")
        self.bounds: List[float] = bounds
        #: one slot per bound plus the +Inf overflow slot
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "BucketHistogram") -> None:
        """Add ``other``'s distribution into this one (same bounds)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different "
                             "bucket bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def delta_from(self, older: "BucketHistogram") -> "BucketHistogram":
        """The distribution observed *between* two cumulative snapshots
        of the same instrument (same bounds; ``older`` taken first) —
        how a live scraper turns two point-in-time scrapes into the
        window's latency distribution.

        The window's true min/max are unrecoverable from cumulative
        extrema, so they are bounded by the occupied buckets' edges
        (keeping :meth:`quantile`'s clamping sane) — a quantile read off
        the delta is still wrong by at most one bucket width.
        """
        if older.bounds != self.bounds:
            raise ValueError("cannot delta histograms with different "
                             "bucket bounds")
        counts = [a - b for a, b in zip(self.counts, older.counts)]
        if self.count < older.count or any(c < 0 for c in counts):
            raise ValueError("newer snapshot is behind the older one "
                             "(instrument was reset between scrapes?)")
        delta = BucketHistogram(self.bounds)
        delta.counts = counts
        delta.count = self.count - older.count
        delta.sum = self.sum - older.sum
        occupied = [i for i, c in enumerate(counts) if c]
        if occupied:
            delta.min = 0.0 if occupied[0] == 0 \
                else self.bounds[occupied[0] - 1]
            delta.max = self.max if occupied[-1] >= len(self.bounds) \
                else self.bounds[occupied[-1]]
        return delta

    def cumulative(self) -> List[tuple]:
        """``(upper_bound, cumulative_count)`` pairs ending at ``+Inf``
        — the classic Prometheus ``le`` bucket series."""
        out = []
        running = 0
        for bound, c in zip(self.bounds, self.counts):
            running += c
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile (q in [0, 100]), interpolated inside
        the bucket that holds the target rank and clamped to the exact
        observed [min, max]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = (q / 100.0) * self.count
        running = 0.0
        lo = 0.0
        for bound, c in zip(self.bounds, self.counts):
            if c and running + c >= rank:
                fraction = (rank - running) / c
                value = lo + fraction * (bound - lo)
                return min(max(value, self.min), self.max)
            running += c
            lo = bound
        return self.max  # target rank lies in the +Inf overflow bucket

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "BucketHistogram":
        hist = cls(doc["bounds"])
        counts = [int(c) for c in doc["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError("counts/bounds length mismatch")
        hist.counts = counts
        hist.count = int(doc["count"])
        hist.sum = float(doc["sum"])
        hist.min = float(doc["min"]) if hist.count else math.inf
        hist.max = float(doc["max"]) if hist.count else -math.inf
        return hist
