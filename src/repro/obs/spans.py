"""Nestable span timers aggregated into a hierarchical profile.

Usage::

    from repro.obs import span

    with span("fit"):
        for _ in range(epochs):
            with span("epoch") as ep:
                ...
            seconds.append(ep.elapsed)

Nesting builds slash-joined paths: the inner span above aggregates
under ``fit/epoch``.  A span opened outside any other span keeps its
name verbatim, so ``span("fit/epoch")`` at top level lands in the same
bucket — the path *is* the identity.

Per path the aggregator keeps call count, total wall time and a bounded
*reservoir* of samples for p50/p95: every observation has an equal
chance of being retained (Vitter's Algorithm R), so the percentiles
estimate the whole run, not just its first ``_MAX_SAMPLES`` calls.
Reservoirs trade tail fidelity for shape-free storage — good enough for
profiling spans, but not for SLO verdicts at p99 and beyond, where the
handful of samples past the 99th rank are exactly the ones a uniform
sample is likeliest to have dropped.  Distributions that feed SLOs use
the exact fixed-bucket backend instead
(:class:`repro.obs.hist.BucketHistogram`, available on registry
histograms via ``registry().histogram(name, buckets=...)``); the
tradeoff is documented in full on :class:`repro.obs.metrics.Histogram`.
Aggregation is process-wide and thread-safe; the nesting stack is
thread-local, so concurrent threads profile independently without
seeing each other's parents.

Disabled path: :func:`set_spans_enabled(False) <set_spans_enabled>` (or
``REPRO_TELEMETRY=0`` in the environment) skips the stack push and the
locked aggregation entirely.  A span still measures its own
``elapsed`` — two ``perf_counter`` reads, the exact cost of the ad-hoc
timing the span API replaced — so code that *consumes* a span's elapsed
time (e.g. the matcher's efficiency report) behaves identically either
way.
"""

from __future__ import annotations

import os
import random
import threading
import time
import zlib
from typing import Dict, List, Optional

__all__ = ["Span", "span", "span_snapshot", "format_profile", "reset_spans",
           "set_spans_enabled", "spans_enabled", "percentile", "Reservoir"]

#: reservoir capacity per path — count/total stay exact beyond this;
#: percentiles become uniform-sample estimates over the *whole* run
_MAX_SAMPLES = 4096


def _telemetry_env_enabled() -> bool:
    """Whether ``REPRO_TELEMETRY`` enables telemetry (shared by the span
    aggregator and the tracer, which gate independently after import)."""
    return os.environ.get("REPRO_TELEMETRY", "1").strip().lower() \
        not in ("0", "false", "off")


_lock = threading.Lock()
_local = threading.local()
_enabled = _telemetry_env_enabled()


class Reservoir:
    """Fixed-size uniform sample of an unbounded stream.

    Vitter's Algorithm R: observation ``i`` (1-based) replaces a random
    slot with probability ``capacity / i``, which keeps every
    observation equally likely to be in the reservoir at any point.
    Percentiles computed from it are therefore unbiased estimates of
    the full stream's percentiles, instead of describing only the first
    ``capacity`` observations the old truncating buffer kept.

    The RNG is seeded from ``seed_key`` (typically the instrument name)
    so identical runs keep identical samples — percentile assertions in
    tests and diffs between runs stay deterministic.
    """

    __slots__ = ("capacity", "seen", "values", "_rng")

    def __init__(self, capacity: int, seed_key: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.seen = 0
        self.values: List[float] = []
        self._rng = random.Random(zlib.crc32(seed_key.encode("utf-8")))

    def offer(self, value: float) -> None:
        self.seen += 1
        if len(self.values) < self.capacity:
            self.values.append(value)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self.values[slot] = value

    def __len__(self) -> int:
        return len(self.values)


class _SpanStats:
    __slots__ = ("count", "total", "samples")

    def __init__(self, path: str = "") -> None:
        self.count = 0
        self.total = 0.0
        self.samples = Reservoir(_MAX_SAMPLES, seed_key=path)

    def add(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        self.samples.offer(elapsed)


_stats: Dict[str, _SpanStats] = {}


def set_spans_enabled(flag: bool) -> None:
    """Globally enable/disable span aggregation (elapsed still works)."""
    global _enabled
    _enabled = bool(flag)


def spans_enabled() -> bool:
    return _enabled


def _stack() -> List[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


class Span:
    """Context manager timing one region; reusable objects are cheap."""

    __slots__ = ("name", "path", "_start", "elapsed")

    def __init__(self, name: str) -> None:
        self.name = name
        self.path = name
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Span":
        if _enabled:
            stack = _stack()
            self.path = f"{stack[-1]}/{self.name}" if stack else self.name
            stack.append(self.path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._start
        if _enabled:
            stack = _stack()
            if stack and stack[-1] == self.path:
                stack.pop()
            with _lock:
                stats = _stats.get(self.path)
                if stats is None:
                    stats = _stats[self.path] = _SpanStats(self.path)
                stats.add(self.elapsed)


def span(name: str) -> Span:
    """Open a (nestable) timed span named ``name``."""
    return Span(name)


def percentile(samples: List[float], q: float) -> float:
    """Linear-interpolation percentile of ``samples`` (q in [0, 100])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * (q / 100.0)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def span_snapshot() -> List[dict]:
    """Aggregated stats per span path, sorted by path.

    Schema per row: ``{"type": "span", "name", "count", "total_seconds",
    "p50_seconds", "p95_seconds"}`` — the same rows the JSONL exporter
    writes.
    """
    with _lock:
        items = [(path, stats.count, stats.total, list(stats.samples.values))
                 for path, stats in _stats.items()]
    rows = []
    for path, count, total, samples in sorted(items):
        rows.append({
            "type": "span",
            "name": path,
            "count": count,
            "total_seconds": total,
            "p50_seconds": percentile(samples, 50.0),
            "p95_seconds": percentile(samples, 95.0),
        })
    return rows


def reset_spans() -> None:
    """Drop all aggregated span stats (the nesting stack is untouched)."""
    with _lock:
        _stats.clear()


def format_profile() -> str:
    """Render the aggregate as an indented tree, heaviest siblings first.

    Returns ``""`` when nothing was recorded, so callers can skip the
    header for unprofiled runs.
    """
    rows = span_snapshot()
    if not rows:
        return ""
    by_path = {row["name"]: row for row in rows}
    children: Dict[Optional[str], List[str]] = {}
    for path in by_path:
        parent = path.rsplit("/", 1)[0] if "/" in path else None
        if parent is not None and parent not in by_path:
            parent = None  # orphaned path: show at top level
        children.setdefault(parent, []).append(path)

    lines = [f"{'span':40s} {'count':>7s} {'total':>9s} "
             f"{'p50':>9s} {'p95':>9s}"]

    def emit(path: str, depth: int) -> None:
        row = by_path[path]
        label = "  " * depth + path.rsplit("/", 1)[-1]
        lines.append(f"{label:40s} {row['count']:7d} "
                     f"{row['total_seconds']:8.3f}s "
                     f"{row['p50_seconds']:8.4f}s "
                     f"{row['p95_seconds']:8.4f}s")
        for child in sorted(children.get(path, []),
                            key=lambda p: -by_path[p]["total_seconds"]):
            emit(child, depth + 1)

    for top in sorted(children.get(None, []),
                      key=lambda p: -by_path[p]["total_seconds"]):
        emit(top, 0)
    return "\n".join(lines)
