"""Structured logging with a near-zero disabled fast path.

A deliberate non-use of :mod:`logging`: the stdlib's handler/formatter
machinery costs a surprising amount per suppressed record, while
training loops here may log per epoch inside benchmarks that are being
*timed*.  Instead every log call starts with one integer comparison
against a module-level threshold; only calls at or above the threshold
pay for formatting.

Records are single lines of ``key=value`` pairs after the message::

    12:01:44 INFO repro.core.matcher epoch done epoch=3 loss=0.4381 pairs=2048

The threshold comes from ``REPRO_LOG_LEVEL`` (``debug``, ``info``,
``warning`` (default), ``error``, ``off``) and can be changed at runtime
with :func:`configure` (the CLI's ``--log-level`` does exactly that).
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, Optional, TextIO

__all__ = ["LEVELS", "Logger", "configure", "get_logger", "level_name"]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}
_LEVEL_LABEL = {10: "DEBUG", 20: "INFO", 30: "WARNING", 40: "ERROR"}

_DEFAULT_LEVEL = "warning"

# Module-level state read on every log call; an int compare against
# ``_threshold`` is the whole cost of a suppressed record.
_threshold = LEVELS[_DEFAULT_LEVEL]
_stream: Optional[TextIO] = None  # None -> sys.stderr at emit time


def _env_threshold() -> int:
    name = os.environ.get("REPRO_LOG_LEVEL", _DEFAULT_LEVEL).strip().lower()
    return LEVELS.get(name, LEVELS[_DEFAULT_LEVEL])


_threshold = _env_threshold()


def configure(level: Optional[str] = None,
              stream: Optional[TextIO] = None) -> None:
    """Set the global log level (and optionally the output stream).

    ``level=None`` re-reads ``REPRO_LOG_LEVEL`` from the environment.
    Unknown level names raise ``ValueError`` rather than being silently
    swallowed — a typo'd ``--log-level`` should fail loudly.
    """
    global _threshold, _stream
    if level is None:
        _threshold = _env_threshold()
    else:
        key = level.strip().lower()
        if key not in LEVELS:
            raise ValueError(f"unknown log level {level!r}; "
                             f"expected one of {sorted(LEVELS)}")
        _threshold = LEVELS[key]
    if stream is not None:
        _stream = stream


def level_name() -> str:
    """The currently-active level name (``"off"`` when disabled)."""
    for name, value in LEVELS.items():
        if value == _threshold:
            return name
    return "off"


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    text = str(value)
    if " " in text or "=" in text:
        return repr(text)
    return text


class Logger:
    """A named logger carrying bound ``key=value`` context fields."""

    __slots__ = ("name", "_context")

    def __init__(self, name: str,
                 context: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self._context = context or {}

    def bind(self, **fields) -> "Logger":
        """A child logger whose records always carry ``fields``."""
        merged = dict(self._context)
        merged.update(fields)
        return Logger(self.name, merged)

    def _emit(self, levelno: int, msg: str, fields: Dict[str, object]) -> None:
        parts = [time.strftime("%H:%M:%S"), _LEVEL_LABEL[levelno],
                 self.name, msg]
        for key, value in self._context.items():
            parts.append(f"{key}={_format_value(value)}")
        for key, value in fields.items():
            parts.append(f"{key}={_format_value(value)}")
        stream = _stream if _stream is not None else sys.stderr
        print(" ".join(parts), file=stream)

    def debug(self, msg: str, **fields) -> None:
        if _threshold <= 10:
            self._emit(10, msg, fields)

    def info(self, msg: str, **fields) -> None:
        if _threshold <= 20:
            self._emit(20, msg, fields)

    def warning(self, msg: str, **fields) -> None:
        if _threshold <= 30:
            self._emit(30, msg, fields)

    def error(self, msg: str, **fields) -> None:
        if _threshold <= 40:
            self._emit(40, msg, fields)

    def isEnabledFor(self, level: str) -> bool:
        return _threshold <= LEVELS[level]


def get_logger(name: str) -> Logger:
    """Module-level entry point: ``_log = get_logger(__name__)``."""
    return Logger(name)
