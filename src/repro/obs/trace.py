"""Request-scoped tracing: one tree of timed spans per request.

The process-wide span aggregate (:mod:`repro.obs.spans`) answers "where
does time go *overall*"; it cannot answer "where did *this* request's
time go" — which is the question a degraded or deadline-blown query
raises.  A :class:`Trace` carries that per-request story:

* a stable ``trace_id`` returned to the client in every response, so a
  slow answer can be looked up in the exported telemetry;
* a tree of timed spans (:class:`TraceSpan`) with typed, timestamped
  events — breaker transitions, degradation-tier decisions, deadline
  checks, cache hits/misses, load shedding — in causal order;
* head sampling (:class:`SamplePolicy`): a configurable keep rate drawn
  at trace start, with flagged traces (``error``, ``degraded``,
  ``deadline``, ``shed``) *always* retained regardless of the draw, so
  the interesting tail is never sampled away;
* a bounded in-process :class:`TraceRecorder` whose snapshot exports as
  ``{"type": "trace", ...}`` rows through the schema-v2 JSONL exporter.

Cross-*process* propagation (DESIGN.md §15): every span carries a
``span_id`` stable within its trace, and :meth:`Tracer.start` can *join*
a caller-supplied ``trace_id``/``parent_span_id`` instead of minting —
how a shard worker continues the router's trace across the wire.  The
worker ships its finished span tree back compactly
(:meth:`Trace.to_wire`); the caller re-bases the offsets with
:func:`shift_span_row` and hangs the subtree under the attempt span that
won (:meth:`Trace.graft`), yielding one causal timeline spanning both
processes.

Cross-thread propagation: the active (trace, span) context is
thread-local, so worker threads do not see it by default.  A dispatcher
captures it with :func:`capture_context` *before* handing work to a
pool, and each pooled task re-enters it with :func:`activate_context`;
spans the task opens then land under the owning request's tree, not the
worker thread's own (empty) stack.  :func:`repro.vision.pipeline.chunked_encode`
does exactly this for pooled encode chunks.

Disabled path: with ``REPRO_TELEMETRY=0`` (or
:func:`set_tracing_enabled(False) <set_tracing_enabled>`)
:meth:`Tracer.start` returns the shared :data:`NULL_TRACE`, whose every
method is a pass — no id is minted, no lock (recorder or trace) is ever
taken, and :func:`trace_span`/:func:`add_trace_event` fall through on a
single thread-local read.

Timestamps come from the tracer's injectable clock, so tests drive
whole traces on fake clocks.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
import uuid
from collections import deque
from typing import (Callable, Dict, FrozenSet, Iterator, List, Optional,
                    Tuple)

from .metrics import registry
from .spans import _telemetry_env_enabled

__all__ = [
    "FLAG_ERROR", "FLAG_DEGRADED", "FLAG_DEADLINE", "FLAG_SHED",
    "TraceEvent", "TraceSpan", "Trace", "NULL_TRACE", "SamplePolicy",
    "TraceRecorder", "Tracer", "trace_recorder", "tracer",
    "set_tracing_enabled", "tracing_enabled",
    "current_trace", "trace_span", "add_trace_event", "flag_trace",
    "capture_context", "activate_context", "shift_span_row",
]

FLAG_ERROR = "error"
FLAG_DEGRADED = "degraded"
FLAG_DEADLINE = "deadline"
FLAG_SHED = "shed"

#: flags that force retention regardless of the head-sampling draw
FORCE_FLAGS: FrozenSet[str] = frozenset(
    {FLAG_ERROR, FLAG_DEGRADED, FLAG_DEADLINE, FLAG_SHED})

_enabled = _telemetry_env_enabled()
_local = threading.local()


def set_tracing_enabled(flag: bool) -> None:
    """Globally enable/disable tracing (independent of span aggregation)."""
    global _enabled
    _enabled = bool(flag)


def tracing_enabled() -> bool:
    return _enabled


class TraceEvent:
    """One typed, timestamped point in a span (breaker flip, deadline
    check, cache hit, shed decision...)."""

    __slots__ = ("kind", "at", "attrs")

    def __init__(self, kind: str, at: float, attrs: Dict[str, object]) -> None:
        self.kind = kind
        self.at = at
        self.attrs = attrs

    def to_row(self, epoch: float) -> dict:
        row = {"kind": self.kind,
               "at_ms": round((self.at - epoch) * 1e3, 4)}
        if self.attrs:
            row["attrs"] = self.attrs
        return row


class TraceSpan:
    """One timed region of a trace; children nest, events annotate.

    ``span_id`` is stable within the owning trace (``s0`` is the root)
    so a downstream process can name this span as its parent across the
    wire.  ``grafts`` holds already-rendered span *rows* from another
    process, re-based to this trace's epoch — they render as ordinary
    children."""

    __slots__ = ("name", "start", "end", "events", "children", "span_id",
                 "grafts")

    def __init__(self, name: str, start: float,
                 span_id: Optional[str] = None) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.events: List[TraceEvent] = []
        self.children: List["TraceSpan"] = []
        self.span_id = span_id
        self.grafts: List[dict] = []

    def to_row(self, epoch: float) -> dict:
        end = self.end if self.end is not None else self.start
        row = {
            "name": self.name,
            "start_ms": round((self.start - epoch) * 1e3, 4),
            "duration_ms": round((end - self.start) * 1e3, 4),
            "events": [event.to_row(epoch) for event in self.events],
            "children": [child.to_row(epoch) for child in self.children]
            + list(self.grafts),
        }
        if self.span_id is not None:
            row["span_id"] = self.span_id
        return row


def shift_span_row(row: dict, delta_ms: float) -> dict:
    """A copy of a rendered span ``row`` with every ``start_ms``/
    ``at_ms`` offset shifted by ``delta_ms`` — how a worker subtree
    (whose offsets are relative to the *worker's* root) is re-based to
    the router trace's epoch before grafting."""
    shifted = dict(row)
    shifted["start_ms"] = round(row.get("start_ms", 0.0) + delta_ms, 4)
    shifted["events"] = [
        dict(event, at_ms=round(event.get("at_ms", 0.0) + delta_ms, 4))
        for event in row.get("events", ())]
    shifted["children"] = [shift_span_row(child, delta_ms)
                           for child in row.get("children", ())]
    return shifted


class Trace:
    """The per-request span tree plus its retention bookkeeping.

    All structural mutation (opening spans, appending events) happens
    under one per-trace lock, because pooled encode chunks append to the
    same tree from several threads at once.
    """

    __slots__ = ("trace_id", "name", "root", "flags", "head_sampled",
                 "finished", "parent_span_id", "_clock", "_lock",
                 "_recorder", "_policy", "_span_seq")

    def __init__(self, trace_id: str, name: str, *,
                 clock: Callable[[], float],
                 recorder: "TraceRecorder",
                 policy: "SamplePolicy",
                 head_sampled: bool,
                 parent_span_id: Optional[str] = None) -> None:
        self.trace_id = trace_id
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._recorder = recorder
        self._policy = policy
        self.flags: set = set()
        self.head_sampled = head_sampled
        self.finished = False
        #: caller-side span this trace continues (a joined trace); the
        #: wire form echoes it so the caller can stitch the subtree in
        self.parent_span_id = parent_span_id
        self._span_seq = 1
        self.root = TraceSpan(name, clock(), span_id="s0")

    # -- structural mutation (thread-safe) ---------------------------------
    def open_span(self, name: str, parent: TraceSpan) -> TraceSpan:
        start = self._clock()
        with self._lock:
            child = TraceSpan(name, start, span_id=f"s{self._span_seq}")
            self._span_seq += 1
            parent.children.append(child)
        return child

    def graft(self, span: TraceSpan, row: dict) -> None:
        """Hang an already-rendered (and re-based, see
        :func:`shift_span_row`) span row from another process under
        ``span`` — the cross-process stitch."""
        with self._lock:
            span.grafts.append(row)

    def close_span(self, span: TraceSpan) -> None:
        span.end = self._clock()

    def add_event(self, kind: str, span: Optional[TraceSpan] = None,
                  **attrs: object) -> None:
        """Append a typed event to ``span`` (default: this trace's
        current span on the calling thread, else the root)."""
        if span is None:
            ctx = getattr(_local, "ctx", None)
            span = ctx[1] if ctx is not None and ctx[0] is self \
                else self.root
        event = TraceEvent(kind, self._clock(), attrs)
        with self._lock:
            span.events.append(event)

    def flag(self, name: str) -> None:
        """Mark the trace (``error``/``degraded``/``deadline``/``shed``
        force retention past the sampling draw)."""
        with self._lock:
            self.flags.add(name)

    # -- lifecycle ---------------------------------------------------------
    @contextlib.contextmanager
    def activate(self) -> Iterator["Trace"]:
        """Make this trace the calling thread's active context for the
        duration of the ``with`` block."""
        previous = getattr(_local, "ctx", None)
        _local.ctx = (self, self.root)
        try:
            yield self
        finally:
            _local.ctx = previous

    def finish(self) -> bool:
        """Close the root span and hand the trace to the recorder when
        the sampling policy keeps it; returns whether it was kept."""
        if self.finished:
            return False
        self.finished = True
        self.root.end = self._clock()
        kept = self._policy.keep(self.head_sampled, self.flags)
        reg = registry()
        if kept:
            reg.counter("obs.trace.kept").inc()
            self._recorder.add(self.to_row())
        else:
            reg.counter("obs.trace.unsampled").inc()
        return kept

    @property
    def duration(self) -> float:
        end = self.root.end if self.root.end is not None else self._clock()
        return end - self.root.start

    def to_row(self) -> dict:
        epoch = self.root.start
        row = {
            "type": "trace",
            "trace_id": self.trace_id,
            "name": self.name,
            "flags": sorted(self.flags),
            "sampled": "head" if self.head_sampled else "forced",
            # raw clock reading at trace start (schema v3): span offsets
            # are epoch-relative, so without this the inter-arrival
            # spacing is unrecoverable and exports could not be replayed
            # as load schedules (repro load replay)
            "started": round(epoch, 6),
            "duration_ms": round(self.duration * 1e3, 4),
            "spans": self.root.to_row(epoch),
        }
        if self.parent_span_id is not None:
            row["parent_span"] = self.parent_span_id
        return row

    def to_wire(self) -> dict:
        """The compact form shipped back to the caller that owns the
        trace: flags + span tree only — the caller already knows the
        trace id and will re-base the offsets to its own epoch."""
        wire = {
            "flags": sorted(self.flags),
            "sampled": "head" if self.head_sampled else "forced",
            "duration_ms": round(self.duration * 1e3, 4),
            "spans": self.root.to_row(self.root.start),
        }
        if self.parent_span_id is not None:
            wire["parent_span"] = self.parent_span_id
        return wire


class _NullTrace:
    """The disabled-tracing stand-in: every operation is a pass and no
    lock — recorder or trace — is ever taken."""

    __slots__ = ()

    trace_id = None
    name = None
    flags: FrozenSet[str] = frozenset()
    head_sampled = False
    finished = True
    root = None
    parent_span_id = None

    def open_span(self, name, parent):
        return None

    def close_span(self, span) -> None:
        pass

    def graft(self, span, row) -> None:
        pass

    def to_wire(self) -> dict:
        return {}

    def add_event(self, kind, span=None, **attrs) -> None:
        pass

    def flag(self, name) -> None:
        pass

    @contextlib.contextmanager
    def activate(self):
        yield self

    def finish(self) -> bool:
        return False


NULL_TRACE = _NullTrace()


class SamplePolicy:
    """Head sampling with forced retention for flagged traces.

    ``rate`` is the probability a trace is kept by the head draw (made
    once, at trace start).  A trace carrying any flag in
    ``force_flags`` is kept regardless — errors, degraded answers,
    deadline blows and sheds are exactly the traces worth reading, so
    they are never sampled away.  ``rng`` is injectable for
    deterministic tests.
    """

    __slots__ = ("rate", "force_flags", "_rng", "_lock")

    def __init__(self, rate: float = 1.0,
                 force_flags: FrozenSet[str] = FORCE_FLAGS,
                 rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("sample rate must be in [0, 1]")
        self.rate = float(rate)
        self.force_flags = frozenset(force_flags)
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()

    def sample_head(self) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        with self._lock:  # random.Random is not thread-safe under races
            return self._rng.random() < self.rate

    def keep(self, head_sampled: bool, flags) -> bool:
        return head_sampled or bool(self.force_flags & set(flags))


class TraceRecorder:
    """Bounded in-process store of finished trace rows (newest kept)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._lock = threading.Lock()
        self._rows: deque = deque(maxlen=capacity)
        self._evicted = 0

    @property
    def capacity(self) -> int:
        return self._rows.maxlen

    def set_capacity(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        with self._lock:
            if capacity != self._rows.maxlen:
                self._rows = deque(self._rows, maxlen=capacity)

    def add(self, row: dict) -> None:
        with self._lock:
            if len(self._rows) == self._rows.maxlen:
                self._evicted += 1
            self._rows.append(row)

    @property
    def evicted(self) -> int:
        return self._evicted

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def snapshot(self) -> List[dict]:
        with self._lock:
            return list(self._rows)

    def reset(self) -> None:
        with self._lock:
            self._rows.clear()
            self._evicted = 0


class Tracer:
    """Mints traces against one recorder/policy/clock triple."""

    def __init__(self, policy: Optional[SamplePolicy] = None,
                 recorder: Optional[TraceRecorder] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 id_factory: Optional[Callable[[], str]] = None) -> None:
        self.policy = policy if policy is not None else SamplePolicy()
        self.recorder = recorder if recorder is not None \
            else trace_recorder()
        self._clock = clock
        self._id_factory = id_factory if id_factory is not None \
            else (lambda: uuid.uuid4().hex[:16])

    def start(self, name: str = "request", *,
              trace_id: Optional[str] = None,
              parent_span_id: Optional[str] = None):
        """A new active-ready trace — or :data:`NULL_TRACE` when tracing
        is disabled (no id minted, no lock touched).

        With ``trace_id`` the trace *joins* a caller's id instead of
        minting one (cross-process propagation); ``parent_span_id``
        names the caller-side span this process's work continues.  The
        head-sampling draw is still this process's own — retention is a
        local decision either way."""
        if not _enabled:
            return NULL_TRACE
        reg = registry()
        reg.counter("obs.trace.started").inc()
        if trace_id is not None:
            reg.counter("obs.trace.joined").inc()
        return Trace(trace_id if trace_id is not None
                     else self._id_factory(),
                     name, clock=self._clock,
                     recorder=self.recorder, policy=self.policy,
                     head_sampled=self.policy.sample_head(),
                     parent_span_id=parent_span_id)

    @contextlib.contextmanager
    def trace(self, name: str = "request") -> Iterator[Trace]:
        """``start`` + ``activate`` + ``finish`` in one ``with`` block."""
        trace = self.start(name)
        with trace.activate():
            try:
                yield trace
            finally:
                trace.finish()


_default_recorder = TraceRecorder()
_default_tracer: Optional[Tracer] = None


def trace_recorder() -> TraceRecorder:
    """The process-wide default trace recorder (what the JSONL exporter
    reads)."""
    return _default_recorder


def tracer() -> Tracer:
    """A process-wide default tracer over the default recorder."""
    global _default_tracer
    if _default_tracer is None:
        _default_tracer = Tracer()
    return _default_tracer


# -- ambient context helpers (no-ops without an active trace) --------------
def current_trace() -> Optional[Trace]:
    """The calling thread's active trace, or ``None``."""
    ctx = getattr(_local, "ctx", None)
    return ctx[0] if ctx is not None else None


@contextlib.contextmanager
def trace_span(name: str) -> Iterator[Optional[TraceSpan]]:
    """Open a child span under the active trace context; a cheap no-op
    (one thread-local read) when no trace is active."""
    ctx = getattr(_local, "ctx", None)
    if ctx is None:
        yield None
        return
    trace, parent = ctx
    child = trace.open_span(name, parent)
    _local.ctx = (trace, child)
    try:
        yield child
    finally:
        trace.close_span(child)
        _local.ctx = ctx


def add_trace_event(kind: str, **attrs: object) -> None:
    """Append a typed event to the active trace's current span;
    a no-op without an active trace."""
    ctx = getattr(_local, "ctx", None)
    if ctx is not None:
        ctx[0].add_event(kind, span=ctx[1], **attrs)


def flag_trace(name: str) -> None:
    """Flag the active trace (no-op without one)."""
    ctx = getattr(_local, "ctx", None)
    if ctx is not None:
        ctx[0].flag(name)


def capture_context() -> Optional[Tuple[Trace, TraceSpan]]:
    """Snapshot the calling thread's (trace, span) context so a pooled
    task can re-enter it with :func:`activate_context`."""
    return getattr(_local, "ctx", None)


@contextlib.contextmanager
def activate_context(ctx: Optional[Tuple[Trace, TraceSpan]]) -> Iterator[None]:
    """Re-enter a captured context on another thread (no-op for
    ``None``), so pooled work attributes its spans to the owning
    request's tree."""
    if ctx is None:
        yield
        return
    previous = getattr(_local, "ctx", None)
    _local.ctx = ctx
    try:
        yield
    finally:
        _local.ctx = previous
