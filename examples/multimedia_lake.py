"""Full-modality data lake: text documents and video against a graph.

Exercises the two remaining §II-A source types end to end:

* an **unstructured text corpus** is parsed into entities and syntactic
  relationships (SentenceParser) and mapped into the unified graph;
* **videos** are divided into frame images that join the repository.

CrossEM then matches the text-derived entity vertices against the
video-derived images — text-to-video entity matching through the same
prompt-tuning path as everything else.

Run:
    python examples/multimedia_lake.py
"""

from repro.core import CrossEM, CrossEMConfig, matching_set_metrics
from repro.datalake import DataLake
from repro.datasets import cub_bundle
from repro.datasets.generator import CrossModalDataset
from repro.text.corpus import build_text_corpus
from repro.vision.video import frames_to_images, record_video


def main() -> None:
    bundle = cub_bundle()
    concepts = list(bundle.universe)[:10]
    names = [c.name for c in concepts]

    # Text side: free-form sentences about the entities -> graph.
    sentences = [s for s in build_text_corpus(bundle.universe, seed=4)
                 if any(name in s for name in names)]
    lake = DataLake()
    lake.add_text(sentences, gazetteer=names)
    graph = lake.unified_graph()
    print(f"Parsed {len(sentences)} sentences into a graph with "
          f"{graph.num_vertices} vertices / {graph.num_edges} edges")

    # Video side: clips divided into frames (§II-A).
    videos = [record_video(concept, num_frames=8, rng=i, video_id=i)
              for i, concept in enumerate(concepts)]
    images = frames_to_images(videos, stride=2)
    print(f"Sampled {len(images)} frames from {len(videos)} videos")

    matcher = CrossEM(bundle, CrossEMConfig(prompt="hard", d=1))
    matcher.fit(graph, images)

    name_to_index = {c.name: c.index for c in concepts}
    dataset = CrossModalDataset(
        "multimedia-lake", graph, images, graph.entity_ids(),
        {v: name_to_index[graph.label(v)] for v in graph.entity_ids()},
        universe=None)
    print(f"\nText-to-video matching accuracy: {matcher.evaluate(dataset)}")

    pairs = matcher.match_pairs(top_k=2)
    quality = matching_set_metrics(pairs, dataset.true_pairs())
    print(f"Matching set (top-2 per entity): {quality}")


if __name__ == "__main__":
    main()
