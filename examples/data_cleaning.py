"""Data cleaning with matching probabilities (the paper's future work).

The conclusion of the paper proposes extending the prompt-tuning
framework "to support more data management tasks such as data
cleaning".  This example demonstrates exactly that over an ingested
image repository: corrupted images and mislabeled provenance records
surface through the matcher's matching-probability distribution —
no labels, no extra training.

Run:
    python examples/data_cleaning.py
"""

import numpy as np

from repro.core import CrossEM, CrossEMConfig, clean_repository
from repro.datasets import cub_bundle, load_cub
from repro.vision.image import SyntheticImage


def main() -> None:
    bundle = cub_bundle()
    dataset = load_cub()
    rng = np.random.default_rng(0)

    # Simulate an imperfect ingestion pipeline: a few corrupted frames
    # plus one image filed under the wrong entity record.
    images = list(dataset.images)
    corrupted = []
    for k in range(3):
        pixels = (rng.random((24, 24, 3)) * 0.05).astype(np.float32)
        images.append(SyntheticImage(pixels, concept_index=-1,
                                     image_id=9000 + k))
        corrupted.append(len(images) - 1)
    v_right = dataset.entity_vertices[0]
    v_wrong = dataset.entity_vertices[1]
    mislabeled_position = dataset.images_of_vertex(v_right)[0]
    claims = {mislabeled_position: v_wrong}  # ingestion claims the wrong record

    matcher = CrossEM(bundle, CrossEMConfig(prompt="hard", epochs=0))
    matcher.fit(dataset.graph, images, dataset.entity_vertices)

    flags = clean_repository(matcher, claims, z_threshold=1.5)
    print(f"Repository: {len(images)} images "
          f"({len(corrupted)} corrupted + 1 mislabeled injected)")
    print(f"Flagged {len(flags)} suspicious images:\n")
    for flag in flags:
        truth = ("injected corruption" if flag.image_position in corrupted
                 else "injected mislabel"
                 if flag.image_position == mislabeled_position
                 else "false positive")
        best = matcher.graph.label(flag.best_vertex)
        print(f"  image @{flag.image_position:<4d} [{flag.reason:20s}] "
              f"score={flag.score:+.3f} best match: {best:24s} <- {truth}")

    caught = sum(1 for f in flags
                 if f.image_position in corrupted
                 or f.image_position == mislabeled_position)
    print(f"\nDetected {caught} of {len(corrupted) + 1} injected problems.")


if __name__ == "__main__":
    main()
