"""Scalability sweep: CrossEM vs CrossEM+ as candidate pairs grow.

Reproduces Figure 8's series on the FB-IMG miniature family: the
per-epoch training time and visited-pair count of CrossEM w/ f_s grow
with |V| x |I|, while CrossEM+'s PCP partitions keep both flat(ter)
without losing accuracy.

Run:
    python examples/scalability_sweep.py
"""

from repro.core import (CrossEM, CrossEMConfig, CrossEMPlus,
                        CrossEMPlusConfig)
from repro.datasets import FB_SIZES, fb_bundle, load_fbimg, train_test_split

EPOCHS = 3


def main() -> None:
    bundle = fb_bundle()
    print(f"{'size':>6s} {'pairs':>8s} {'method':>14s} {'MRR':>6s} "
          f"{'T(s/ep)':>8s} {'visited pairs':>14s}")
    for size in FB_SIZES:
        dataset = load_fbimg(size)
        split = train_test_split(dataset, 0.5, seed=0)

        soft = CrossEM(bundle, CrossEMConfig(prompt="soft", epochs=EPOCHS,
                                             lr=1e-3, aggregator="sage",
                                             seed=0))
        soft.fit(dataset.graph, dataset.images, dataset.entity_vertices)
        plus = CrossEMPlus(bundle, CrossEMPlusConfig(epochs=EPOCHS, lr=1e-3,
                                                     aggregator="sage",
                                                     seed=0))
        plus.fit(dataset.graph, dataset.images, dataset.entity_vertices)

        for label, matcher, visited in (
                ("CrossEM w/f_s", soft, dataset.num_candidate_pairs),
                ("CrossEM+", plus, plus.trained_pairs)):
            mrr = matcher.evaluate(dataset, split.test).mrr
            print(f"{size:>6s} {dataset.num_candidate_pairs:>8d} "
                  f"{label:>14s} {mrr:>6.3f} "
                  f"{matcher.efficiency.seconds_per_epoch:>8.2f} "
                  f"{visited:>14d}")


if __name__ == "__main__":
    main()
