"""Data-lake integration: match heterogeneous sources against images.

Reproduces the paper's motivating scenario (Fig. 1): animal facts live
in a relational table AND a JSON document, their photos in an image
repository.  The data mapping unifies tables and JSON into one graph
(tuples/keys -> entity vertices, values -> attribute vertices, foreign
keys/references -> relationship edges), and CrossEM matches the entity
vertices against the images with structure-aware hard prompts — no
training labels anywhere.

Run:
    python examples/data_lake_integration.py
"""

from repro.core import CrossEM, CrossEMConfig
from repro.datalake import (DataLake, JsonDocument, JsonObject,
                            RelationalTable, TableSchema)
from repro.datasets import cub_bundle
from repro.datasets.world import SYMBOLIC_FAMILIES
from repro.vision.image import render_repository


def build_sources(bundle):
    """A table for the first half of the concepts, JSON for the rest."""
    universe = bundle.universe
    schema = universe.schema
    concepts = list(universe)[:12]
    half = len(concepts) // 2

    columns = (("name",)
               + tuple(f"{p} color" for p in schema.part_names)
               + tuple(SYMBOLIC_FAMILIES))
    table = RelationalTable(TableSchema("animals", columns, key="name"))
    for concept in concepts[:half]:
        values = {"name": concept.name}
        for part, color in concept.visual_items():
            values[f"{schema.part_names[part]} color"] = \
                schema.color_names[color]
        values.update(concept.symbolic)
        table.insert_dict(values)

    objects = []
    for concept in concepts[half:]:
        fields = {f"{schema.part_names[p]} color": schema.color_names[c]
                  for p, c in concept.visual_items()}
        fields.update(concept.symbolic)
        objects.append(JsonObject(concept.name, fields))
    return concepts, table, JsonDocument(objects)


def main() -> None:
    bundle = cub_bundle()
    concepts, table, document = build_sources(bundle)

    lake = DataLake()
    lake.add_table(table)
    lake.add_json(document)
    graph = lake.unified_graph()
    print(f"Unified graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges from {lake.num_sources} sources")

    images = render_repository(concepts, images_per_concept=3, seed=1)
    print(f"Image repository: {len(images)} images")

    matcher = CrossEM(bundle, CrossEMConfig(prompt="hard", d=1))
    matcher.fit(graph, images)

    gold = {graph.label(v): dataset_concept.index
            for v, dataset_concept in zip(graph.entity_ids(), concepts)}
    result = matcher.evaluate(_as_dataset(graph, images, concepts))
    print(f"\nCross-modal EM accuracy over the unified lake: {result}")

    vertex = graph.entity_ids()[0]
    from repro.core import HardPromptGenerator
    prompt = HardPromptGenerator(graph, d=1).generate(vertex)
    print(f"\nExample hard prompt for '{graph.label(vertex)}':\n  {prompt}")


def _as_dataset(graph, images, concepts):
    """Wrap the ad-hoc lake into the evaluation-friendly dataset type."""
    from repro.datasets.generator import CrossModalDataset

    name_to_concept = {c.name: c.index for c in concepts}
    entity_vertices = graph.entity_ids()
    vertex_concept = {v: name_to_concept[graph.label(v)]
                      for v in entity_vertices}
    return CrossModalDataset("lake-demo", graph, images, entity_vertices,
                             vertex_concept, universe=None)


if __name__ == "__main__":
    main()
