"""Quickstart: cross-modal entity matching on the CUB-mini benchmark.

Loads the pre-trained MiniCLIP bundle (pre-trains and caches it on
first run), builds the CUB-style benchmark (bird attribute graph +
image repository), prompt-tunes CrossEM+ and reports H@k / MRR plus a
few example matching pairs.

Run:
    python examples/quickstart.py
"""

from repro.core import CrossEMPlus, CrossEMPlusConfig
from repro.datasets import cub_bundle, load_cub, train_test_split


def main() -> None:
    print("Loading pre-trained bundle (first run pre-trains MiniCLIP)...")
    bundle = cub_bundle()
    dataset = load_cub()
    print(f"Dataset: {dataset.name}  {dataset.statistics()}")
    split = train_test_split(dataset, test_fraction=0.5, seed=0)

    print("\nPrompt-tuning CrossEM+ (unsupervised)...")
    matcher = CrossEMPlus(bundle, CrossEMPlusConfig(epochs=10, lr=1e-3,
                                                    seed=0))
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices)
    print(f"Efficiency: {matcher.efficiency}")
    print(f"Candidate pairs visited per epoch: {matcher.trained_pairs} "
          f"of {dataset.num_candidate_pairs}")

    result = matcher.evaluate(dataset, list(split.test))
    print(f"\nTest accuracy: {result}")

    print("\nExample matching pairs (vertex -> top-1 image):")
    pairs = sorted(matcher.match_pairs(list(split.test)[:5], top_k=1))
    image_by_id = {img.image_id: img for img in dataset.images}
    for vertex, image_id in pairs:
        gold = dataset.vertex_concept[vertex]
        predicted = image_by_id[image_id].concept_index
        verdict = "correct" if gold == predicted else "wrong"
        print(f"  {dataset.graph.label(vertex):28s} -> image #{image_id:<4d}"
              f" ({verdict})")


if __name__ == "__main__":
    main()
