"""Case study: multi-modal knowledge graph integration (paper §V-D).

Given the FB-IMG-style knowledge graph, integrate an image repository:
link every entity to its photos.  KG-completion methods (DistMult here)
must be *trained* on known entity-image links and still fail to
generalize to unseen entities, while CrossEM+ matches them zero-link
via prompt tuning — the Table V result.

Run:
    python examples/kg_integration.py
"""

from repro.baselines import DistMultKG, MKGformerLite
from repro.core import CrossEMPlus, CrossEMPlusConfig
from repro.datasets import fb_bundle, load_fbimg, train_test_split


def main() -> None:
    bundle = fb_bundle()
    dataset = load_fbimg("fb2k")
    print(f"Knowledge graph benchmark: {dataset.statistics()}")
    split = train_test_split(dataset, test_fraction=0.5, seed=0)
    print(f"{len(split.train)} entities with known image links (train), "
          f"{len(split.test)} unseen entities (test)")

    print("\nTraining DistMult on graph edges + train links...")
    distmult = DistMultKG(bundle, seed=0).fit(dataset, split)
    print("  train entities:", distmult.evaluate(dataset, split.train))
    print("  unseen entities:", distmult.evaluate(dataset, split.test))

    print("\nTraining MKGformer-lite (text x patch fusion)...")
    mkg = MKGformerLite(bundle, seed=0).fit(dataset, split)
    print("  unseen entities:", mkg.evaluate(dataset, split.test))

    print("\nPrompt-tuning CrossEM+ (no link supervision at all)...")
    matcher = CrossEMPlus(bundle, CrossEMPlusConfig(epochs=10, lr=1e-3,
                                                    aggregator="sage",
                                                    seed=0))
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices)
    print("  unseen entities:", matcher.evaluate(dataset, split.test))

    print("\nIntegrated matching pairs ready for KG insertion:")
    for vertex, image_id in sorted(matcher.match_pairs(split.test[:4])):
        print(f"  ({dataset.graph.label(vertex)}) --has_image--> "
              f"image #{image_id}")


if __name__ == "__main__":
    main()
