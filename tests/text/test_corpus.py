"""Synthetic corpus generation tests."""

from repro.datasets.world import AttributeSchema, ConceptUniverse, caption_for
from repro.text.corpus import build_caption_corpus, build_text_corpus


class TestCaptionCorpus:
    def test_count_and_indices(self):
        universe = ConceptUniverse(6, seed=1)
        corpus = build_caption_corpus(universe, captions_per_concept=3, seed=1)
        assert len(corpus) == 18
        assert {i for i, _ in corpus} == set(range(6))

    def test_deterministic(self):
        universe = ConceptUniverse(4, seed=2)
        a = build_caption_corpus(universe, seed=5)
        b = build_caption_corpus(universe, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        universe = ConceptUniverse(4, seed=2)
        a = build_caption_corpus(universe, seed=5)
        b = build_caption_corpus(universe, seed=6)
        assert a != b


class TestTextCorpus:
    def test_contains_symbolic_facts(self):
        universe = ConceptUniverse(3, seed=0)
        sentences = build_text_corpus(universe, seed=0)
        concept = universe[0]
        assert any(concept.symbolic["food"] in s and "eats" in s
                   for s in sentences)

    def test_contains_visual_phrases(self):
        universe = ConceptUniverse(3, seed=0)
        sentences = build_text_corpus(universe, seed=0)
        concept = universe[0]
        part, color = concept.visual_items()[0]
        phrase = universe.schema.visual_phrase(part, color)
        assert any(phrase in s and concept.name in s for s in sentences)


class TestCaptionFor:
    def test_photo_prefix(self):
        universe = ConceptUniverse(2, seed=0)
        caption = caption_for(universe[0], universe.schema, rng=0)
        assert caption.startswith("a photo of a")

    def test_mentions_an_own_attribute_word(self):
        universe = ConceptUniverse(2, seed=0)
        schema = universe.schema
        concept = universe[0]
        own_colors = {schema.color_names[c] for _, c in concept.visual_items()}
        own_parts = {schema.part_names[p] for p, _ in concept.visual_items()}
        caption = caption_for(concept, schema, rng=1)
        words = set(caption.split())
        assert words & (own_colors | own_parts)
