"""MiniLM pre-trained embedding tests."""

import numpy as np
import pytest

from repro.datasets.world import ConceptUniverse
from repro.text.corpus import build_text_corpus
from repro.text.minilm import MiniLM
from repro.text.tokenizer import Vocabulary


@pytest.fixture(scope="module")
def trained():
    universe = ConceptUniverse(12, kind="bird", seed=3)
    vocab = Vocabulary(universe.vocabulary_words())
    model = MiniLM(vocab, dim=24).pretrain(
        build_text_corpus(universe, seed=3), seed=3)
    return universe, model


class TestPretrain:
    def test_requires_corpus(self):
        model = MiniLM(Vocabulary(["word"]))
        with pytest.raises(ValueError):
            model.pretrain([])

    def test_embed_before_pretrain_raises(self):
        model = MiniLM(Vocabulary(["word"]))
        with pytest.raises(RuntimeError):
            model.embed_text("word")

    def test_special_tokens_are_zero(self, trained):
        _, model = trained
        np.testing.assert_allclose(model.embeddings[:5], 0.0)

    def test_embedding_shape(self, trained):
        universe, model = trained
        assert model.embeddings.shape == (len(model.vocab), 24)


class TestSemantics:
    def test_color_words_cluster(self, trained):
        _, model = trained
        # colors co-occur in the same caption slots, so they should be
        # more similar to each other than to unrelated glue words
        related = model.similarity("white", "black")
        unrelated = model.similarity("white", "eats")
        assert related > unrelated

    def test_token_vs_text_embedding(self, trained):
        _, model = trained
        tokens = model.embed_tokens("white crown")
        assert tokens.shape == (2, 24)
        np.testing.assert_allclose(model.embed_text("white crown"),
                                   tokens.mean(axis=0), atol=1e-6)

    def test_empty_text(self, trained):
        _, model = trained
        assert model.embed_text("").shape == (24,)
        assert model.embed_tokens("").shape == (0, 24)

    def test_embed_texts_batch(self, trained):
        _, model = trained
        out = model.embed_texts(["white", "black", "grey"])
        assert out.shape == (3, 24)

    def test_similarity_bounds(self, trained):
        _, model = trained
        value = model.similarity("white", "white")
        assert value == pytest.approx(1.0, abs=1e-5)

    def test_name_similar_to_own_attribute(self, trained):
        universe, model = trained
        concept = universe[0]
        part, color = concept.visual_items()[0]
        schema = universe.schema
        own = model.similarity(concept.name,
                               schema.color_names[color])
        # the concept's name co-occurs with its own colors in the corpus
        others = [c for c in universe
                  if schema.color_names[color] not in
                  {schema.color_names[col] for _, col in c.visual_items()}]
        if others:
            other = model.similarity(others[0].name,
                                     schema.color_names[color])
            assert own > other
