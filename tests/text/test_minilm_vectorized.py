"""Golden-equivalence tests for MiniLM's vectorized paths: the batched
``embed_texts`` gather/mean and the ``np.add.at`` co-occurrence scatter
must match their retained naive references exactly (``atol=0``)."""

import numpy as np
import pytest


@pytest.fixture(scope="module")
def minilm(tiny_bundle):
    return tiny_bundle.minilm


SAMPLE_TEXTS = [
    "a photo of a velkan tern",
    "wing color grey",
    "",
    "beak shape hooked and tail pattern striped with a very long "
    "redundant description of the bird in question",
    "crest",
]


class TestEmbedTexts:
    def test_matches_reference_exactly(self, minilm):
        np.testing.assert_array_equal(minilm.embed_texts(SAMPLE_TEXTS),
                                      minilm.embed_texts_reference(SAMPLE_TEXTS))

    def test_matches_reference_on_vocabulary_phrases(self, minilm):
        words = [w for w in minilm.vocab.tokens()[5:40]]
        texts = [" ".join(words[i:i + 1 + i % 7]) for i in range(len(words))]
        np.testing.assert_array_equal(minilm.embed_texts(texts),
                                      minilm.embed_texts_reference(texts))

    def test_empty_batch(self, minilm):
        assert minilm.embed_texts([]).shape == (0, minilm.dim)

    def test_all_empty_texts(self, minilm):
        out = minilm.embed_texts(["", ""])
        np.testing.assert_array_equal(out, np.zeros((2, minilm.dim),
                                                    dtype=np.float32))

    def test_single_matches_embed_text(self, minilm):
        single = minilm.embed_texts(["wing color grey"])[0]
        np.testing.assert_array_equal(single,
                                      minilm.embed_text("wing color grey"))


class TestCooccurrenceScatter:
    def test_matches_reference_exactly(self, minilm):
        sentences = [
            "the velkan tern has grey wings",
            "grey wings and a hooked beak",
            "a",
            "",
            "one two three four five six seven eight nine ten eleven",
        ]
        np.testing.assert_array_equal(
            minilm._cooccurrence(sentences),
            minilm._cooccurrence_reference(sentences))

    def test_matches_reference_on_corpus_slice(self, tiny_bundle, minilm):
        from repro.text.corpus import build_text_corpus
        corpus = build_text_corpus(tiny_bundle.universe, seed=7)[:50]
        np.testing.assert_array_equal(minilm._cooccurrence(corpus),
                                      minilm._cooccurrence_reference(corpus))
