"""Tokenizer and vocabulary tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.tokenizer import (CLIP_MAX_TOKENS, CLS, MASK, PAD, SEP, UNK,
                                  Vocabulary, WordTokenizer)


@pytest.fixture()
def vocab():
    return Vocabulary(["laysan", "albatross", "white", "crown", "wing"])


@pytest.fixture()
def tokenizer(vocab):
    return WordTokenizer(vocab, max_len=12)


class TestVocabulary:
    def test_specials_reserved_first(self, vocab):
        assert vocab.pad_id == 0
        assert vocab.cls_id == 1
        assert vocab.sep_id == 2
        assert vocab.mask_id == 3
        assert vocab.unk_id == 4

    def test_add_is_idempotent(self, vocab):
        first = vocab.add("crown")
        second = vocab.add("crown")
        assert first == second

    def test_add_rejects_multiword(self, vocab):
        with pytest.raises(ValueError):
            vocab.add("two words")

    def test_unknown_maps_to_unk(self, vocab):
        assert vocab.id_of("zebra") == vocab.unk_id

    def test_add_text_splits_words(self):
        vocab = Vocabulary()
        vocab.add_text("White Crown, black-tail!")
        assert "white" in vocab
        assert "black-tail" in vocab

    def test_len_and_tokens(self, vocab):
        assert len(vocab) == 5 + 5
        assert vocab.tokens()[0] == PAD


class TestWordTokenizer:
    def test_encode_structure(self, tokenizer, vocab):
        ids = tokenizer.encode("laysan albatross")
        assert ids[0] == vocab.cls_id
        assert ids[3] == vocab.sep_id
        assert (ids[4:] == vocab.pad_id).all()
        assert len(ids) == 12

    def test_truncation_at_max_len(self, vocab):
        tokenizer = WordTokenizer(vocab, max_len=5)
        ids = tokenizer.encode("white crown wing laysan albatross")
        assert len(ids) == 5
        assert ids[-1] == vocab.sep_id

    def test_default_limit_is_clip_77(self, vocab):
        assert WordTokenizer(vocab).max_len == CLIP_MAX_TOKENS

    def test_max_len_too_small_raises(self, vocab):
        with pytest.raises(ValueError):
            WordTokenizer(vocab, max_len=2)

    def test_decode_roundtrip(self, tokenizer):
        text = "laysan albatross white crown"
        assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_unknown_words_decode_as_unk(self, tokenizer):
        decoded = tokenizer.decode(tokenizer.encode("zebra"))
        assert decoded == UNK.lower().strip("[]") or UNK in decoded or decoded == "unk"

    def test_encode_batch_pads_to_longest(self, tokenizer):
        batch = tokenizer.encode_batch(["white", "white crown wing"])
        assert batch.shape == (2, 5)

    def test_encode_batch_respects_max_len(self, vocab):
        tokenizer = WordTokenizer(vocab, max_len=4)
        batch = tokenizer.encode_batch(["white crown wing laysan"])
        assert batch.shape[1] == 4

    def test_attention_mask(self, tokenizer):
        batch = tokenizer.encode_batch(["white", "white crown"])
        mask = tokenizer.attention_mask(batch)
        assert mask[0].sum() == 3  # CLS word SEP
        assert mask[1].sum() == 4

    def test_case_insensitive(self, tokenizer):
        np.testing.assert_array_equal(tokenizer.encode("WHITE"),
                                      tokenizer.encode("white"))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from(["laysan", "albatross", "white", "crown",
                                 "wing"]), min_size=1, max_size=8))
def test_property_roundtrip(words):
    vocab = Vocabulary(["laysan", "albatross", "white", "crown", "wing"])
    tokenizer = WordTokenizer(vocab, max_len=32)
    text = " ".join(words)
    assert tokenizer.decode(tokenizer.encode(text)) == text


@settings(max_examples=30, deadline=None)
@given(st.text(max_size=60))
def test_property_encode_never_crashes_and_bounds(text):
    vocab = Vocabulary(["word"])
    tokenizer = WordTokenizer(vocab, max_len=16)
    ids = tokenizer.encode(text)
    assert len(ids) == 16
    assert ids.min() >= 0
    assert ids.max() < len(vocab)
