"""Micro-batcher semantics, provable on a fake clock and a stub.

:class:`BatchWindow` is pure state — these tests drive it with
explicit timestamps, so window expiry, max-batch flush, and the
non-sliding-window property are exact claims, not sleeps and hopes.
:class:`MicroBatcher` tests use a stub service (recording
``handle_batch`` calls) to pin coalescing, bypass, shedding, and drain
behaviour without a matcher in sight.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.netserve.batcher import (BatchWindow, MicroBatcher,
                                    bypasses_window)


class TestBypassesWindow:
    def test_unbounded_budget_never_bypasses(self):
        assert bypasses_window(None, window_ms=5.0) is False

    def test_tight_budget_bypasses(self):
        # default slack 2: anything under two windows dispatches alone
        assert bypasses_window(9.9, window_ms=5.0) is True
        assert bypasses_window(1.0, window_ms=5.0) is True

    def test_roomy_budget_joins_the_window(self):
        assert bypasses_window(10.0, window_ms=5.0) is False
        assert bypasses_window(500.0, window_ms=5.0) is False

    def test_zero_window_always_bypasses(self):
        assert bypasses_window(None, window_ms=0.0) is True
        assert bypasses_window(1000.0, window_ms=0.0) is True

    def test_malformed_budgets_flow_into_the_service(self):
        # they must reach _parse to be answered bad_request
        assert bypasses_window("soon", window_ms=5.0) is False
        assert bypasses_window(True, window_ms=5.0) is False
        assert bypasses_window(-3.0, window_ms=5.0) is False


class TestBatchWindow:
    def test_opens_on_first_item_only(self):
        window = BatchWindow(window_s=0.010, max_batch=8)
        assert window.flush_at() is None
        window.add("a", now=100.0)
        assert window.flush_at() == pytest.approx(100.010)
        # later arrivals do NOT slide the deadline
        window.add("b", now=100.008)
        assert window.flush_at() == pytest.approx(100.010)

    def test_due_at_expiry_not_before(self):
        window = BatchWindow(window_s=0.010, max_batch=8)
        window.add("a", now=0.0)
        assert window.due(0.009) is False
        assert window.due(0.010) is True
        assert window.due(5.0) is True

    def test_full_batch_is_due_immediately(self):
        window = BatchWindow(window_s=10.0, max_batch=2)
        assert window.add("a", now=0.0) is False
        assert window.add("b", now=0.0) is True
        assert window.due(0.0) is True  # no waiting ten seconds

    def test_drain_resets_the_window(self):
        window = BatchWindow(window_s=0.010, max_batch=8)
        window.add("a", now=0.0)
        window.add("b", now=0.001)
        assert window.drain() == ["a", "b"]
        assert len(window) == 0
        assert window.flush_at() is None
        assert window.due(99.0) is False
        # the next batch opens a fresh window at its own arrival
        window.add("c", now=7.0)
        assert window.flush_at() == pytest.approx(7.010)

    def test_trickle_cannot_postpone_flush_forever(self):
        """One item per 9ms into a 10ms window: the flush deadline is
        pinned by the FIRST item, so the second trickle arrival is
        already past due — a steady sub-window trickle flushes every
        window, it does not accumulate unboundedly."""
        window = BatchWindow(window_s=0.010, max_batch=1000)
        now = 0.0
        window.add(0, now)
        flush_at = window.flush_at()
        for i in range(1, 5):
            now += 0.009
            window.add(i, now)
            assert window.flush_at() == flush_at
        assert window.due(now) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchWindow(window_s=-1.0, max_batch=8)
        with pytest.raises(ValueError):
            BatchWindow(window_s=0.01, max_batch=0)


class StubService:
    """Records every handle_batch call; optionally blocks until
    released (for shed/backpressure tests)."""

    def __init__(self, hold: bool = False) -> None:
        self.batches = []
        self.release = threading.Event()
        if not hold:
            self.release.set()

    def handle_batch(self, requests):
        assert self.release.wait(timeout=30)
        self.batches.append([r["id"] for r in requests])
        return [{"id": r["id"], "ok": True, "tier": "full",
                 "matches": [], "elapsed_ms": 0.0} for r in requests]


def collect():
    responses = []
    lock = threading.Lock()

    def deliver(response):
        with lock:
            responses.append(response)

    return responses, deliver


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


class TestMicroBatcher:
    def test_concurrent_submissions_coalesce(self):
        stub = StubService()
        batcher = MicroBatcher(stub, window_ms=50.0, max_batch=16)
        responses, deliver = collect()
        for i in range(5):
            batcher.submit({"id": i, "vertex": i}, deliver)
        assert wait_until(lambda: len(responses) == 5)
        assert batcher.drain()
        # all five rode one fused call
        assert stub.batches == [[0, 1, 2, 3, 4]]

    def test_max_batch_flushes_without_waiting(self):
        stub = StubService()
        batcher = MicroBatcher(stub, window_ms=60_000.0, max_batch=3)
        responses, deliver = collect()
        started = time.monotonic()
        for i in range(3):
            batcher.submit({"id": i, "vertex": i}, deliver)
        assert wait_until(lambda: len(responses) == 3)
        # a minute-long window did not make anyone wait a minute
        assert time.monotonic() - started < 10.0
        assert batcher.drain()
        assert stub.batches == [[0, 1, 2]]

    def test_tight_deadline_bypasses_the_window(self):
        stub = StubService()
        batcher = MicroBatcher(stub, window_ms=60_000.0, max_batch=16)
        responses, deliver = collect()
        batcher.submit({"id": "urgent", "vertex": 1, "budget_ms": 50.0},
                       deliver)
        # no companions, a minute of window left — answered anyway
        assert wait_until(lambda: len(responses) == 1)
        assert responses[0]["ok"] is True
        assert batcher.drain()
        assert stub.batches == [["urgent"]]

    def test_sheds_typed_overloaded_at_max_pending(self):
        stub = StubService(hold=True)  # nothing completes until released
        batcher = MicroBatcher(stub, window_ms=60_000.0, max_batch=100,
                               max_pending=3)
        responses, deliver = collect()
        for i in range(3):
            batcher.submit({"id": i, "vertex": i}, deliver)
        batcher.submit({"id": "extra", "vertex": 9}, deliver)
        shed = [r for r in responses if not r["ok"]]
        assert len(shed) == 1
        assert shed[0]["id"] == "extra"
        assert shed[0]["error"]["type"] == "overloaded"
        stub.release.set()
        assert batcher.drain()
        assert wait_until(lambda: len(responses) == 4)

    def test_drain_answers_everything_then_rejects(self):
        stub = StubService()
        batcher = MicroBatcher(stub, window_ms=60_000.0, max_batch=100)
        responses, deliver = collect()
        for i in range(4):
            batcher.submit({"id": i, "vertex": i}, deliver)
        # still parked in the minute-long window — drain must flush it
        assert batcher.drain()
        assert len(responses) == 4
        assert all(r["ok"] for r in responses)
        # and the door is closed, with a typed answer
        batcher.submit({"id": "late", "vertex": 0}, deliver)
        late = responses[-1]
        assert late["id"] == "late"
        assert late["error"]["type"] == "unavailable"

    def test_fused_call_failure_still_answers_everyone(self):
        class ExplodingService:
            def handle_batch(self, requests):
                raise RuntimeError("boom")

        batcher = MicroBatcher(ExplodingService(), window_ms=1.0,
                               max_batch=4)
        responses, deliver = collect()
        for i in range(3):
            batcher.submit({"id": i, "vertex": i}, deliver)
        assert wait_until(lambda: len(responses) == 3)
        assert all(r["ok"] is False for r in responses)
        assert batcher.drain()
