"""The TCP front end, end to end over real sockets.

Every test speaks the actual wire protocol against a real
:class:`NetServer` on an ephemeral port.  The marquee claim — batched
responses bit-identical to the same queries served one at a time — is
asserted over the wire: one client pipelines everything into a shared
window, the other sends strictly sequentially (each request alone in
its batch), and the match payloads must agree byte for byte.
"""

from __future__ import annotations

import json
import socket

from repro.obs import registry


class Client:
    """A blunt blocking JSONL client — tests want obvious, not fast."""

    def __init__(self, address, timeout: float = 30.0) -> None:
        self.sock = socket.create_connection(address, timeout=timeout)
        self.stream = self.sock.makefile("rwb")

    def send(self, payload) -> None:
        if isinstance(payload, (bytes, bytearray)):
            line = bytes(payload)
        else:
            line = json.dumps(payload).encode("utf-8")
        self.stream.write(line + b"\n")
        self.stream.flush()

    def recv(self) -> dict:
        line = self.stream.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    def ask(self, payload) -> dict:
        self.send(payload)
        return self.recv()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def match_payload(response: dict) -> str:
    body = {key: value for key, value in response.items()
            if key not in ("elapsed_ms", "trace_id")}
    return json.dumps(body, sort_keys=True)


class TestProtocol:
    def test_info_handshake(self, run_server, fitted_hard):
        _, address = run_server()
        client = Client(address)
        response = client.ask({"op": "info", "id": "i1"})
        client.close()
        assert response["ok"] is True and response["id"] == "i1"
        info = response["info"]
        assert info["vertices"] == [int(v) for v in fitted_hard.vertex_ids]
        assert info["images"] == len(fitted_hard.images)
        assert info["max_batch"] == 8

    def test_pipelined_responses_demux_by_id(self, run_server, fitted_hard):
        _, address = run_server()
        client = Client(address)
        vertices = list(fitted_hard.vertex_ids)
        for i, vertex in enumerate(vertices[:6]):
            client.send({"id": f"q{i}", "vertex": vertex, "top_k": 2})
        responses = {client.recv()["id"] for _ in range(6)}
        client.close()
        assert responses == {f"q{i}" for i in range(6)}

    def test_bad_json_line_answered_not_fatal(self, run_server,
                                              fitted_hard):
        _, address = run_server()
        client = Client(address)
        bad = client.ask(b"{this is not json")
        assert bad["ok"] is False
        assert bad["error"]["type"] == "bad_request"
        # the connection is still perfectly serviceable
        good = client.ask({"id": "after", "vertex":
                           int(fitted_hard.vertex_ids[0])})
        client.close()
        assert good["ok"] is True and good["id"] == "after"

    def test_unknown_vertex_typed_error(self, run_server):
        _, address = run_server()
        client = Client(address)
        response = client.ask({"id": 1, "vertex": 10 ** 9})
        client.close()
        assert response["ok"] is False
        assert response["error"]["type"] == "bad_request"

    def test_eof_flushes_in_flight_responses(self, run_server,
                                             fitted_hard):
        """Half-closing after pipelining must still deliver every
        response — the server flushes before hanging up."""
        _, address = run_server(batch_window_ms=20.0)
        client = Client(address)
        for i, vertex in enumerate(fitted_hard.vertex_ids[:4]):
            client.send({"id": i, "vertex": int(vertex)})
        client.sock.shutdown(socket.SHUT_WR)
        got = []
        while True:
            line = client.stream.readline()
            if not line:
                break
            got.append(json.loads(line)["id"])
        client.close()
        assert sorted(got) == [0, 1, 2, 3]


class TestBatchedExactness:
    def test_pipelined_equals_sequential_over_the_wire(self, run_server,
                                                       fitted_hard):
        """The acceptance criterion, measured at the socket: a windowful
        of concurrent queries answers bit-identically to the same
        queries sent one at a time (every batch a singleton)."""
        _, address = run_server(batch_window_ms=25.0, max_batch=32)
        vertices = [int(v) for v in fitted_hard.vertex_ids]
        requests = [{"id": f"r{i}", "vertex": v, "top_k": (i % 3) + 1}
                    for i, v in enumerate(vertices)]

        pipelined = Client(address)
        for request in requests:
            pipelined.send(request)
        batched = {}
        for _ in requests:
            response = pipelined.recv()
            batched[response["id"]] = response
        pipelined.close()

        sequential = Client(address)
        singles = {}
        for request in requests:  # strictly one at a time
            response = sequential.ask(request)
            singles[response["id"]] = response
        sequential.close()

        assert set(batched) == set(singles)
        for request_id in singles:
            assert match_payload(batched[request_id]) == \
                match_payload(singles[request_id]), request_id
        # and coalescing actually happened (not 2N singleton batches)
        sizes = registry().histogram("netserve.batch.size")
        assert sizes.row()["max"] > 1

    def test_cross_connection_coalescing(self, run_server, fitted_hard):
        """Two clients inside one window share a fused call — the whole
        point of batching at the server instead of the client."""
        _, address = run_server(batch_window_ms=200.0, max_batch=32)
        vertices = [int(v) for v in fitted_hard.vertex_ids]
        first, second = Client(address), Client(address)
        first.send({"id": "a", "vertex": vertices[0]})
        second.send({"id": "b", "vertex": vertices[1]})
        assert first.recv()["ok"] is True
        assert second.recv()["ok"] is True
        first.close()
        second.close()
        flushes = registry().counter("netserve.batch.flush_total").value
        sizes = registry().histogram("netserve.batch.size")
        assert flushes == 1
        assert sizes.row()["max"] == 2


class TestBackpressure:
    def test_overloaded_shed_past_conn_inflight(self, run_server,
                                                make_service,
                                                fitted_hard):
        """Pipelining past the per-connection cap without reading gets
        typed overloaded rejections, not unbounded buffering."""
        service = make_service()
        _, address = run_server(service=service, batch_window_ms=2000.0,
                                max_batch=1000, conn_inflight=2)
        client = Client(address)
        vertex = int(fitted_hard.vertex_ids[0])
        # 2 occupy the cap (parked in the huge window), the rest shed
        for i in range(5):
            client.send({"id": i, "vertex": vertex})
        outcomes = {}
        for _ in range(5):
            response = client.recv()
            outcomes[response["id"]] = response
        client.close()
        shed = [r for r in outcomes.values()
                if not r["ok"] and r["error"]["type"] == "overloaded"]
        served = [r for r in outcomes.values() if r["ok"]]
        assert len(shed) == 3
        assert len(served) == 2
        assert registry().counter(
            "netserve.conn.overloaded_total").value == 3

    def test_conns_gauge_tracks_connections(self, run_server):
        _, address = run_server()
        first = Client(address)
        first.ask({"op": "info", "id": 1})  # forces accept to complete
        assert registry().gauge("netserve.conns").value == 1.0
        second = Client(address)
        second.ask({"op": "info", "id": 2})
        assert registry().gauge("netserve.conns").value == 2.0
        first.close()
        second.close()


class TestDrain:
    def test_drain_flushes_inflight_then_exits_clean(self, run_server,
                                                     fitted_hard):
        """Requests parked in the window when drain starts are still
        answered; the fixture teardown asserts exit code 0."""
        server, address = run_server(batch_window_ms=5000.0,
                                     max_batch=1000)
        client = Client(address)
        for i, vertex in enumerate(fitted_hard.vertex_ids[:3]):
            client.send({"id": i, "vertex": int(vertex)})
        # wait until all three are accepted (in flight at the batcher):
        # drain guarantees flushing what was *accepted*, and bytes the
        # reader has not yet seen are not accepted
        import time
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and \
                registry().gauge("netserve.pending").value < 3:
            time.sleep(0.005)
        assert registry().gauge("netserve.pending").value == 3
        started = time.monotonic()
        server.trigger_drain()  # window has ~5s left: drain must not wait
        got = []
        while len(got) < 3:
            response = client.recv()
            got.append(response)
        client.close()
        assert all(r["ok"] for r in got)
        # drain flushed the parked window instead of waiting it out
        assert time.monotonic() - started < 4.0

    def test_new_connections_refused_after_drain(self, run_server):
        server, address = run_server()
        client = Client(address)
        client.ask({"op": "info", "id": 1})
        server.trigger_drain()
        client.close()
        # accept socket closes promptly; retry until it does
        import time
        deadline = time.monotonic() + 10.0
        refused = False
        while time.monotonic() < deadline and not refused:
            try:
                probe = socket.create_connection(address, timeout=1.0)
                probe.close()
                time.sleep(0.05)
            except OSError:
                refused = True
        assert refused
