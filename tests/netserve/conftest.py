"""Netserve fixtures: a cheap fitted service and a live TCP server.

The server fixture runs a real :class:`NetServer` on an ephemeral port
inside a background thread (no subprocess, no fitting per test) and
tears it down through the same drain path production uses — every test
run is also a graceful-shutdown test.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.matcher import CrossEM, CrossEMConfig
from repro.netserve import NetServeConfig, NetServer
from repro.obs import (registry, reset_spans, set_tracing_enabled,
                       trace_recorder)
from repro.serve import MatchService, ServeConfig


@pytest.fixture(autouse=True)
def clean_metrics():
    registry().reset()
    reset_spans()
    trace_recorder().reset()
    set_tracing_enabled(True)
    yield
    registry().reset()
    reset_spans()
    trace_recorder().reset()
    set_tracing_enabled(True)


@pytest.fixture(scope="session")
def fitted_hard(tiny_bundle, tiny_dataset):
    """Hard prompts, no tuning: the serving path without the training
    bill."""
    matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
    matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                tiny_dataset.entity_vertices)
    return matcher


@pytest.fixture()
def make_service(fitted_hard):
    created = []

    def make(**overrides) -> MatchService:
        settings = dict(capacity=32, workers=1)
        settings.update(overrides)
        service = MatchService(fitted_hard,
                               config=ServeConfig(**settings)).warmup()
        created.append(service)
        return service

    yield make
    for service in created:
        service.shutdown(timeout=5.0)


@pytest.fixture()
def run_server(make_service):
    """Start a NetServer on an ephemeral port; returns
    ``(server, (host, port))``.  Teardown drains gracefully and asserts
    the drain was clean — a hung drain fails the test that caused it."""
    started = []

    def start(service=None, **config_overrides):
        if service is None:
            service = make_service()
        settings = dict(host="127.0.0.1", port=0, batch_window_ms=5.0,
                        max_batch=8, drain_timeout_s=10.0)
        settings.update(config_overrides)
        server = NetServer(service, NetServeConfig(**settings))
        ready = threading.Event()
        bound = {}
        exit_code = {}

        def on_ready(address):
            bound["address"] = address
            ready.set()

        def main():
            exit_code["value"] = server.run(install_signals=False,
                                            ready=on_ready)
            ready.set()  # unblock even if startup failed

        thread = threading.Thread(target=main, daemon=True)
        thread.start()
        assert ready.wait(timeout=60), "server never became ready"
        assert "address" in bound, "server exited before binding"
        started.append((server, thread, exit_code))
        return server, bound["address"]

    yield start
    for server, thread, exit_code in started:
        server.trigger_drain()
        thread.join(timeout=30)
        assert not thread.is_alive(), "server failed to drain"
        assert exit_code.get("value") == 0, "drain was not clean"
