"""The ``stats`` control op: live scrape without stopping the process.

Over TCP (the NetServer front end) and over stdio (``serve_loop``),
``{"op": "stats"}`` must answer a point-in-time snapshot of the
process's registry, bucket histograms and span reservoirs — and two
scrapes bracketing real traffic must show the counters *moving*, which
is the whole point: observe a live worker mid-run, restart nothing.
"""

from __future__ import annotations

import io
import json
import time

from repro.obs.scrape import delta_summary, fetch_stats
from repro.serve.loop import serve_loop

from .test_server import Client


def rows_by_name(stats: dict) -> dict:
    return {row["name"]: row for row in stats["metrics"]}


class TestStatsOverTcp:
    def test_snapshot_shape(self, run_server):
        _, address = run_server()
        client = Client(address)
        response = client.ask({"op": "stats", "id": "s1"})
        client.close()
        assert response["ok"] is True and response["id"] == "s1"
        stats = response["stats"]
        assert isinstance(stats["metrics"], list)
        assert isinstance(stats["spans"], list)
        assert stats["captured_unix"] > 0
        assert "shard" not in stats, "unsharded worker claimed a slot"

    def test_sharded_worker_advertises_its_slot(self, run_server,
                                                make_service):
        service = make_service(shard_slot=1, shard_count=3)
        _, address = run_server(service)
        client = Client(address)
        stats = client.ask({"op": "stats", "id": "s1"})["stats"]
        client.close()
        assert stats["shard"] == {"slot": 1, "count": 3}

    def test_counters_move_between_scrapes_without_restart(
            self, run_server, fitted_hard):
        _, address = run_server()
        client = Client(address)
        before = client.ask({"op": "stats", "id": "s1"})["stats"]
        for i in range(3):
            answer = client.ask({"id": f"q{i}", "top_k": 1,
                                 "vertex": int(fitted_hard.vertex_ids[i])})
            assert answer["ok"] is True
        after = client.ask({"op": "stats", "id": "s2"})["stats"]
        client.close()
        window = delta_summary(before["metrics"], after["metrics"])
        assert window["offered"] == 3
        assert window["ok"] == 3
        assert window["availability"] == 1.0
        # the latency quantiles come from the bucket-backed histogram's
        # delta, not lifetime state
        assert window["p50_ms"] is not None
        assert window["latency_buckets"]["count"] == 3
        assert after["captured_unix"] >= before["captured_unix"]

    def test_fetch_stats_speaks_the_op(self, run_server):
        _, address = run_server()
        stats = fetch_stats(address, timeout=10.0)
        assert isinstance(stats["metrics"], list)
        names = {row["name"] for row in stats["metrics"]}
        assert "netserve.stats_total" in names

    def test_scrape_does_not_disturb_match_traffic(self, run_server,
                                                   fitted_hard):
        """Interleaved on one connection: stats answers never eat a
        match response's id, and vice versa."""
        _, address = run_server()
        client = Client(address)
        client.send({"id": "m1", "top_k": 1,
                     "vertex": int(fitted_hard.vertex_ids[0])})
        client.send({"op": "stats", "id": "s1"})
        responses = {client.recv()["id"]: None for _ in range(2)}
        client.close()
        assert set(responses) == {"m1", "s1"}


class TestStatsOverStdio:
    def test_loop_answers_stats_inline(self, make_service, fitted_hard):
        service = make_service()
        request = {"id": "q0", "top_k": 1,
                   "vertex": int(fitted_hard.vertex_ids[0])}
        sink = io.StringIO()

        def source():
            yield json.dumps({"op": "stats", "id": "s1"})
            yield json.dumps(request)
            # the match is answered by a pool thread: wait for its
            # response to land before scraping the "after" snapshot
            deadline = time.monotonic() + 30.0
            while '"q0"' not in sink.getvalue():
                assert time.monotonic() < deadline, "match never answered"
                time.sleep(0.01)
            yield json.dumps({"op": "stats", "id": "s2"})

        written = serve_loop(service, source(), sink)
        assert written == 3
        responses = {}
        for line in sink.getvalue().splitlines():
            row = json.loads(line)
            responses[row["id"]] = row
        assert responses["s1"]["ok"] is True
        assert responses["q0"]["ok"] is True
        window = delta_summary(responses["s1"]["stats"]["metrics"],
                               responses["s2"]["stats"]["metrics"])
        assert window["offered"] == 1 and window["ok"] == 1
