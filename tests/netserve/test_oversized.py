"""Oversized request lines: answered and survived, never fatal.

A client that pastes a huge blob into one line used to lose its
connection (and every pipelined request behind it) because
``StreamReader.readline`` cannot resync past its buffer limit.
:class:`LineReader` can: the oversized line is discarded through its
newline, answered with a typed ``bad_request`` (id ``null`` — the id
was inside the line we refused to buffer), and the very next line on
the same connection is served normally.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.netserve import LineReader, OversizedLine
from repro.netserve.protocol import MAX_LINE_BYTES
from repro.obs import registry

from .test_server import Client


class TestOversizedOverTheWire:
    def test_answered_typed_and_connection_survives(self, run_server,
                                                    fitted_hard):
        _, address = run_server()
        client = Client(address)
        huge = b'{"id": "big", "padding": "' + \
            b"x" * (MAX_LINE_BYTES + 1024) + b'"}'
        response = client.ask(huge)
        assert response["ok"] is False
        assert response["id"] is None
        assert response["error"]["type"] == "bad_request"
        assert registry().counter("netserve.oversized_line").value == 1
        # the connection is still perfectly serviceable
        good = client.ask({"id": "after",
                           "vertex": int(fitted_hard.vertex_ids[0])})
        client.close()
        assert good["ok"] is True and good["id"] == "after"

    def test_many_oversized_lines_each_answered(self, run_server,
                                                fitted_hard):
        _, address = run_server()
        client = Client(address)
        blob = b"y" * (MAX_LINE_BYTES + 1)
        for _ in range(3):
            response = client.ask(blob)
            assert response["ok"] is False
            assert response["error"]["type"] == "bad_request"
        good = client.ask({"id": "still-here",
                           "vertex": int(fitted_hard.vertex_ids[0])})
        client.close()
        assert good["ok"] is True
        assert registry().counter("netserve.oversized_line").value == 3


class TestLineReaderUnit:
    def run(self, coro):
        return asyncio.run(coro)

    def test_ordinary_lines_pass_through(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"one\ntwo\n")
            reader.feed_eof()
            lines = LineReader(reader, max_line_bytes=16)
            return [await lines.readline() for _ in range(3)]

        assert self.run(scenario()) == [b"one\n", b"two\n", b""]

    def test_oversized_line_raises_then_resyncs(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"z" * 64 + b"\nnext\n")
            reader.feed_eof()
            lines = LineReader(reader, max_line_bytes=16, chunk_bytes=8)
            with pytest.raises(OversizedLine) as blown:
                await lines.readline()
            assert blown.value.limit == 16
            return await lines.readline()

        assert self.run(scenario()) == b"next\n"

    def test_unterminated_tail_returned_at_eof(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"tail-without-newline")
            reader.feed_eof()
            lines = LineReader(reader, max_line_bytes=64)
            return await lines.readline(), await lines.readline()

        assert self.run(scenario()) == (b"tail-without-newline", b"")

    def test_oversized_tail_without_newline_still_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"w" * 64)
            reader.feed_eof()
            lines = LineReader(reader, max_line_bytes=16, chunk_bytes=8)
            with pytest.raises(OversizedLine):
                await lines.readline()
            return await lines.readline()

        assert self.run(scenario()) == b""
