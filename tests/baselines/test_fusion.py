"""Fusion-encoder baseline tests (miniature VisualBERT/ViLBERT/IMRAM/TransAE)."""

import numpy as np
import pytest

from repro.baselines.fusion import (IMRAMMatcher, TransAEMatcher,
                                    ViLBERTMatcher, VisualBERTMatcher)

FUSION_CLASSES = [VisualBERTMatcher, ViLBERTMatcher, IMRAMMatcher,
                  TransAEMatcher]


@pytest.fixture(scope="module", params=FUSION_CLASSES,
                ids=[c.name for c in FUSION_CLASSES])
def fitted(request, tiny_bundle, tiny_dataset):
    matcher = request.param(tiny_bundle, seed=0)
    matcher.epochs = 1  # keep the suite fast; pre-training still runs
    return matcher.fit(tiny_dataset)


class TestFusionBaselines:
    def test_score_shape(self, fitted, tiny_dataset):
        vertices = tiny_dataset.entity_vertices[:4]
        scores = fitted.score(vertices)
        assert scores.shape == (4, len(tiny_dataset.images))
        assert np.isfinite(scores).all()

    def test_evaluate_in_range(self, fitted, tiny_dataset):
        result = fitted.evaluate(tiny_dataset,
                                 tiny_dataset.entity_vertices[:5])
        assert 0.0 <= result.hits1 <= 100.0
        assert 0.0 < result.mrr <= 1.0

    def test_fit_is_idempotent_on_training(self, fitted, tiny_dataset):
        """A second fit must not re-pretrain (the checkpoint is reused)."""
        assert fitted._trained
        before = fitted.score(tiny_dataset.entity_vertices[:2])
        fitted.fit(tiny_dataset)
        after = fitted.score(tiny_dataset.entity_vertices[:2])
        np.testing.assert_allclose(before, after, atol=1e-6)
