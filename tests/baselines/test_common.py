"""Baseline protocol and shared helper tests."""

import numpy as np
import pytest

from repro.baselines.common import BaselineMatcher, caption_pairs_for_training


class TestBaselineProtocol:
    def test_score_is_abstract(self, tiny_bundle, tiny_dataset):
        matcher = BaselineMatcher(tiny_bundle).fit(tiny_dataset)
        with pytest.raises(NotImplementedError):
            matcher.score([0])

    def test_require_fitted(self, tiny_bundle):
        matcher = BaselineMatcher(tiny_bundle)
        with pytest.raises(RuntimeError):
            matcher._require_fitted()

    def test_image_pixels_stack(self, tiny_bundle, tiny_dataset):
        matcher = BaselineMatcher(tiny_bundle).fit(tiny_dataset)
        pixels = matcher._image_pixels()
        assert pixels.shape == (len(tiny_dataset.images), 24, 24, 3)

    def test_clip_image_embeddings_normalized(self, tiny_bundle,
                                              tiny_dataset):
        matcher = BaselineMatcher(tiny_bundle).fit(tiny_dataset)
        embeds = matcher._encode_images_clip()
        np.testing.assert_allclose(np.linalg.norm(embeds, axis=1),
                                   np.ones(len(tiny_dataset.images)),
                                   atol=1e-4)


class TestCaptionPairs:
    def test_counts_and_types(self, tiny_bundle):
        pairs = caption_pairs_for_training(tiny_bundle, seed=0,
                                           captions_per_concept=2)
        assert len(pairs) == 2 * len(tiny_bundle.universe)
        caption, pixels = pairs[0]
        assert isinstance(caption, str)
        assert pixels.shape == (24, 24, 3)

    def test_deterministic(self, tiny_bundle):
        a = caption_pairs_for_training(tiny_bundle, seed=4)
        b = caption_pairs_for_training(tiny_bundle, seed=4)
        assert [c for c, _ in a] == [c for c, _ in b]
        np.testing.assert_array_equal(a[0][1], b[0][1])
