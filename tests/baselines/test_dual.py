"""Dual-encoder baseline tests."""

import numpy as np
import pytest

from repro.baselines.dual import CLIPZeroShot


class TestCLIPZeroShot:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_bundle, tiny_dataset):
        return CLIPZeroShot(tiny_bundle).fit(tiny_dataset)

    def test_score_shape(self, fitted, tiny_dataset):
        scores = fitted.score(tiny_dataset.entity_vertices)
        assert scores.shape == (len(tiny_dataset.entity_vertices),
                                len(tiny_dataset.images))

    def test_scores_are_cosines(self, fitted, tiny_dataset):
        scores = fitted.score(tiny_dataset.entity_vertices[:2])
        assert np.abs(scores).max() <= 1.0 + 1e-4

    def test_score_before_fit_raises(self, tiny_bundle):
        with pytest.raises(RuntimeError):
            CLIPZeroShot(tiny_bundle).score([0])

    def test_evaluate_returns_metrics(self, fitted, tiny_dataset):
        result = fitted.evaluate(tiny_dataset)
        assert 0.0 <= result.hits1 <= 100.0
        assert 0.0 < result.mrr <= 1.0

    def test_beats_chance(self, fitted, tiny_dataset):
        result = fitted.evaluate(tiny_dataset)
        chance_mrr = (1.0 / np.arange(1, 21)).mean()  # random ranking MRR
        assert result.mrr > chance_mrr
