"""GPPT supervised baseline tests."""

import numpy as np
import pytest

from repro.baselines.gppt import GPPTMatcher
from repro.datasets.splits import train_test_split


class TestGPPT:
    @pytest.fixture(scope="class")
    def setup(self, tiny_bundle, tiny_dataset):
        split = train_test_split(tiny_dataset, 0.5, seed=0)
        matcher = GPPTMatcher(tiny_bundle, seed=0)
        matcher.epochs = 10
        matcher.fit(tiny_dataset, split)
        return matcher, split

    def test_score_shape(self, setup, tiny_dataset):
        matcher, split = setup
        scores = matcher.score(list(split.test))
        assert scores.shape == (len(split.test), len(tiny_dataset.images))

    def test_supervised_fit_learns_train_vertices(self, setup, tiny_dataset):
        """Supervision should make train-vertex ranking clearly better
        than chance (the method memorizes seen pairs)."""
        matcher, split = setup
        result = matcher.evaluate(tiny_dataset, list(split.train))
        chance_mrr = (1.0 / np.arange(1, len(tiny_dataset.images) + 1)).mean()
        assert result.mrr > chance_mrr

    def test_transfer_gap(self, setup, tiny_dataset):
        """Test vertices (unseen classes) should rank no better than
        train vertices — the generalization gap the paper reports."""
        matcher, split = setup
        train = matcher.evaluate(tiny_dataset, list(split.train))
        test = matcher.evaluate(tiny_dataset, list(split.test))
        assert test.mrr <= train.mrr + 0.05
