"""KG-completion baseline tests (case study, Table V)."""

import numpy as np
import pytest

from repro.baselines.kg import DistMultKG, MKGformerLite, RSMEKG, RotatEKG
from repro.datasets.splits import train_test_split

KG_CLASSES = [DistMultKG, RotatEKG, RSMEKG]


@pytest.fixture(scope="module")
def split(tiny_relational_dataset):
    return train_test_split(tiny_relational_dataset, 0.5, seed=0)


@pytest.fixture(scope="module", params=KG_CLASSES,
                ids=[c.name for c in KG_CLASSES])
def fitted(request, tiny_bundle, tiny_relational_dataset, split):
    matcher = request.param(tiny_bundle, seed=0)
    matcher.epochs = 8
    return matcher.fit(tiny_relational_dataset, split)


class TestKGEmbeddings:
    def test_score_shape(self, fitted, tiny_relational_dataset, split):
        scores = fitted.score(list(split.test))
        assert scores.shape == (len(split.test),
                                len(tiny_relational_dataset.images))
        assert np.isfinite(scores).all()

    def test_train_vertices_learn_links(self, fitted,
                                        tiny_relational_dataset, split):
        result = fitted.evaluate(tiny_relational_dataset, list(split.train))
        n = len(tiny_relational_dataset.images)
        chance_mrr = (1.0 / np.arange(1, n + 1)).mean()
        assert result.mrr > chance_mrr


class TestMKGformerLite:
    def test_fit_and_score(self, tiny_bundle, tiny_relational_dataset, split):
        matcher = MKGformerLite(tiny_bundle, seed=0)
        matcher.epochs = 4
        matcher.fit(tiny_relational_dataset, split)
        scores = matcher.score(list(split.test))
        assert scores.shape == (len(split.test),
                                len(tiny_relational_dataset.images))
        assert np.isfinite(scores).all()

    def test_handles_unseen_vertices(self, tiny_bundle,
                                     tiny_relational_dataset, split):
        matcher = MKGformerLite(tiny_bundle, seed=0)
        matcher.epochs = 2
        matcher.fit(tiny_relational_dataset, split)
        result = matcher.evaluate(tiny_relational_dataset, list(split.test))
        assert 0.0 <= result.hits1 <= 100.0
