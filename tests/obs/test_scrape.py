"""Fleet aggregation math and the live-scrape client.

Fabricated per-shard snapshots exercise the aggregation semantics
exactly (counters summed, identical bucket layouts merged bucketwise,
everything else labeled per shard); a threaded stub socket server
exercises :func:`fetch_stats` end to end, including its typed failure
modes.  The window math (:func:`delta_summary` /
:func:`combine_summaries`) is checked against hand-computed deltas —
it is what ``repro obs slo --connect`` judges a live fleet with.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.obs.hist import BucketHistogram
from repro.obs.scrape import (aggregate_fleet, combine_summaries,
                              delta_summary, fetch_stats)


def bucket_row(name: str, values, bounds=(1.0, 10.0, 100.0)) -> dict:
    hist = BucketHistogram(bounds)
    for value in values:
        hist.observe(value)
    doc = hist.to_dict()
    return {"type": "histogram", "name": name, "count": doc["count"],
            "sum": doc["sum"], "min": doc["min"], "max": doc["max"],
            "p50": hist.quantile(50.0), "p95": hist.quantile(95.0),
            "buckets": {"bounds": doc["bounds"],
                        "counts": doc["counts"]}}


def shard_stats(counter_value: int, latencies, *,
                bounds=(1.0, 10.0, 100.0), captured=100.0) -> dict:
    return {
        "metrics": [
            {"type": "counter", "name": "serve.requests_total",
             "value": counter_value},
            {"type": "gauge", "name": "serve.queue_depth", "value": 3.0},
            bucket_row("serve.request_ms", latencies, bounds),
        ],
        "spans": [{"type": "span", "name": "serve/score", "count": 2,
                   "total_seconds": 0.01, "p50_seconds": 0.005,
                   "p95_seconds": 0.008}],
        "captured_unix": captured,
    }


class TestAggregateFleet:
    def test_counters_sum_and_gauges_label(self):
        fleet = aggregate_fleet({"0": shard_stats(10, [5.0]),
                                 "1": shard_stats(32, [50.0])})
        by_name = {}
        for row in fleet["metrics"]:
            by_name.setdefault(row["name"], []).append(row)
        totals = by_name["serve.requests_total"]
        assert len(totals) == 1 and totals[0]["value"] == 42
        assert "labels" not in totals[0]
        gauges = by_name["serve.queue_depth"]
        assert sorted(g["labels"]["shard"] for g in gauges) == ["0", "1"]
        spans = fleet["spans"]
        assert {s["labels"]["shard"] for s in spans} == {"0", "1"}
        assert fleet["shards"] == {"total": 2, "answered": 2}
        assert fleet["captured_unix"] == 100.0

    def test_identical_bucket_layouts_merge_exactly(self):
        fleet = aggregate_fleet({"0": shard_stats(1, [0.5, 5.0]),
                                 "1": shard_stats(1, [50.0])})
        merged = [row for row in fleet["metrics"]
                  if row["name"] == "serve.request_ms"]
        assert len(merged) == 1 and "labels" not in merged[0]
        assert merged[0]["count"] == 3
        assert merged[0]["buckets"]["counts"] == [1, 1, 1, 0]

    def test_disagreeing_layouts_fall_back_to_labels(self):
        fleet = aggregate_fleet({
            "0": shard_stats(1, [5.0], bounds=(1.0, 10.0, 100.0)),
            "1": shard_stats(1, [5.0], bounds=(2.0, 20.0))})
        rows = [row for row in fleet["metrics"]
                if row["name"] == "serve.request_ms"]
        assert sorted(r["labels"]["shard"] for r in rows) == ["0", "1"], \
            "disagreeing bucket layouts must not be merged into fiction"

    def test_unanswered_shard_costs_coverage_not_the_scrape(self):
        fleet = aggregate_fleet({"0": shard_stats(7, [5.0]), "1": None})
        assert fleet["shards"] == {"total": 2, "answered": 1}
        assert fleet["per_shard"]["1"] is None
        totals = [row for row in fleet["metrics"]
                  if row["name"] == "serve.requests_total"]
        assert totals[0]["value"] == 7

    def test_own_rows_append_without_double_counting(self):
        own = [{"type": "counter", "name": "shard.router.requests_total",
                "value": 5},
               {"type": "counter", "name": "serve.requests_total",
                "value": 999}]  # shards already reported this family
        fleet = aggregate_fleet({"0": shard_stats(10, [5.0])},
                                own_rows=own)
        by_name = {}
        for row in fleet["metrics"]:
            by_name.setdefault(row["name"], []).append(row)
        assert by_name["shard.router.requests_total"][0]["value"] == 5
        assert len(by_name["serve.requests_total"]) == 1
        assert by_name["serve.requests_total"][0]["value"] == 10


def summary_rows(offered, ok, degraded, shed, errors, latencies) -> list:
    return [
        {"type": "counter", "name": "serve.requests_total",
         "value": offered},
        {"type": "counter", "name": "serve.ok_total", "value": ok},
        {"type": "counter", "name": "serve.degraded_total",
         "value": degraded},
        {"type": "counter", "name": "serve.error.overloaded",
         "value": shed},
        {"type": "counter", "name": "serve.error_total", "value": errors},
        bucket_row("serve.request_ms", latencies),
    ]


class TestDeltaSummary:
    def test_window_between_two_scrapes(self):
        before = summary_rows(100, 90, 5, 3, 2, [5.0] * 10)
        after = summary_rows(150, 130, 10, 6, 4, [5.0] * 10 + [50.0] * 10)
        summary = delta_summary(before, after)
        assert summary["offered"] == 50
        assert summary["ok"] == 40 and summary["degraded"] == 5
        assert summary["answered"] == 45
        assert summary["shed"] == 3 and summary["errors"] == 2
        assert summary["availability"] == pytest.approx(0.9)
        assert summary["degraded_fraction"] == pytest.approx(0.1)
        assert summary["shed_fraction"] == pytest.approx(0.06)
        # the window's latencies are the 10 new 50ms observations: the
        # cumulative 5ms ones subtract away
        assert summary["p50_ms"] > 10.0
        assert summary["latency_buckets"]["count"] == 10

    def test_empty_window_judges_nothing(self):
        rows = summary_rows(100, 90, 5, 3, 2, [5.0])
        summary = delta_summary(rows, rows)
        assert summary["offered"] == 0
        assert summary["availability"] is None
        assert summary["p95_ms"] is None

    def test_missing_latency_metric_yields_none_not_stale(self):
        before = summary_rows(10, 10, 0, 0, 0, [5.0])
        after = summary_rows(20, 20, 0, 0, 0, [5.0, 5.0])
        stripped = [row for row in after
                    if row["name"] != "serve.request_ms"]
        summary = delta_summary(before, stripped)
        assert summary["p50_ms"] is None
        assert summary["latency_buckets"] is None

    def test_labeled_rows_are_ignored(self):
        """Per-shard facets must not shadow the aggregated families."""
        before = summary_rows(10, 10, 0, 0, 0, [5.0])
        after = summary_rows(30, 30, 0, 0, 0, [5.0, 5.0]) + [
            {"type": "counter", "name": "serve.requests_total",
             "value": 9999, "labels": {"shard": "0"}}]
        assert delta_summary(before, after)["offered"] == 20


class TestCombineSummaries:
    def test_sliding_window_fold(self):
        before = summary_rows(0, 0, 0, 0, 0, [])
        mid = summary_rows(50, 45, 0, 5, 0, [5.0] * 45)
        after = summary_rows(100, 90, 5, 5, 0,
                             [5.0] * 45 + [50.0] * 50)
        combined = combine_summaries([delta_summary(before, mid),
                                      delta_summary(mid, after)])
        assert combined["offered"] == 100
        assert combined["answered"] == 95
        assert combined["availability"] == pytest.approx(0.95)
        assert combined["latency_buckets"]["count"] == 95
        assert combined["p95_ms"] > 10.0

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            combine_summaries([])


class StubStatsServer:
    """A one-op JSONL server: answers ``stats`` with a canned payload
    (or a canned failure) and hangs up."""

    def __init__(self, response_line: bytes) -> None:
        self.server = socket.create_server(("127.0.0.1", 0))
        self.address = self.server.getsockname()[:2]
        self.response_line = response_line
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self) -> None:
        try:
            conn, _ = self.server.accept()
        except OSError:
            return
        with conn:
            conn.makefile("rb").readline()
            if self.response_line:
                conn.sendall(self.response_line)
        self.server.close()

    def close(self) -> None:
        try:
            self.server.close()
        except OSError:
            pass
        self.thread.join(timeout=5.0)


class TestFetchStats:
    def test_round_trip(self):
        payload = {"id": "scrape", "ok": True,
                   "stats": shard_stats(3, [5.0])}
        server = StubStatsServer(
            (json.dumps(payload) + "\n").encode("utf-8"))
        try:
            stats = fetch_stats(server.address, timeout=5.0)
        finally:
            server.close()
        assert stats["metrics"][0]["value"] == 3
        assert stats["captured_unix"] == 100.0

    def test_hangup_is_a_connection_error(self):
        server = StubStatsServer(b"")
        with pytest.raises(ConnectionError):
            try:
                fetch_stats(server.address, timeout=5.0)
            finally:
                server.close()

    def test_typed_error_response_raises_runtime(self):
        body = {"id": "scrape", "ok": False,
                "error": {"type": "bad_request"}}
        server = StubStatsServer(
            (json.dumps(body) + "\n").encode("utf-8"))
        with pytest.raises(RuntimeError):
            try:
                fetch_stats(server.address, timeout=5.0)
            finally:
                server.close()
