"""Frontier sweeps: knee rule, artifact round-trip, diff integration."""

from __future__ import annotations

import json

import pytest

from repro.obs.diff import (DEFAULT_WATCH, diff_rows, find_regressions,
                            load_rows)
from repro.obs.frontier import (FRONTIER_SCHEMA, detect_knee,
                                format_frontier, frontier_rows,
                                is_frontier_doc, load_frontier,
                                save_frontier, sweep_frontier)
from repro.obs.slo import SLOSpec


def fake_run_point(breaking_rate):
    """A run_point whose p99 explodes at and past ``breaking_rate``."""

    def run_point(rate: float) -> dict:
        slow = rate >= breaking_rate
        return {"offered": int(rate), "p50_ms": 1.0, "p95_ms": 2.0,
                "p99_ms": 500.0 if slow else 5.0,
                "availability": 0.5 if slow else 1.0,
                "degraded_fraction": 0.0, "shed_fraction": 0.0}

    return run_point


SPEC = SLOSpec(name="t", p99_ms=100.0, availability=0.9)


class TestSweep:
    def test_knee_is_last_passing_rate(self):
        doc = sweep_frontier(fake_run_point(20.0), [5.0, 10.0, 20.0, 40.0],
                             SPEC)
        assert doc["schema"] == FRONTIER_SCHEMA
        assert [point["ok"] for point in doc["points"]] == \
            [True, True, False, False]
        assert doc["knee"]["rate"] == 10.0

    def test_no_knee_when_first_rate_fails(self):
        doc = sweep_frontier(fake_run_point(1.0), [5.0, 10.0], SPEC)
        assert doc["knee"] is None

    def test_contiguous_prefix_rule(self):
        """A fluke pass above a failing rate must not become the knee."""
        verdicts = iter([True, False, True])  # pass, fail, fluke pass

        def flaky(rate: float) -> dict:
            good = next(verdicts)
            return {"p99_ms": 5.0 if good else 500.0, "availability": 1.0}

        doc = sweep_frontier(flaky, [1.0, 2.0, 3.0], SPEC)
        assert doc["knee"]["rate"] == 1.0

    def test_rates_must_ascend(self):
        with pytest.raises(ValueError):
            sweep_frontier(fake_run_point(1.0), [5.0, 5.0], SPEC)
        with pytest.raises(ValueError):
            sweep_frontier(fake_run_point(1.0), [], SPEC)

    def test_progress_callback_sees_each_rate(self):
        messages = []
        sweep_frontier(fake_run_point(99.0), [1.0, 2.0], SPEC,
                       progress=messages.append)
        assert sum("offered rate" in m for m in messages) == 2


class TestDetectKnee:
    def test_empty_points(self):
        assert detect_knee([]) is None

    def test_all_passing_returns_last(self):
        points = [{"rate": r, "ok": True} for r in (1.0, 2.0)]
        assert detect_knee(points)["rate"] == 2.0


class TestArtifact:
    def test_save_load_round_trip(self, tmp_path):
        doc = sweep_frontier(fake_run_point(20.0), [5.0, 10.0, 20.0], SPEC)
        path = save_frontier(tmp_path / "frontier.json", doc)
        loaded = load_frontier(path)
        assert loaded == json.loads(json.dumps(doc))  # JSON-safe
        assert is_frontier_doc(loaded)

    def test_load_rejects_non_frontier(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load_frontier(path)

    def test_format_marks_knee(self):
        doc = sweep_frontier(fake_run_point(20.0), [5.0, 10.0, 20.0], SPEC)
        text = format_frontier(doc)
        assert "knee: 10 req/s" in text
        assert "FAIL" in text and "pass" in text

    def test_format_without_knee(self):
        doc = sweep_frontier(fake_run_point(1.0), [5.0], SPEC)
        assert "knee: none" in format_frontier(doc)


class TestDiffIntegration:
    def test_rows_expose_time_shaped_knee_gauge(self):
        doc = sweep_frontier(fake_run_point(20.0), [5.0, 10.0, 20.0], SPEC)
        rows = {row["name"]: row["value"] for row in frontier_rows(doc)}
        assert rows["frontier.knee.rate"] == 10.0
        assert rows["frontier.knee.interarrival_ms"] == pytest.approx(100.0)
        assert rows["frontier.point.r5.ok"] == 1.0
        assert rows["frontier.point.r20.ok"] == 0.0

    def test_load_rows_detects_frontier_file(self, tmp_path):
        doc = sweep_frontier(fake_run_point(20.0), [5.0, 10.0], SPEC)
        path = save_frontier(tmp_path / "frontier.json", doc)
        names = [row["name"] for row in load_rows(path)]
        assert "frontier.knee.interarrival_ms" in names

    def test_capacity_regression_trips_default_watch(self, tmp_path):
        """The CI gate: a lower knee means a larger inter-arrival gap,
        which the default time-shaped watch flags as a regression."""
        good = sweep_frontier(fake_run_point(40.0), [5.0, 10.0, 20.0], SPEC)
        bad = sweep_frontier(fake_run_point(10.0), [5.0, 10.0, 20.0], SPEC)
        entries = diff_rows(frontier_rows(good), frontier_rows(bad))
        regressions = find_regressions(entries, threshold_pct=25.0,
                                       watch=DEFAULT_WATCH)
        names = {entry.name for entry in regressions}
        assert "frontier.knee.interarrival_ms" in names

    def test_rows_without_knee_still_describe_points(self):
        doc = sweep_frontier(fake_run_point(1.0), [5.0], SPEC)
        names = [row["name"] for row in frontier_rows(doc)]
        assert "frontier.knee.rate" not in names
        assert "frontier.point.r5.ok" in names
