"""OpenMetrics renderer tests: family typing, sanitation, escaping."""

from repro.obs import registry, span
from repro.obs.promtext import export_prom, render_openmetrics


class TestRender:
    def test_counter_gets_total_suffix_and_type(self):
        text = render_openmetrics(
            [{"type": "counter", "name": "cache.hit", "value": 3}])
        assert "# TYPE repro_cache_hit counter" in text
        assert "repro_cache_hit_total 3" in text

    def test_counter_named_total_does_not_double_suffix(self):
        text = render_openmetrics(
            [{"type": "counter", "name": "serve.requests_total",
              "value": 3}])
        assert "repro_serve_requests_total 3" in text
        assert "_total_total" not in text

    def test_gauge_renders_plain_sample(self):
        text = render_openmetrics(
            [{"type": "gauge", "name": "train.pairs_per_sec",
              "value": 812.5}])
        assert "# TYPE repro_train_pairs_per_sec gauge" in text
        assert "repro_train_pairs_per_sec 812.5" in text

    def test_histogram_renders_as_summary(self):
        text = render_openmetrics(
            [{"type": "histogram", "name": "epoch.loss", "count": 4,
              "sum": 2.0, "min": 0.1, "max": 0.9, "p50": 0.4, "p95": 0.9}])
        assert "# TYPE repro_epoch_loss summary" in text
        assert 'repro_epoch_loss{quantile="0.5"} 0.4' in text
        assert 'repro_epoch_loss{quantile="0.95"} 0.9' in text
        assert "repro_epoch_loss_count 4" in text
        assert "repro_epoch_loss_sum 2" in text

    def _bucket_row(self):
        from repro.obs import registry
        from repro.obs.hist import BucketHistogram

        hist = registry().histogram("load.latency_ms",
                                    buckets=[1.0, 10.0, 100.0])
        for value in (0.5, 5.0, 5.0, 50.0, 500.0):
            hist.observe(value)
        return hist.row()

    def test_bucket_histogram_renders_classic_le_family(self):
        text = render_openmetrics([self._bucket_row()])
        assert "# TYPE repro_load_latency_ms histogram" in text
        assert 'repro_load_latency_ms_bucket{le="1"} 1' in text
        assert 'repro_load_latency_ms_bucket{le="10"} 3' in text
        assert 'repro_load_latency_ms_bucket{le="100"} 4' in text
        assert 'repro_load_latency_ms_bucket{le="+Inf"} 5' in text
        assert "repro_load_latency_ms_count 5" in text
        # a bucket family is a histogram, never a summary
        assert 'quantile=' not in text

    def test_bucket_family_cumulative_counts_monotone(self):
        text = render_openmetrics([self._bucket_row()])
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in text.splitlines() if "_bucket{" in line]
        assert counts == sorted(counts)

    def test_inf_bucket_equals_count_even_with_overflow(self):
        row = self._bucket_row()
        text = render_openmetrics([row])
        inf_line = next(line for line in text.splitlines()
                        if 'le="+Inf"' in line)
        count_line = next(line for line in text.splitlines()
                          if line.startswith("repro_load_latency_ms_count"))
        assert inf_line.rsplit(" ", 1)[1] == count_line.rsplit(" ", 1)[1]

    def test_eof_still_terminal_with_bucket_families(self):
        text = render_openmetrics([
            self._bucket_row(),
            {"type": "counter", "name": "zz", "value": 1}])
        assert text.endswith("# EOF\n")
        assert text.count("# EOF") == 1

    def test_span_rows_share_one_labelled_family(self):
        rows = [{"type": "span", "name": "fit/epoch", "count": 2,
                 "total_seconds": 0.5, "p50_seconds": 0.2,
                 "p95_seconds": 0.3},
                {"type": "span", "name": "serve/full", "count": 1,
                 "total_seconds": 0.1, "p50_seconds": 0.1,
                 "p95_seconds": 0.1}]
        text = render_openmetrics(rows)
        assert text.count("# TYPE repro_span_seconds summary") == 1
        assert 'repro_span_seconds{span="fit/epoch",quantile="0.5"} 0.2' \
            in text
        assert 'repro_span_seconds_count{span="serve/full"} 1' in text

    def test_trace_and_meta_rows_are_not_scraped(self):
        rows = [{"type": "meta", "schema_version": 2},
                {"type": "trace", "trace_id": "abc", "duration_ms": 1.0}]
        assert render_openmetrics(rows) == "# EOF\n"

    def test_ends_with_eof_and_families_sorted(self):
        rows = [{"type": "counter", "name": "zz", "value": 1},
                {"type": "counter", "name": "aa", "value": 2}]
        text = render_openmetrics(rows)
        assert text.endswith("# EOF\n")
        assert text.index("repro_aa_total") < text.index("repro_zz_total")

    def test_name_sanitation_and_label_escaping(self):
        text = render_openmetrics(
            [{"type": "counter", "name": "a-b.c d", "value": 1},
             {"type": "span", "name": 'odd"name\\x', "count": 1,
              "total_seconds": 0.0, "p50_seconds": 0.0,
              "p95_seconds": 0.0}])
        assert "repro_a_b_c_d_total 1" in text
        assert 'span="odd\\"name\\\\x"' in text

    def test_leading_digit_and_empty_prefix(self):
        text = render_openmetrics(
            [{"type": "counter", "name": "9lives", "value": 1}], prefix="")
        assert "_9lives_total 1" in text


class TestShardLabels:
    """PR 10: rows may carry ``labels`` (the fleet scrape's per-shard
    facets) and every sample line of the family must braced-render
    them, composing with the renderer's own ``le``/``quantile``."""

    def test_labeled_counter_and_gauge(self):
        text = render_openmetrics(
            [{"type": "counter", "name": "serve.requests_total",
              "value": 3, "labels": {"shard": "2"}},
             {"type": "gauge", "name": "serve.depth", "value": 1.5,
              "labels": {"shard": "0"}}])
        assert 'repro_serve_requests_total{shard="2"} 3' in text
        assert 'repro_serve_depth{shard="0"} 1.5' in text

    def test_labeled_bucket_family_composes_with_le(self):
        text = render_openmetrics(
            [{"type": "histogram", "name": "serve.request_ms",
              "count": 2, "sum": 6.0, "min": 1.0, "max": 5.0,
              "p50": 1.0, "p95": 5.0,
              "buckets": {"bounds": [1.0, 10.0], "counts": [1, 1, 0]},
              "labels": {"shard": "1"}}])
        assert 'repro_serve_request_ms_bucket{shard="1",le="1"} 1' in text
        assert 'repro_serve_request_ms_bucket{shard="1",le="10"} 2' \
            in text
        assert 'repro_serve_request_ms_bucket{shard="1",le="+Inf"} 2' \
            in text
        assert 'repro_serve_request_ms_count{shard="1"} 2' in text
        assert 'repro_serve_request_ms_sum{shard="1"} 6' in text

    def test_labeled_summary_and_span_rows(self):
        text = render_openmetrics(
            [{"type": "histogram", "name": "lat", "count": 1, "sum": 2.0,
              "min": 2.0, "max": 2.0, "p50": 2.0, "p95": 2.0,
              "labels": {"shard": "0"}},
             {"type": "span", "name": "serve/score", "count": 1,
              "total_seconds": 0.1, "p50_seconds": 0.1,
              "p95_seconds": 0.1, "labels": {"shard": "2"}}])
        assert 'repro_lat{shard="0",quantile="0.5"} 2' in text
        assert 'repro_span_seconds{shard="2",span="serve/score",' \
               'quantile="0.5"} 0.1' in text
        assert 'repro_span_seconds_count{shard="2",span="serve/score"} 1' \
            in text

    def test_same_family_mixes_labeled_and_unlabeled_rows(self):
        """An aggregated family (unlabeled sum) and per-shard facets
        coexist; unlabeled rows render byte-identically to pre-PR-10."""
        text = render_openmetrics(
            [{"type": "counter", "name": "hits", "value": 5},
             {"type": "counter", "name": "hits", "value": 3,
              "labels": {"shard": "1"}}])
        assert "repro_hits_total 5" in text
        assert 'repro_hits_total{shard="1"} 3' in text
        assert text.count("# TYPE repro_hits counter") == 1

    def test_label_values_escape(self):
        text = render_openmetrics(
            [{"type": "counter", "name": "c", "value": 1,
              "labels": {"shard": 'we"ird\\2'}}])
        assert 'shard="we\\"ird\\\\2"' in text


class TestExportProm:
    def test_writes_registry_and_span_snapshot(self, tmp_path):
        registry().counter("cache.hit").inc(2)
        with span("fit"):
            pass
        out = export_prom(tmp_path / "deep" / "run.prom")
        text = out.read_text()
        assert "repro_cache_hit_total 2" in text
        assert 'repro_span_seconds_count{span="fit"} 1' in text
        assert text.endswith("# EOF\n")
