"""SLO engine: objective verdicts, budget math, spec (de)serialisation."""

from __future__ import annotations

import json

import pytest

from repro.obs.slo import SLOSpec, evaluate_slo, format_slo, load_spec


def summary(**overrides) -> dict:
    base = {"p50_ms": 5.0, "p95_ms": 20.0, "p99_ms": 80.0,
            "availability": 0.995, "degraded_fraction": 0.02,
            "shed_fraction": 0.0}
    base.update(overrides)
    return base


class TestSpec:
    def test_needs_at_least_one_objective(self):
        with pytest.raises(ValueError):
            SLOSpec(name="empty")

    @pytest.mark.parametrize("kwargs", [
        dict(p99_ms=0.0), dict(p50_ms=-1.0), dict(availability=1.5),
        dict(max_degraded=-0.1), dict(max_shed=2.0),
    ])
    def test_invalid_bounds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SLOSpec(**kwargs)

    def test_dict_round_trip_omits_disabled(self):
        spec = SLOSpec(name="s", p99_ms=100.0, availability=0.99)
        doc = spec.to_dict()
        assert doc == {"name": "s", "p99_ms": 100.0, "availability": 0.99}
        assert SLOSpec.from_dict(doc) == spec

    def test_unknown_objective_raises(self):
        with pytest.raises(ValueError, match="p9999_ms"):
            SLOSpec.from_dict({"p9999_ms": 1.0})

    def test_load_spec_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"name": "f", "p95_ms": 50.0}))
        assert load_spec(path) == SLOSpec(name="f", p95_ms=50.0)
        path.write_text("[1,2]")
        with pytest.raises(ValueError):
            load_spec(path)


class TestEvaluate:
    def test_all_objectives_pass(self):
        spec = SLOSpec(p50_ms=10.0, p95_ms=50.0, p99_ms=100.0,
                       availability=0.99, max_degraded=0.05, max_shed=0.01)
        result = evaluate_slo(spec, summary())
        assert result.ok
        assert len(result.objectives) == 6
        assert result.violations == []

    def test_latency_violation_detected(self):
        result = evaluate_slo(SLOSpec(p99_ms=50.0), summary(p99_ms=80.0))
        assert not result.ok
        (violation,) = result.violations
        assert violation.objective == "p99_ms"
        assert violation.measured == 80.0

    def test_availability_direction_is_floor(self):
        result = evaluate_slo(SLOSpec(availability=0.999),
                              summary(availability=0.995))
        assert not result.ok
        assert result.objectives[0].direction == ">="

    def test_missing_measurement_fails_loudly(self):
        """An SLO that passes because nothing was measured is not an
        SLO — absent keys must fail the objective, not skip it."""
        result = evaluate_slo(SLOSpec(p99_ms=100.0), {})
        assert not result.ok
        assert result.objectives[0].measured is None

    def test_burn_rate_and_budget(self):
        # target 0.99 => 1% allowed failure; observed 0.5% => burn 0.5
        result = evaluate_slo(SLOSpec(availability=0.99),
                              summary(availability=0.995))
        assert result.burn_rate == pytest.approx(0.5)
        assert result.budget_remaining == pytest.approx(0.5)
        # observed 2% failure => burn 2.0, budget gone
        result = evaluate_slo(SLOSpec(availability=0.99),
                              summary(availability=0.98))
        assert result.burn_rate == pytest.approx(2.0)
        assert result.budget_remaining == 0.0

    def test_perfect_target_burn_rate(self):
        result = evaluate_slo(SLOSpec(availability=1.0),
                              summary(availability=1.0))
        assert result.burn_rate == 0.0
        result = evaluate_slo(SLOSpec(availability=1.0),
                              summary(availability=0.999))
        assert result.burn_rate == float("inf")

    def test_no_availability_objective_no_budget_math(self):
        result = evaluate_slo(SLOSpec(p99_ms=100.0), summary())
        assert result.burn_rate is None
        assert result.budget_remaining is None

    def test_to_dict_is_json_safe(self):
        result = evaluate_slo(SLOSpec(p99_ms=100.0, availability=0.99),
                              summary())
        doc = json.loads(json.dumps(result.to_dict()))
        assert doc["ok"] is True
        assert len(doc["objectives"]) == 2


class TestFormat:
    def test_renders_verdicts_and_budget(self):
        result = evaluate_slo(
            SLOSpec(name="frontier", p99_ms=50.0, availability=0.99),
            summary(p99_ms=80.0))
        text = format_slo(result)
        assert "SLO 'frontier': FAIL" in text
        assert "VIOLATED" in text
        assert "burn rate" in text

    def test_unmeasured_rendered_explicitly(self):
        text = format_slo(evaluate_slo(SLOSpec(max_shed=0.1), {}))
        assert "unmeasured" in text
