"""Metrics-diff tests: flattening, regression policy, bench loading."""

import json

import pytest

from repro.obs.diff import (DEFAULT_WATCH, DiffEntry, diff_rows,
                            find_regressions, flatten_rows, format_diff,
                            load_rows)


def entry(name, old, new):
    return DiffEntry(name, old, new)


class TestFlatten:
    def test_each_instrument_kind_flattens(self):
        rows = [
            {"type": "counter", "name": "hits", "value": 3},
            {"type": "gauge", "name": "depth", "value": 1.5},
            {"type": "histogram", "name": "loss", "count": 2, "sum": 0.5,
             "min": 0.1, "max": 0.4, "p50": 0.2, "p95": 0.4},
            {"type": "span", "name": "fit/epoch", "count": 4,
             "total_seconds": 2.0, "p50_seconds": 0.4, "p95_seconds": 0.9},
            {"type": "meta", "schema_version": 2},
            {"type": "trace", "trace_id": "x", "duration_ms": 9.0},
        ]
        flat = flatten_rows(rows)
        assert flat["hits"] == 3.0
        assert flat["depth"] == 1.5
        assert flat["loss.p95"] == 0.4
        assert flat["fit/epoch.total_seconds"] == 2.0
        assert flat["fit/epoch.p50"] == 0.4
        assert not any(key.startswith("trace") for key in flat)

    def test_one_sided_metrics_survive_with_none(self):
        old = [{"type": "counter", "name": "gone", "value": 1}]
        new = [{"type": "counter", "name": "born", "value": 2}]
        entries = {e.name: e for e in diff_rows(old, new)}
        assert entries["gone"].new is None
        assert entries["born"].old is None
        assert entries["gone"].delta is None  # never a regression


class TestRegressionPolicy:
    def test_watched_increase_past_threshold_breaches(self):
        entries = [entry("serve.latency_ms", 10.0, 20.0)]
        assert find_regressions(entries, threshold_pct=25.0) == entries

    def test_unwatched_names_never_breach(self):
        entries = [entry("cache.hits", 10.0, 1000.0)]
        assert find_regressions(entries, threshold_pct=1.0) == []

    def test_improvements_never_breach(self):
        entries = [entry("serve.latency_ms", 20.0, 10.0)]
        assert find_regressions(entries) == []

    def test_min_delta_noise_floor(self):
        entries = [entry("fit.p95", 0.001, 0.002)]  # +100% but tiny
        assert find_regressions(entries, threshold_pct=25.0,
                                min_delta=0.01) == []
        assert find_regressions(entries, threshold_pct=25.0,
                                min_delta=0.0005) == entries

    def test_threshold_is_relative(self):
        entries = [entry("fit.total_seconds", 100.0, 110.0)]
        assert find_regressions(entries, threshold_pct=25.0) == []
        assert find_regressions(entries, threshold_pct=5.0) == entries

    def test_custom_watch_globs(self):
        entries = [entry("queue.depth", 1.0, 10.0)]
        assert find_regressions(entries, threshold_pct=10.0,
                                watch=("queue.*",)) == entries

    def test_default_watch_covers_time_shaped_names(self):
        for name in ("span_seconds", "encode_s", "handle_ms",
                     "loss.p50", "fit/epoch.p95", "trace.duration_x"):
            entries = [entry(name, 1.0, 10.0)]
            assert find_regressions(entries) == entries, name


class TestLoadRows:
    def test_bench_report_becomes_synthetic_gauges(self, tmp_path):
        doc = {"mode": "quick", "paths": {
            "encode_images": {"optimized_s": 0.5, "reference_s": 1.5,
                              "speedup": 3.0, "note": "text"}}}
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(doc))
        rows = load_rows(path)
        flat = flatten_rows(rows)
        assert flat["bench.encode_images.optimized_s"] == 0.5
        assert flat["bench.encode_images.speedup"] == 3.0
        assert "bench.encode_images.note" not in flat

    def test_jsonl_loads_as_rows(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            '{"type": "counter", "name": "hits", "value": 1}\n')
        assert flatten_rows(load_rows(path)) == {"hits": 1.0}

    def test_bench_vs_jsonl_diff_gates_on_regression(self, tmp_path):
        """The CI-gate shape: committed bench baseline vs a fresh run
        with a seeded regression on one watched series."""
        old = tmp_path / "baseline.json"
        old.write_text(json.dumps(
            {"paths": {"score": {"optimized_s": 1.0}}}))
        new = tmp_path / "current.json"
        new.write_text(json.dumps(
            {"paths": {"score": {"optimized_s": 2.0}}}))
        entries = diff_rows(load_rows(old), load_rows(new))
        breaches = find_regressions(entries, threshold_pct=50.0)
        assert [b.name for b in breaches] == ["bench.score.optimized_s"]


class TestFormat:
    def test_table_marks_breaches_and_pct(self):
        entries = [entry("a.latency_ms", 10.0, 20.0),
                   entry("b.count", 5.0, 5.0)]
        breaches = find_regressions(entries)
        text = format_diff(entries, breaches)
        lines = text.splitlines()
        assert lines[0].split() == ["metric", "old", "new", "delta", "pct"]
        assert any(line.startswith("!") and "a.latency_ms" in line
                   and "+100.0%" in line for line in lines)
        assert any(line.startswith(" ") and "b.count" in line
                   for line in lines)

    def test_changed_only_hides_stable_rows(self):
        entries = [entry("same", 1.0, 1.0), entry("moved", 1.0, 2.0),
                   entry("new", None, 3.0)]
        text = format_diff(entries, changed_only=True)
        assert "same" not in text
        assert "moved" in text
        assert "new" in text  # one-sided rows always visible

    def test_infinite_pct_renders(self):
        text = format_diff([entry("fresh", 0.0, 2.0)])
        assert "inf" in text
