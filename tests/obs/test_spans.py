"""Span timer tests: nesting, aggregation, percentiles, disabled path."""

from repro.obs import (format_profile, registry, reset_spans,
                       set_spans_enabled, span, span_snapshot, spans_enabled)
from repro.obs.spans import _MAX_SAMPLES, Reservoir, percentile


def _by_name(rows):
    return {row["name"]: row for row in rows}


class TestNesting:
    def test_nested_spans_build_slash_paths(self):
        with span("fit"):
            with span("epoch"):
                with span("labels"):
                    pass
        names = {row["name"] for row in span_snapshot()}
        assert names == {"fit", "fit/epoch", "fit/epoch/labels"}

    def test_top_level_slash_name_matches_nested_bucket(self):
        with span("fit"):
            with span("epoch"):
                pass
        with span("fit/epoch"):
            pass
        rows = _by_name(span_snapshot())
        assert rows["fit/epoch"]["count"] == 2

    def test_sibling_spans_share_parent(self):
        with span("fit"):
            with span("plan"):
                pass
            with span("epoch"):
                pass
        names = {row["name"] for row in span_snapshot()}
        assert {"fit/plan", "fit/epoch"} <= names


class TestAggregation:
    def test_counts_and_totals_accumulate(self):
        for _ in range(5):
            with span("work"):
                pass
        [row] = span_snapshot()
        assert row["count"] == 5
        assert row["total_seconds"] >= 0.0
        assert row["p50_seconds"] <= row["p95_seconds"]

    def test_elapsed_available_after_exit(self):
        with span("timed") as sp:
            sum(range(1000))
        assert sp.elapsed > 0.0

    def test_reset_clears_aggregate(self):
        with span("gone"):
            pass
        reset_spans()
        assert span_snapshot() == []

    def test_exception_still_records(self):
        try:
            with span("raises"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        [row] = span_snapshot()
        assert row["name"] == "raises" and row["count"] == 1


class TestDisabled:
    def test_disabled_spans_record_nothing(self):
        set_spans_enabled(False)
        assert not spans_enabled()
        with span("invisible"):
            pass
        assert span_snapshot() == []

    def test_disabled_spans_still_measure_elapsed(self):
        set_spans_enabled(False)
        with span("still-timed") as sp:
            sum(range(1000))
        assert sp.elapsed > 0.0


class TestPercentile:
    def test_interpolates(self):
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 50.0) == 50.5
        assert abs(percentile(samples, 95.0) - 95.05) < 1e-9

    def test_edge_cases(self):
        assert percentile([], 50.0) == 0.0
        assert percentile([3.0], 95.0) == 3.0
        assert percentile([1.0, 2.0], 0.0) == 1.0
        assert percentile([1.0, 2.0], 100.0) == 2.0


class TestProfileReport:
    def test_empty_profile_is_empty_string(self):
        assert format_profile() == ""

    def test_tree_rendering_indents_children(self):
        with span("fit"):
            with span("epoch"):
                pass
        report = format_profile()
        lines = report.splitlines()
        assert any(line.startswith("fit") for line in lines)
        assert any(line.startswith("  epoch") for line in lines)
        assert "count" in lines[0]


class TestReservoir:
    def test_exact_below_capacity(self):
        res = Reservoir(8, seed_key="x")
        for value in range(5):
            res.offer(float(value))
        assert res.seen == 5
        assert res.values == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_bounded_past_capacity_but_counts_everything(self):
        res = Reservoir(16, seed_key="x")
        for value in range(1000):
            res.offer(float(value))
        assert res.seen == 1000
        assert len(res.values) == 16
        assert set(res.values) <= {float(v) for v in range(1000)}

    def test_same_seed_key_is_deterministic(self):
        def fill(key):
            res = Reservoir(8, seed_key=key)
            for value in range(200):
                res.offer(float(value))
            return list(res.values)

        assert fill("fit/epoch") == fill("fit/epoch")
        assert fill("fit/epoch") != fill("other")

    def test_reservoir_is_representative(self):
        # Uniform stream 0..9999: the sampled median estimator should
        # land near the true median, unlike first-N truncation (which
        # would report ~capacity/2).
        res = Reservoir(512, seed_key="uniform")
        for value in range(10_000):
            res.offer(float(value))
        assert abs(percentile(list(res.values), 50.0) - 5000.0) < 1000.0


class TestAggregateBeyondCapacity:
    def test_span_count_and_total_stay_exact(self):
        stream = 2 * _MAX_SAMPLES
        for _ in range(stream):
            with span("hot"):
                pass
        [row] = span_snapshot()
        assert row["count"] == stream  # exact, not capped at capacity
        assert row["total_seconds"] >= 0.0

    def test_histogram_count_and_sum_stay_exact(self):
        hist = registry().histogram("hot.loss")
        stream = _MAX_SAMPLES + 100
        for _ in range(stream):
            hist.observe(1.0)
        row = hist.row()
        assert row["count"] == stream
        assert row["sum"] == float(stream)
        assert row["p50"] == 1.0
