"""Span timer tests: nesting, aggregation, percentiles, disabled path."""

from repro.obs import (format_profile, reset_spans, set_spans_enabled, span,
                       span_snapshot, spans_enabled)
from repro.obs.spans import percentile


def _by_name(rows):
    return {row["name"]: row for row in rows}


class TestNesting:
    def test_nested_spans_build_slash_paths(self):
        with span("fit"):
            with span("epoch"):
                with span("labels"):
                    pass
        names = {row["name"] for row in span_snapshot()}
        assert names == {"fit", "fit/epoch", "fit/epoch/labels"}

    def test_top_level_slash_name_matches_nested_bucket(self):
        with span("fit"):
            with span("epoch"):
                pass
        with span("fit/epoch"):
            pass
        rows = _by_name(span_snapshot())
        assert rows["fit/epoch"]["count"] == 2

    def test_sibling_spans_share_parent(self):
        with span("fit"):
            with span("plan"):
                pass
            with span("epoch"):
                pass
        names = {row["name"] for row in span_snapshot()}
        assert {"fit/plan", "fit/epoch"} <= names


class TestAggregation:
    def test_counts_and_totals_accumulate(self):
        for _ in range(5):
            with span("work"):
                pass
        [row] = span_snapshot()
        assert row["count"] == 5
        assert row["total_seconds"] >= 0.0
        assert row["p50_seconds"] <= row["p95_seconds"]

    def test_elapsed_available_after_exit(self):
        with span("timed") as sp:
            sum(range(1000))
        assert sp.elapsed > 0.0

    def test_reset_clears_aggregate(self):
        with span("gone"):
            pass
        reset_spans()
        assert span_snapshot() == []

    def test_exception_still_records(self):
        try:
            with span("raises"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        [row] = span_snapshot()
        assert row["name"] == "raises" and row["count"] == 1


class TestDisabled:
    def test_disabled_spans_record_nothing(self):
        set_spans_enabled(False)
        assert not spans_enabled()
        with span("invisible"):
            pass
        assert span_snapshot() == []

    def test_disabled_spans_still_measure_elapsed(self):
        set_spans_enabled(False)
        with span("still-timed") as sp:
            sum(range(1000))
        assert sp.elapsed > 0.0


class TestPercentile:
    def test_interpolates(self):
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 50.0) == 50.5
        assert abs(percentile(samples, 95.0) - 95.05) < 1e-9

    def test_edge_cases(self):
        assert percentile([], 50.0) == 0.0
        assert percentile([3.0], 95.0) == 3.0
        assert percentile([1.0, 2.0], 0.0) == 1.0
        assert percentile([1.0, 2.0], 100.0) == 2.0


class TestProfileReport:
    def test_empty_profile_is_empty_string(self):
        assert format_profile() == ""

    def test_tree_rendering_indents_children(self):
        with span("fit"):
            with span("epoch"):
                pass
        report = format_profile()
        lines = report.splitlines()
        assert any(line.startswith("fit") for line in lines)
        assert any(line.startswith("  epoch") for line in lines)
        assert "count" in lines[0]
