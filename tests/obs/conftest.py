"""Telemetry tests run against clean global state."""

import pytest

from repro.obs import registry, reset_spans, set_spans_enabled


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Isolate each test from (and restore) the process-wide sinks."""
    registry().reset()
    reset_spans()
    set_spans_enabled(True)
    yield
    registry().reset()
    reset_spans()
    set_spans_enabled(True)
