"""Telemetry tests run against clean global state."""

import pytest

from repro.obs import (registry, reset_spans, set_spans_enabled,
                       set_tracing_enabled, trace_recorder)


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Isolate each test from (and restore) the process-wide sinks."""
    registry().reset()
    reset_spans()
    trace_recorder().reset()
    set_spans_enabled(True)
    set_tracing_enabled(True)
    yield
    registry().reset()
    reset_spans()
    trace_recorder().reset()
    set_spans_enabled(True)
    set_tracing_enabled(True)
