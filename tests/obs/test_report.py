"""Report renderer tests: span table, causal event order, top-N."""

from repro.obs.report import format_report, format_span_table, format_trace


def span_row(name, count=1, total=1.0, p50=0.5, p95=0.9):
    return {"type": "span", "name": name, "count": count,
            "total_seconds": total, "p50_seconds": p50, "p95_seconds": p95}


def trace_row(trace_id, duration_ms, *, flags=(), spans=None,
              sampled="head"):
    return {"type": "trace", "trace_id": trace_id, "name": "serve.request",
            "flags": list(flags), "sampled": sampled,
            "duration_ms": duration_ms,
            "spans": spans if spans is not None else
            {"name": "serve.request", "start_ms": 0.0,
             "duration_ms": duration_ms, "events": [], "children": []}}


class TestSpanTable:
    def test_children_indent_under_parents_heaviest_first(self):
        rows = [span_row("fit", total=5.0),
                span_row("fit/epoch", total=1.0),
                span_row("fit/plan", total=3.0)]
        lines = format_span_table(rows).splitlines()
        assert lines[1].startswith("fit ")
        assert lines[2].startswith("  plan")  # heavier sibling first
        assert lines[3].startswith("  epoch")

    def test_orphan_paths_promote_to_top_level(self):
        lines = format_span_table([span_row("a/b/c")]).splitlines()
        assert lines[1].startswith("c ")

    def test_empty_input_is_empty_string(self):
        assert format_span_table([{"type": "counter", "name": "x",
                                   "value": 1}]) == ""


class TestTraceRendering:
    def test_events_and_children_interleave_in_causal_order(self):
        spans = {"name": "serve.request", "start_ms": 0.0,
                 "duration_ms": 10.0,
                 "events": [
                     {"kind": "degrade", "at_ms": 1.0,
                      "attrs": {"reason": "breaker"}},
                     {"kind": "error", "at_ms": 9.0,
                      "attrs": {"code": "boom"}},
                 ],
                 "children": [
                     {"name": "tier/cached", "start_ms": 2.0,
                      "duration_ms": 5.0,
                      "events": [{"kind": "cache", "at_ms": 3.0,
                                  "attrs": {"hit": True}}],
                      "children": []},
                 ]}
        text = format_trace(trace_row("abc123", 10.0,
                                      flags=["degraded", "error"],
                                      spans=spans, sampled="forced"))
        lines = text.splitlines()
        assert lines[0].startswith("trace abc123")
        assert "flags=degraded,error" in lines[0]
        assert "sampled=forced" in lines[0]
        order = [line for line in lines
                 if "* degrade" in line or "tier/cached" in line
                 or "* cache" in line or "* error" in line]
        assert "* degrade" in order[0]       # @1ms before the tier span
        assert "tier/cached" in order[1]     # @2ms
        assert "* cache" in order[2]         # @3ms, nested inside tier
        assert "* error" in order[3]         # @9ms, back on the root
        assert "reason=breaker" in order[0]

    def test_no_flags_renders_dash(self):
        text = format_trace(trace_row("t0", 1.0))
        assert "flags=-" in text


class TestFullReport:
    def test_sections_meta_profile_and_slowest_traces(self):
        rows = [{"type": "meta", "schema_version": 2, "benchmark": "tiny"},
                span_row("fit"),
                trace_row("fast", 1.0), trace_row("slow", 50.0),
                trace_row("mid", 10.0)]
        text = format_report(rows, top=2)
        assert "export benchmark=tiny schema_version=2" in text
        assert "== span profile ==" in text
        assert "== slowest traces (2 of 3 sampled) ==" in text
        assert text.index("trace slow") < text.index("trace mid")
        assert "trace fast" not in text

    def test_empty_export_reports_nothing(self):
        assert "nothing to report" in format_report([])
