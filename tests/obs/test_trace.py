"""Request-trace tests: tree shape, sampling, recorder bounds,
cross-thread attribution, and the lock-free disabled path — all on fake
clocks."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import registry
from repro.obs.trace import (FLAG_DEGRADED, FLAG_ERROR, NULL_TRACE,
                             SamplePolicy, TraceRecorder, Tracer,
                             activate_context, add_trace_event,
                             capture_context, current_trace, flag_trace,
                             set_tracing_enabled, trace_span)


class TickClock:
    """Deterministic clock: every read advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def make_tracer(**kwargs):
    kwargs.setdefault("recorder", TraceRecorder())
    kwargs.setdefault("clock", TickClock())
    counter = iter(range(10_000))
    kwargs.setdefault("id_factory", lambda: f"t{next(counter):04d}")
    return Tracer(**kwargs)


class TestTraceTree:
    def test_span_tree_nests_and_times(self):
        tracer = make_tracer()
        with tracer.trace("req") as trace:
            with trace_span("outer"):
                with trace_span("inner"):
                    pass
            with trace_span("sibling"):
                pass
        row = trace.to_row()
        assert row["type"] == "trace"
        assert row["trace_id"] == "t0000"
        root = row["spans"]
        assert root["name"] == "req"
        assert [c["name"] for c in root["children"]] == ["outer", "sibling"]
        assert root["children"][0]["children"][0]["name"] == "inner"
        # TickClock: every read advances 1s, so durations are positive
        # and children start after their parents
        assert root["duration_ms"] > 0
        outer = root["children"][0]
        assert outer["start_ms"] > root["start_ms"]
        assert outer["duration_ms"] > 0

    def test_events_carry_kind_attrs_and_order(self):
        tracer = make_tracer()
        with tracer.trace("req"):
            add_trace_event("breaker", breaker="text", to_state="open")
            with trace_span("tier/cached"):
                add_trace_event("cache", cache="stale", hit=False)
        row = tracer.recorder.snapshot()[0]
        root = row["spans"]
        assert root["events"][0]["kind"] == "breaker"
        assert root["events"][0]["attrs"]["to_state"] == "open"
        nested = root["children"][0]["events"][0]
        assert nested["kind"] == "cache"
        assert nested["attrs"] == {"cache": "stale", "hit": False}
        # causal order: the breaker event precedes the tier span
        assert root["events"][0]["at_ms"] < root["children"][0]["start_ms"]

    def test_ambient_helpers_are_noops_without_active_trace(self):
        assert current_trace() is None
        with trace_span("orphan") as span:
            assert span is None
        add_trace_event("ignored")
        flag_trace("ignored")  # nothing raised, nothing recorded

    def test_current_trace_restored_after_activation(self):
        tracer = make_tracer()
        trace = tracer.start("req")
        with trace.activate():
            assert current_trace() is trace
        assert current_trace() is None


class TestSampling:
    def test_rate_zero_drops_unflagged(self):
        tracer = make_tracer(policy=SamplePolicy(rate=0.0))
        with tracer.trace("req"):
            pass
        assert len(tracer.recorder) == 0
        assert registry().counter("obs.trace.unsampled").value == 1

    @pytest.mark.parametrize("flag", [FLAG_ERROR, FLAG_DEGRADED,
                                      "deadline", "shed"])
    def test_flagged_traces_always_kept(self, flag):
        tracer = make_tracer(policy=SamplePolicy(rate=0.0))
        with tracer.trace("req"):
            flag_trace(flag)
        [row] = tracer.recorder.snapshot()
        assert row["flags"] == [flag]
        assert row["sampled"] == "forced"

    def test_rate_one_keeps_everything(self):
        tracer = make_tracer(policy=SamplePolicy(rate=1.0))
        for _ in range(5):
            with tracer.trace("req"):
                pass
        assert len(tracer.recorder) == 5
        assert registry().counter("obs.trace.kept").value == 5

    def test_fractional_rate_is_deterministic_with_injected_rng(self):
        import random

        policy = SamplePolicy(rate=0.5, rng=random.Random(7))
        reference = random.Random(7)
        expected = [reference.random() < 0.5 for _ in range(20)]
        tracer = make_tracer(policy=policy)
        for _ in range(20):
            with tracer.trace("req"):
                pass
        assert len(tracer.recorder) == sum(expected)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            SamplePolicy(rate=1.5)

    def test_finish_is_idempotent(self):
        tracer = make_tracer()
        trace = tracer.start("req")
        assert trace.finish() is True
        assert trace.finish() is False
        assert len(tracer.recorder) == 1


class TestRecorder:
    def test_bounded_capacity_keeps_newest(self):
        recorder = TraceRecorder(capacity=3)
        tracer = make_tracer(recorder=recorder)
        for _ in range(5):
            with tracer.trace("req"):
                pass
        rows = recorder.snapshot()
        assert len(rows) == 3
        assert [row["trace_id"] for row in rows] == ["t0002", "t0003",
                                                     "t0004"]
        assert recorder.evicted == 2

    def test_set_capacity_and_reset(self):
        recorder = TraceRecorder(capacity=4)
        recorder.set_capacity(2)
        assert recorder.capacity == 2
        recorder.add({"trace_id": "a"})
        recorder.reset()
        assert len(recorder) == 0
        with pytest.raises(ValueError):
            recorder.set_capacity(0)


class _PoisonLock:
    """A lock stand-in that fails the test if ever acquired."""

    def __enter__(self):
        raise AssertionError("recorder lock acquired while tracing disabled")

    def __exit__(self, *exc):  # pragma: no cover - never reached
        return False


class TestDisabledPath:
    def test_disabled_start_returns_null_trace(self):
        set_tracing_enabled(False)
        tracer = make_tracer()
        trace = tracer.start("req")
        assert trace is NULL_TRACE
        assert trace.trace_id is None

    def test_disabled_path_never_touches_recorder_or_trace_locks(self):
        set_tracing_enabled(False)
        recorder = TraceRecorder()
        recorder._lock = _PoisonLock()
        tracer = make_tracer(recorder=recorder)
        with tracer.trace("req"):
            with trace_span("child"):
                add_trace_event("noop")
            flag_trace(FLAG_ERROR)
        assert len(recorder._rows) == 0

    def test_disabled_mints_no_ids_and_counts_nothing(self):
        set_tracing_enabled(False)
        minted = []
        tracer = make_tracer(id_factory=lambda: minted.append(1) or "x")
        with tracer.trace("req"):
            pass
        assert minted == []
        assert registry().counter("obs.trace.started").value == 0


class TestCrossThread:
    def test_captured_context_attributes_spans_to_owner(self):
        tracer = make_tracer(clock=TickClock(0.001))
        with tracer.trace("req") as trace:
            with trace_span("dispatch"):
                ctx = capture_context()

                def work(i):
                    with activate_context(ctx), trace_span(f"chunk{i}"):
                        return threading.get_ident()

                with ThreadPoolExecutor(max_workers=2) as pool:
                    idents = set(pool.map(work, range(4)))
        assert len(idents) >= 1  # genuinely ran on pool threads
        row = trace.to_row()
        dispatch = row["spans"]["children"][0]
        names = sorted(child["name"] for child in dispatch["children"])
        assert names == ["chunk0", "chunk1", "chunk2", "chunk3"]

    def test_concurrent_traces_do_not_leak_spans(self):
        tracer = make_tracer(clock=TickClock(0.001))
        barrier = threading.Barrier(2)
        rows = {}

        def request(tag):
            with tracer.trace(f"req-{tag}") as trace:
                barrier.wait(timeout=5)
                ctx = capture_context()

                def chunk():
                    with activate_context(ctx), trace_span(f"work-{tag}"):
                        pass

                with ThreadPoolExecutor(max_workers=2) as pool:
                    list(pool.map(lambda _: chunk(), range(3)))
                barrier.wait(timeout=5)
            rows[tag] = trace.to_row()

        threads = [threading.Thread(target=request, args=(tag,))
                   for tag in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        for tag in ("a", "b"):
            children = rows[tag]["spans"]["children"]
            assert len(children) == 3
            assert {child["name"] for child in children} == {f"work-{tag}"}

    def test_activate_context_none_is_noop(self):
        with activate_context(None):
            assert current_trace() is None
