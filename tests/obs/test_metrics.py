"""Metrics registry tests: counters (incl. atomicity), gauges, histograms."""

import threading

import pytest

from repro.obs import MetricsRegistry, registry


class TestCounter:
    def test_increments(self):
        counter = registry().counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            registry().counter("c").inc(-1)

    def test_concurrent_increments_are_not_lost(self):
        counter = registry().counter("atomic")
        workers, per_worker = 8, 2000

        def hammer():
            for _ in range(per_worker):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == workers * per_worker


class TestGauge:
    def test_last_write_wins(self):
        gauge = registry().gauge("g")
        gauge.set(1.5)
        gauge.set(2.5)
        assert gauge.value == 2.5


class TestHistogram:
    def test_summary_statistics(self):
        histogram = registry().histogram("h")
        for value in range(1, 101):
            histogram.observe(value)
        assert histogram.count == 100
        assert histogram.sum == 5050.0
        assert histogram.mean == 50.5
        assert histogram.quantile(50.0) == 50.5
        row = histogram.row()
        assert row["min"] == 1.0 and row["max"] == 100.0
        assert abs(row["p95"] - 95.05) < 1e-9

    def test_empty_histogram_row(self):
        row = registry().histogram("empty").row()
        assert row["count"] == 0
        assert row["min"] == 0.0 and row["max"] == 0.0


class TestBucketBackedHistogram:
    def test_row_carries_buckets_and_p99(self):
        histogram = registry().histogram("lat", buckets=[1.0, 10.0])
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        row = histogram.row()
        assert row["buckets"] == {"bounds": [1.0, 10.0],
                                  "counts": [1, 1, 1]}
        assert row["count"] == 3
        assert "p99" in row and "p95" in row and "p50" in row

    def test_reservoir_row_has_no_buckets(self):
        histogram = registry().histogram("res")
        histogram.observe(1.0)
        row = histogram.row()
        assert "buckets" not in row and "p99" not in row

    def test_buckets_ignored_on_existing_instrument(self):
        first = registry().histogram("one", buckets=[1.0])
        again = registry().histogram("one", buckets=[99.0])
        assert again is first
        assert registry().histogram("one") is first

    def test_merge_bucket_folds_in_a_run(self):
        from repro.obs.hist import BucketHistogram

        run = BucketHistogram([1.0, 10.0])
        for value in (0.5, 5.0):
            run.observe(value)
        histogram = registry().histogram("lat", buckets=[1.0, 10.0])
        histogram.observe(50.0)
        histogram.merge_bucket(run)
        assert histogram.count == 3
        assert histogram.row()["buckets"]["counts"] == [1, 1, 1]

    def test_merge_bucket_rejected_on_reservoir_backend(self):
        from repro.obs.hist import BucketHistogram

        with pytest.raises(ValueError):
            registry().histogram("res").merge_bucket(BucketHistogram([1.0]))

    def test_quantile_uses_exact_buckets(self):
        histogram = registry().histogram("lat", buckets=[10.0, 20.0])
        histogram.observe(15.0)
        assert histogram.quantile(100.0) == 15.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        assert registry().counter("same") is registry().counter("same")

    def test_type_mismatch_raises(self):
        registry().counter("typed")
        with pytest.raises(ValueError):
            registry().gauge("typed")

    def test_snapshot_schema(self):
        reg = MetricsRegistry()
        reg.counter("a.count").inc(2)
        reg.gauge("b.gauge").set(3.0)
        reg.histogram("c.hist").observe(1.0)
        rows = reg.snapshot()
        assert [row["name"] for row in rows] == ["a.count", "b.gauge", "c.hist"]
        assert [row["type"] for row in rows] == ["counter", "gauge",
                                                "histogram"]

    def test_reset_drops_instruments(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.snapshot() == []
        assert reg.counter("x").value == 0


class TestScrapeConsistency:
    """The live-scrape contract (DESIGN.md §15): ``snapshot()`` stays
    internally consistent per row while worker threads mutate every
    instrument mid-scrape — no torn histograms, no backward counters,
    no renderer crashes."""

    def test_snapshot_under_concurrent_mutation(self):
        from repro.obs import span, span_snapshot
        from repro.obs.promtext import render_openmetrics

        reg = MetricsRegistry()
        stop = threading.Event()

        def writer(seed: int) -> None:
            count = 0
            while not stop.is_set():
                reg.counter("hammer.requests_total").inc()
                reg.gauge("hammer.depth").set(float(count % 7))
                reg.histogram("hammer.lat_ms",
                              buckets=[1.0, 10.0, 100.0]) \
                    .observe(float((count * (seed + 1)) % 120))
                reg.histogram("hammer.res").observe(float(count % 9))
                with span("hammer/score"):
                    pass
                count += 1

        threads = [threading.Thread(target=writer, args=(i,), daemon=True)
                   for i in range(4)]
        for thread in threads:
            thread.start()
        last_counter = 0
        try:
            for _ in range(50):
                rows = reg.snapshot() + span_snapshot()
                by_name = {row["name"]: row for row in rows}
                counter = by_name.get("hammer.requests_total")
                if counter is not None:
                    # cumulative: never moves backwards across scrapes
                    assert counter["value"] >= last_counter
                    last_counter = counter["value"]
                bucketed = by_name.get("hammer.lat_ms")
                if bucketed is not None and "buckets" in bucketed:
                    # read under the instrument lock: the facets agree
                    assert sum(bucketed["buckets"]["counts"]) \
                        == bucketed["count"]
                    assert len(bucketed["buckets"]["counts"]) \
                        == len(bucketed["buckets"]["bounds"]) + 1
                # and the renderer never sees a torn row
                text = render_openmetrics(rows, prefix="hammer")
                assert text.endswith("# EOF\n")
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert last_counter > 0, "writers never ran"
