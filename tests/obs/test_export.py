"""JSONL exporter tests: schema and round-trip."""

from repro.obs import export_jsonl, read_jsonl, registry, span
from repro.obs.export import SCHEMA_VERSION

#: required keys per row type — the schema --metrics-out consumers rely on
ROW_KEYS = {
    "meta": {"schema_version", "created_unix"},
    "counter": {"name", "value"},
    "gauge": {"name", "value"},
    "histogram": {"name", "count", "sum", "min", "max", "p50", "p95"},
    "span": {"name", "count", "total_seconds", "p50_seconds", "p95_seconds"},
}


def populate():
    reg = registry()
    reg.counter("cache.hit").inc(3)
    reg.gauge("train.pairs_per_sec").set(812.5)
    for value in (0.1, 0.2, 0.3):
        reg.histogram("train.epoch_loss").observe(value)
    with span("fit"):
        with span("epoch"):
            pass


class TestExport:
    def test_round_trip_preserves_values(self, tmp_path):
        populate()
        path = tmp_path / "metrics.jsonl"
        written = export_jsonl(path, meta={"benchmark": "tiny"})
        rows = read_jsonl(path)
        assert len(rows) == written
        by_name = {row.get("name"): row for row in rows}
        assert by_name["cache.hit"]["value"] == 3
        assert by_name["train.pairs_per_sec"]["value"] == 812.5
        assert by_name["train.epoch_loss"]["count"] == 3
        assert abs(by_name["train.epoch_loss"]["sum"] - 0.6) < 1e-9
        assert by_name["fit/epoch"]["count"] == 1

    def test_schema(self, tmp_path):
        populate()
        path = tmp_path / "metrics.jsonl"
        export_jsonl(path, meta={"benchmark": "tiny"})
        rows = read_jsonl(path)
        assert rows[0]["type"] == "meta"
        assert rows[0]["schema_version"] == SCHEMA_VERSION
        assert rows[0]["benchmark"] == "tiny"
        for row in rows:
            assert row["type"] in ROW_KEYS
            assert ROW_KEYS[row["type"]] <= set(row)

    def test_spans_can_be_excluded(self, tmp_path):
        populate()
        path = tmp_path / "metrics.jsonl"
        export_jsonl(path, include_spans=False)
        assert all(row["type"] != "span" for row in read_jsonl(path))

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "metrics.jsonl"
        export_jsonl(path)
        assert read_jsonl(path)[0]["type"] == "meta"
