"""JSONL exporter tests: schema, round-trip, corrupt-line tolerance."""

from repro.obs import export_jsonl, read_jsonl, registry, span
from repro.obs.export import SCHEMA_VERSION
from repro.obs.trace import tracer

#: required keys per row type — the schema --metrics-out consumers rely on
ROW_KEYS = {
    "meta": {"schema_version", "created_unix"},
    "counter": {"name", "value"},
    "gauge": {"name", "value"},
    "histogram": {"name", "count", "sum", "min", "max", "p50", "p95"},
    "span": {"name", "count", "total_seconds", "p50_seconds", "p95_seconds"},
    "trace": {"trace_id", "name", "flags", "sampled", "duration_ms",
              "spans"},
}


def populate():
    reg = registry()
    reg.counter("cache.hit").inc(3)
    reg.gauge("train.pairs_per_sec").set(812.5)
    for value in (0.1, 0.2, 0.3):
        reg.histogram("train.epoch_loss").observe(value)
    with span("fit"):
        with span("epoch"):
            pass
    with tracer().trace("serve.request"):
        pass


class TestExport:
    def test_round_trip_preserves_values(self, tmp_path):
        populate()
        path = tmp_path / "metrics.jsonl"
        written = export_jsonl(path, meta={"benchmark": "tiny"})
        rows = read_jsonl(path)
        assert len(rows) == written
        by_name = {row.get("name"): row for row in rows}
        assert by_name["cache.hit"]["value"] == 3
        assert by_name["train.pairs_per_sec"]["value"] == 812.5
        assert by_name["train.epoch_loss"]["count"] == 3
        assert abs(by_name["train.epoch_loss"]["sum"] - 0.6) < 1e-9
        assert by_name["fit/epoch"]["count"] == 1

    def test_schema(self, tmp_path):
        populate()
        path = tmp_path / "metrics.jsonl"
        export_jsonl(path, meta={"benchmark": "tiny"})
        rows = read_jsonl(path)
        assert rows[0]["type"] == "meta"
        assert rows[0]["schema_version"] == SCHEMA_VERSION
        assert rows[0]["benchmark"] == "tiny"
        for row in rows:
            assert row["type"] in ROW_KEYS
            assert ROW_KEYS[row["type"]] <= set(row)

    def test_spans_can_be_excluded(self, tmp_path):
        populate()
        path = tmp_path / "metrics.jsonl"
        export_jsonl(path, include_spans=False)
        assert all(row["type"] != "span" for row in read_jsonl(path))

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "metrics.jsonl"
        export_jsonl(path)
        assert read_jsonl(path)[0]["type"] == "meta"

    def test_v2_includes_sampled_traces(self, tmp_path):
        populate()
        path = tmp_path / "metrics.jsonl"
        export_jsonl(path)
        traces = [row for row in read_jsonl(path)
                  if row["type"] == "trace"]
        assert len(traces) == 1
        assert traces[0]["name"] == "serve.request"
        assert traces[0]["spans"]["name"] == "serve.request"

    def test_traces_can_be_excluded(self, tmp_path):
        populate()
        path = tmp_path / "metrics.jsonl"
        export_jsonl(path, include_traces=False)
        assert all(row["type"] != "trace" for row in read_jsonl(path))


class TestReadTolerance:
    def test_corrupt_lines_are_skipped_and_counted(self, tmp_path):
        populate()
        path = tmp_path / "metrics.jsonl"
        written = export_jsonl(path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "counter", "name": "torn", "val\n')
            handle.write("not json at all\n")
        rows = read_jsonl(path)
        assert len(rows) == written  # good rows all survive
        assert all(row.get("name") != "torn" for row in rows)
        assert registry().counter("obs.read.corrupt_lines").value == 2

    def test_blank_lines_are_not_corruption(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text('{"type": "meta", "schema_version": 2}\n\n\n')
        assert len(read_jsonl(path)) == 1
        assert registry().counter("obs.read.corrupt_lines").value == 0
