"""Fixed-bucket histograms: exactness, merging, quantiles, round-trip."""

from __future__ import annotations

import math

import pytest

from repro.obs.hist import (DEFAULT_LATENCY_BOUNDS_MS, BucketHistogram,
                            log_bounds)


class TestLogBounds:
    def test_geometric_spacing_covers_range(self):
        bounds = log_bounds(1.0, 1000.0, per_decade=10)
        assert bounds[0] == 1.0
        assert bounds[-1] >= 1000.0
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(abs(r - 10 ** 0.1) < 1e-9 for r in ratios)

    def test_default_latency_layout_spans_100us_to_60s(self):
        assert DEFAULT_LATENCY_BOUNDS_MS[0] == pytest.approx(0.1)
        assert DEFAULT_LATENCY_BOUNDS_MS[-1] >= 60_000.0

    @pytest.mark.parametrize("lo,hi,per", [(0.0, 1.0, 12), (1.0, 1.0, 12),
                                           (2.0, 1.0, 12), (1.0, 10.0, 0)])
    def test_invalid_layouts_rejected(self, lo, hi, per):
        with pytest.raises(ValueError):
            log_bounds(lo, hi, per)


class TestBucketHistogram:
    def test_counts_are_exact_and_total(self):
        hist = BucketHistogram([1.0, 10.0, 100.0])
        for value in (0.5, 5.0, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 1, 1]  # last slot = +Inf overflow
        assert hist.count == 5
        assert hist.sum == pytest.approx(560.5)
        assert hist.min == 0.5 and hist.max == 500.0

    def test_boundary_value_lands_in_its_bucket(self):
        # bisect_left: a value exactly on a bound belongs to that
        # bucket (le semantics, matching Prometheus)
        hist = BucketHistogram([1.0, 10.0])
        hist.observe(1.0)
        assert hist.counts == [1, 0, 0]

    def test_cumulative_ends_at_inf_with_total(self):
        hist = BucketHistogram([1.0, 10.0])
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        series = hist.cumulative()
        assert series == [(1.0, 1), (10.0, 2), (math.inf, 3)]
        # cumulative counts are monotone non-decreasing by construction
        counts = [count for _, count in series]
        assert counts == sorted(counts)

    def test_merge_adds_bucketwise(self):
        a, b = BucketHistogram([1.0, 10.0]), BucketHistogram([1.0, 10.0])
        a.observe(0.5)
        b.observe(5.0)
        b.observe(50.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.min == 0.5 and a.max == 50.0

    def test_merge_requires_identical_bounds(self):
        with pytest.raises(ValueError):
            BucketHistogram([1.0]).merge(BucketHistogram([2.0]))

    def test_quantile_interpolates_and_clamps(self):
        hist = BucketHistogram([10.0, 20.0, 30.0])
        for value in (12.0, 14.0, 26.0, 28.0):
            hist.observe(value)
        assert hist.quantile(0.0) == pytest.approx(12.0)  # clamped to min
        assert hist.quantile(100.0) == pytest.approx(28.0)  # clamped to max
        assert 10.0 <= hist.quantile(50.0) <= 20.0

    def test_quantile_in_overflow_returns_max(self):
        hist = BucketHistogram([1.0])
        hist.observe(99.0)
        assert hist.quantile(99.0) == 99.0

    def test_empty_histogram(self):
        hist = BucketHistogram([1.0])
        assert hist.quantile(50.0) == 0.0
        assert hist.mean == 0.0
        assert hist.to_dict()["min"] == 0.0

    def test_dict_round_trip(self):
        hist = BucketHistogram([1.0, 10.0])
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        clone = BucketHistogram.from_dict(hist.to_dict())
        assert clone.counts == hist.counts
        assert clone.count == hist.count
        assert clone.sum == hist.sum
        assert clone.quantile(50.0) == hist.quantile(50.0)

    @pytest.mark.parametrize("bounds", [[], [2.0, 1.0], [1.0, 1.0]])
    def test_invalid_bounds_rejected(self, bounds):
        with pytest.raises(ValueError):
            BucketHistogram(bounds)
