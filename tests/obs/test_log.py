"""Structured logger tests: level control, key=value records, binding."""

import io

import pytest

from repro.obs import configure_logging, get_logger, level_name
from repro.obs import log as log_module


@pytest.fixture(autouse=True)
def restore_logging():
    yield
    configure_logging("warning", stream=None)
    log_module._stream = None


def capture(level="debug"):
    stream = io.StringIO()
    configure_logging(level, stream=stream)
    return stream


class TestLevels:
    def test_below_threshold_is_suppressed(self):
        stream = capture("warning")
        get_logger("t").info("hidden")
        assert stream.getvalue() == ""

    def test_at_threshold_is_emitted(self):
        stream = capture("info")
        get_logger("t").info("visible")
        assert "visible" in stream.getvalue()

    def test_off_silences_everything(self):
        stream = capture("off")
        logger = get_logger("t")
        logger.error("nope")
        assert stream.getvalue() == ""

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("loud")

    def test_env_var_controls_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        configure_logging(None)
        assert level_name() == "debug"

    def test_bad_env_var_falls_back_to_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "verbose")
        configure_logging(None)
        assert level_name() == "warning"


class TestRecords:
    def test_key_value_fields(self):
        stream = capture()
        get_logger("repro.test").info("epoch done", epoch=3, loss=0.43812)
        line = stream.getvalue().strip()
        assert "INFO" in line and "repro.test" in line
        assert "epoch=3" in line and "loss=0.4381" in line

    def test_values_with_spaces_are_quoted(self):
        stream = capture()
        get_logger("t").info("msg", path="a b")
        assert "path='a b'" in stream.getvalue()

    def test_bound_context_rides_along(self):
        stream = capture()
        logger = get_logger("t").bind(run="r1")
        logger.info("first", step=1)
        logger.info("second", step=2)
        lines = stream.getvalue().strip().splitlines()
        assert all("run=r1" in line for line in lines)

    def test_bind_does_not_mutate_parent(self):
        stream = capture()
        parent = get_logger("t")
        parent.bind(extra="x")
        parent.info("plain")
        assert "extra=" not in stream.getvalue()
