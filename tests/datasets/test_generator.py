"""Benchmark generator tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.generator import (build_attribute_dataset,
                                      build_relational_dataset,
                                      _shared_attributes)
from repro.datasets.splits import train_test_split
from repro.datasets.world import ConceptUniverse


@pytest.fixture(scope="module")
def universe():
    return ConceptUniverse(12, kind="bird", seed=6)


@pytest.fixture(scope="module")
def attribute_ds(universe):
    return build_attribute_dataset(universe, concept_indices=range(8),
                                   images_per_concept=2, seed=6)


@pytest.fixture(scope="module")
def relational_ds(universe):
    return build_relational_dataset(universe, concept_indices=range(8),
                                    images_per_concept=2, seed=6)


class TestAttributeDataset:
    def test_statistics(self, attribute_ds):
        stats = attribute_ds.statistics()
        assert stats["entities"] == 8
        assert stats["images"] == 16
        assert stats["candidate_pairs"] == 128
        assert stats["vertices"] > stats["entities"]  # attribute vertices

    def test_true_pairs_match_provenance(self, attribute_ds):
        pairs = attribute_ds.true_pairs()
        assert len(pairs) == 16  # each image matches exactly one vertex
        for vertex, image_id in pairs:
            concept = attribute_ds.vertex_concept[vertex]
            image = next(i for i in attribute_ds.images
                         if i.image_id == image_id)
            assert image.concept_index == concept

    def test_images_of_vertex(self, attribute_ds):
        v = attribute_ds.entity_vertices[0]
        positions = attribute_ds.images_of_vertex(v)
        assert len(positions) == 2
        concept = attribute_ds.vertex_concept[v]
        for p in positions:
            assert attribute_ds.images[p].concept_index == concept

    def test_entity_labels_are_names(self, attribute_ds, universe):
        labels = {attribute_ds.graph.label(v)
                  for v in attribute_ds.entity_vertices}
        assert labels == {universe[i].name for i in range(8)}


class TestRelationalDataset:
    def test_reference_edges_exist(self, relational_ds):
        ref_edges = [e for e in relational_ds.graph.edges()
                     if e.label.startswith("ref")]
        assert ref_edges

    def test_homophily_biases_edges(self, universe):
        """Reference edges should connect visually more similar concepts
        than random pairs on average."""
        ds = build_relational_dataset(universe, images_per_concept=1,
                                      homophily=8.0, mean_degree=3, seed=1)
        concept_of = {v: ds.universe[c] for v, c in ds.vertex_concept.items()}
        edge_shared = []
        for e in ds.graph.edges():
            if e.label.startswith("ref") and e.target in concept_of:
                edge_shared.append(_shared_attributes(concept_of[e.source],
                                                      concept_of[e.target]))
        rng = np.random.default_rng(0)
        concepts = list(concept_of.values())
        random_shared = []
        for _ in range(300):
            i, j = rng.choice(len(concepts), size=2, replace=False)
            random_shared.append(_shared_attributes(concepts[int(i)],
                                                    concepts[int(j)]))
        assert np.mean(edge_shared) >= np.mean(random_shared)

    def test_unknown_size_raises(self):
        from repro.datasets.fbimg import load_fbimg
        with pytest.raises(ValueError):
            load_fbimg("fb99k")


class TestSplits:
    def test_disjoint_and_complete(self, attribute_ds):
        split = train_test_split(attribute_ds, 0.5, seed=0)
        assert not set(split.train) & set(split.test)
        assert (set(split.train) | set(split.test)
                == set(attribute_ds.entity_vertices))

    def test_invalid_fraction(self, attribute_ds):
        with pytest.raises(ValueError):
            train_test_split(attribute_ds, 1.5)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.1, 0.9), st.integers(0, 1000))
    def test_property_split_sizes(self, fraction, seed):
        universe = ConceptUniverse(10, seed=1)
        ds = build_attribute_dataset(universe, concept_indices=range(6),
                                     images_per_concept=1, seed=1)
        split = train_test_split(ds, fraction, seed=seed)
        assert len(split.train) >= 1
        assert len(split.test) >= 1
        assert len(split.train) + len(split.test) == 6
