"""Latent attribute world tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.world import (PART_RANGES, AttributeSchema, ConceptUniverse,
                                  caption_for)
from repro.text.tokenizer import WordTokenizer, Vocabulary


class TestUniverse:
    def test_deterministic(self):
        a = ConceptUniverse(10, seed=3)
        b = ConceptUniverse(10, seed=3)
        assert [c.name for c in a] == [c.name for c in b]
        assert [c.visual for c in a] == [c.visual for c in b]

    def test_unique_names(self):
        universe = ConceptUniverse(50, seed=0)
        names = [c.name for c in universe]
        assert len(set(names)) == len(names)

    def test_kind_part_ranges(self):
        for kind, (low, high) in PART_RANGES.items():
            universe = ConceptUniverse(20, kind=kind, seed=1)
            counts = [len(c.visual) for c in universe]
            assert min(counts) >= low
            assert max(counts) <= high

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            ConceptUniverse(5, kind="vehicle")

    def test_invalid_part_range_raises(self):
        with pytest.raises(ValueError):
            ConceptUniverse(5, min_parts=0)

    def test_symbolic_attributes_complete(self):
        universe = ConceptUniverse(5, seed=0)
        for concept in universe:
            assert set(concept.symbolic) == {"habitat", "food", "size",
                                             "origin"}

    def test_visual_items_sorted(self):
        universe = ConceptUniverse(5, seed=0)
        for concept in universe:
            parts = [p for p, _ in concept.visual_items()]
            assert parts == sorted(parts)

    def test_too_many_concepts_raises(self):
        with pytest.raises(ValueError):
            ConceptUniverse(10_000_000, seed=0)


class TestSchema:
    def test_visual_phrase(self):
        schema = AttributeSchema()
        phrase = schema.visual_phrase(0, 0)
        assert phrase == "has crown color in white"


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_property_vocabulary_covers_captions(seed):
    """Every caption word must be tokenizable without [UNK]."""
    universe = ConceptUniverse(8, seed=seed % 100)
    vocab = Vocabulary(universe.vocabulary_words())
    tokenizer = WordTokenizer(vocab, max_len=128)
    rng = np.random.default_rng(seed)
    for concept in universe:
        caption = caption_for(concept, universe.schema, rng)
        ids = tokenizer.encode(caption, pad=False)
        assert vocab.unk_id not in ids, caption
