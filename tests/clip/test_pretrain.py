"""Contrastive pre-training tests (tiny but real runs)."""

import numpy as np
import pytest

from repro import nn
from repro.clip.model import MiniCLIP
from repro.clip.pretrain import PretrainConfig, clip_contrastive_loss, pretrain_clip
from repro.datasets.world import ConceptUniverse
from repro.text.tokenizer import Vocabulary, WordTokenizer


@pytest.fixture(scope="module")
def setup():
    universe = ConceptUniverse(8, kind="bird", seed=11)
    vocab = Vocabulary(universe.vocabulary_words())
    tokenizer = WordTokenizer(vocab, max_len=77)
    clip = MiniCLIP(len(vocab), embed_dim=32, text_width=24, text_depth=1,
                    vision_width=24, vision_depth=1, rng=11)
    return universe, vocab, tokenizer, clip


class TestContrastiveLoss:
    def test_positive_diagonal_lowers_loss(self, setup):
        _, _, _, clip = setup
        aligned = nn.Tensor(np.eye(4, 32, dtype=np.float32))
        loss_aligned = clip_contrastive_loss(clip, aligned, aligned).item()
        rng = np.random.default_rng(0)
        random_t = nn.functional.l2_normalize(
            nn.Tensor(rng.standard_normal((4, 32)).astype(np.float32)))
        random_i = nn.functional.l2_normalize(
            nn.Tensor(rng.standard_normal((4, 32)).astype(np.float32)))
        loss_random = clip_contrastive_loss(clip, random_t, random_i).item()
        assert loss_aligned < loss_random


class TestPretrain:
    def test_loss_decreases(self, setup):
        universe, _, tokenizer, clip = setup
        config = PretrainConfig(epochs=5, batch_size=16,
                                captions_per_concept=3, seed=11)
        losses = pretrain_clip(clip.clone(), universe, tokenizer, config)
        assert len(losses) == 5
        assert losses[-1] < losses[0]

    def test_deterministic(self, setup):
        universe, _, tokenizer, clip = setup
        config = PretrainConfig(epochs=2, batch_size=16,
                                captions_per_concept=2, seed=4)
        a = pretrain_clip(clip.clone(), universe, tokenizer, config)
        b = pretrain_clip(clip.clone(), universe, tokenizer, config)
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_logit_scale_stays_bounded(self, setup):
        universe, _, tokenizer, clip = setup
        model = clip.clone()
        config = PretrainConfig(epochs=3, batch_size=16,
                                captions_per_concept=2, seed=4)
        pretrain_clip(model, universe, tokenizer, config)
        assert 0.0 <= float(model.logit_scale.data[0]) <= np.log(100.0) + 1e-6
