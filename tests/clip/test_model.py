"""MiniCLIP model tests."""

import numpy as np
import pytest

from repro import nn
from repro.clip.model import MiniCLIP, TextEncoder


@pytest.fixture(scope="module")
def clip():
    return MiniCLIP(vocab_size=50, embed_dim=32, text_width=24, text_depth=1,
                    vision_width=24, vision_depth=1, max_len=20, rng=0)


class TestTextEncoder:
    def test_shapes_and_normalization(self, clip, rng):
        ids = rng.integers(0, 50, size=(3, 8))
        out = clip.encode_text(ids).numpy()
        assert out.shape == (3, 32)
        np.testing.assert_allclose(np.linalg.norm(out, axis=1),
                                   np.ones(3), atol=1e-4)

    def test_single_sequence_promoted(self, clip, rng):
        ids = rng.integers(0, 50, size=8)
        assert clip.encode_text(ids).shape == (1, 32)

    def test_too_long_raises(self, clip, rng):
        ids = rng.integers(0, 50, size=(1, 25))
        with pytest.raises(ValueError):
            clip.encode_text(ids)

    def test_forward_embeddings_matches_ids(self, clip, rng):
        ids = rng.integers(0, 50, size=(2, 6))
        with nn.no_grad():
            direct = clip.encode_text(ids).numpy()
            embeddings = clip.text.token_embed(ids)
            via = clip.encode_text_embeddings(embeddings).numpy()
        np.testing.assert_allclose(direct, via, atol=1e-6)


class TestImageEncoder:
    def test_normalized(self, clip, rng):
        pixels = rng.random((2, 24, 24, 3)).astype(np.float32)
        out = clip.encode_image(pixels).numpy()
        np.testing.assert_allclose(np.linalg.norm(out, axis=1),
                                   np.ones(2), atol=1e-4)


class TestScoring:
    def test_logit_scale_applied(self, clip, rng):
        ids = rng.integers(0, 50, size=(2, 6))
        pixels = rng.random((2, 24, 24, 3)).astype(np.float32)
        with nn.no_grad():
            t = clip.encode_text(ids)
            i = clip.encode_image(pixels)
            logits = clip.similarity_logits(t, i).numpy()
        scale = float(np.exp(clip.logit_scale.data[0]))
        cosines = t.numpy() @ i.numpy().T
        np.testing.assert_allclose(logits, cosines * scale, atol=1e-4)


class TestCloneAndFreeze:
    def test_clone_independent(self, clip, rng):
        copy = clip.clone()
        ids = rng.integers(0, 50, size=(1, 5))
        with nn.no_grad():
            before = clip.encode_text(ids).numpy().copy()
        copy.text.token_embed.weight.data += 1.0
        with nn.no_grad():
            after = clip.encode_text(ids).numpy()
        np.testing.assert_array_equal(before, after)

    def test_clone_same_outputs(self, clip, rng):
        copy = clip.clone()
        ids = rng.integers(0, 50, size=(2, 5))
        with nn.no_grad():
            np.testing.assert_allclose(clip.encode_text(ids).numpy(),
                                       copy.encode_text(ids).numpy(),
                                       atol=1e-6)

    def test_freeze_image_tower(self):
        model = MiniCLIP(vocab_size=10, embed_dim=16, text_width=16,
                         text_depth=1, vision_width=16, vision_depth=1,
                         max_len=8, rng=0)
        total = len(list(model.parameters()))
        model.freeze_image_tower()
        remaining = list(model.parameters())
        assert len(remaining) < total
        assert not model.logit_scale.requires_grad
        assert all(p is not q for p in model.vision.parameters()
                   for q in remaining)
