"""Property aligner tests (the ResNet→BERT-space bridge for PCP)."""

import numpy as np
import pytest

from repro.clip.alignment import PropertyAligner
from repro.datasets.world import ConceptUniverse
from repro.text.corpus import build_text_corpus
from repro.text.minilm import MiniLM
from repro.text.tokenizer import Vocabulary
from repro.vision.encoder import PatchFeatureExtractor
from repro.vision.image import render_concept


@pytest.fixture(scope="module")
def fitted():
    universe = ConceptUniverse(10, kind="bird", seed=13)
    vocab = Vocabulary(universe.vocabulary_words())
    minilm = MiniLM(vocab, dim=24).pretrain(
        build_text_corpus(universe, seed=13), seed=13)
    extractor = PatchFeatureExtractor(seed=13)
    aligner = PropertyAligner(extractor, minilm).fit(universe, seed=13)
    return universe, minilm, aligner


class TestPropertyAligner:
    def test_requires_fit(self):
        universe = ConceptUniverse(3, seed=1)
        vocab = Vocabulary(universe.vocabulary_words())
        minilm = MiniLM(vocab, dim=8).pretrain(
            build_text_corpus(universe, seed=1), seed=1)
        aligner = PropertyAligner(PatchFeatureExtractor(seed=1), minilm)
        with pytest.raises(RuntimeError):
            aligner.project_patches(np.zeros((1, 32), dtype=np.float32))

    def test_projected_shape(self, fitted):
        universe, minilm, aligner = fitted
        image = render_concept(universe[0], rng=0)
        out = aligner.patch_text_space(image)
        assert out.shape == (9, minilm.dim)

    def test_own_patch_closest_to_own_phrase(self, fitted):
        universe, minilm, aligner = fitted
        schema = universe.schema
        concept = universe[0]
        image = render_concept(concept, rng=5, occlusion_prob=0.0)
        patches = aligner.patch_text_space(image)
        part, color = concept.visual_items()[0]
        phrase = minilm.embed_text(
            f"{schema.color_names[color]} {schema.part_names[part]}")
        sims = patches @ phrase
        sims /= (np.linalg.norm(patches, axis=1) * np.linalg.norm(phrase) + 1e-9)
        assert sims.argmax() == part
