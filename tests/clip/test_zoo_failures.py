"""Failure-injection tests for the model zoo's disk cache."""

import numpy as np
import pytest

from repro.clip import zoo
from repro.clip.pretrain import PretrainConfig
from repro.obs import registry


@pytest.fixture()
def config():
    return PretrainConfig(epochs=1, batch_size=8, captions_per_concept=1,
                          seed=33)


class TestDiskCacheFailures:
    def test_corrupted_archive_triggers_rebuild(self, config, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        zoo.clear_memory_cache()
        first = zoo.get_pretrained_bundle(kind="bird", num_concepts=5,
                                          seed=33, config=config)
        # corrupt the only cache file on disk
        [cache_file] = list(tmp_path.glob("bundle-*.npz"))
        cache_file.write_bytes(b"not a numpy archive")
        zoo.clear_memory_cache()
        rebuilt = zoo.get_pretrained_bundle(kind="bird", num_concepts=5,
                                            seed=33, config=config)
        for key, value in rebuilt.clip.state_dict().items():
            np.testing.assert_allclose(value, first.clip.state_dict()[key],
                                       atol=1e-6)
        zoo.clear_memory_cache()

    def test_missing_keys_trigger_rebuild(self, config, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        zoo.clear_memory_cache()
        zoo.get_pretrained_bundle(kind="bird", num_concepts=5, seed=33,
                                  config=config)
        [cache_file] = list(tmp_path.glob("bundle-*.npz"))
        # replace with an archive that lacks the clip weights
        np.savez_compressed(cache_file,
                            **{"minilm.embeddings": np.zeros((3, 3)),
                               "aligner.weights": np.zeros((2, 2)),
                               "losses": np.zeros(1)})
        zoo.clear_memory_cache()
        bundle = zoo.get_pretrained_bundle(kind="bird", num_concepts=5,
                                           seed=33, config=config)
        assert bundle.pretrain_losses  # rebuilt, not loaded garbage
        zoo.clear_memory_cache()

    def test_truncated_zip_rebuilds_and_replaces_cache(self, config, tmp_path,
                                                       monkeypatch):
        """Regression: a *truncated* .npz keeps its valid zip header, so
        np.load only raises zipfile.BadZipFile lazily while reading an
        array — which used to escape _load_bundle and crash the whole
        session.  The zoo must treat it as a miss, delete the bad file,
        rebuild, and count it via the cache.corrupt metric."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        zoo.clear_memory_cache()
        first = zoo.get_pretrained_bundle(kind="bird", num_concepts=5,
                                          seed=33, config=config)
        [cache_file] = list(tmp_path.glob("bundle-*.npz"))
        payload = cache_file.read_bytes()
        cache_file.write_bytes(payload[: len(payload) // 2])
        zoo.clear_memory_cache()
        corrupt_before = registry().counter("cache.corrupt").value
        rebuilt = zoo.get_pretrained_bundle(kind="bird", num_concepts=5,
                                            seed=33, config=config)
        assert registry().counter("cache.corrupt").value == corrupt_before + 1
        for key, value in rebuilt.clip.state_dict().items():
            np.testing.assert_allclose(value, first.clip.state_dict()[key],
                                       atol=1e-6)
        # the bad blob was replaced with a loadable one
        assert cache_file.read_bytes() != payload[: len(payload) // 2]
        zoo.clear_memory_cache()
        reloaded = zoo.get_pretrained_bundle(kind="bird", num_concepts=5,
                                             seed=33, config=config)
        assert reloaded.pretrain_losses == rebuilt.pretrain_losses
        zoo.clear_memory_cache()

    def test_cache_disabled_skips_disk(self, config, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        zoo.clear_memory_cache()
        zoo.get_pretrained_bundle(kind="bird", num_concepts=5, seed=33,
                                  config=config, use_disk_cache=False)
        assert not list(tmp_path.glob("bundle-*.npz"))
        zoo.clear_memory_cache()
