"""Concurrent access to the zoo's disk cache.

Two threads that miss the memory cache simultaneously both pre-train
and both publish the same cache path.  The atomic per-call temp naming
in ``iosafe`` guarantees a single complete winner: no interleaved
bytes, no temp litter, and the survivor deserializes for the next
process.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.clip import zoo
from repro.clip.pretrain import PretrainConfig
from repro.obs import registry


CONFIG = PretrainConfig(epochs=1, batch_size=8, captions_per_concept=1,
                        seed=45)


def test_concurrent_builders_single_writer_wins(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    zoo.clear_memory_cache()

    barrier = threading.Barrier(2)
    original_build = zoo._build_bundle

    def synced_build(*args, **kwargs):
        # hold both threads at the build step so neither can publish the
        # cache file before the other has committed to writing it too
        barrier.wait(timeout=60)
        return original_build(*args, **kwargs)

    monkeypatch.setattr(zoo, "_build_bundle", synced_build)

    results = {}
    errors = []

    def fetch(tag):
        try:
            results[tag] = zoo.get_pretrained_bundle(
                kind="bird", num_concepts=5, seed=45, config=CONFIG)
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [threading.Thread(target=fetch, args=(tag,))
               for tag in ("a", "b")]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in threads)

    assert errors == []
    assert set(results) == {"a", "b"}
    # same seed, so the loser's lost bytes were identical anyway — both
    # callers hold an equivalent bundle
    np.testing.assert_allclose(
        results["a"].clip.state_dict()["logit_scale"],
        results["b"].clip.state_dict()["logit_scale"])

    # exactly one complete cache file, no temp litter, nothing corrupt
    cache_files = list(tmp_path.glob("bundle-*.npz"))
    assert len(cache_files) == 1
    assert not list(tmp_path.glob("*.tmp-*"))
    assert not list(tmp_path.glob("*.corrupt*"))

    # the winner's file is a valid archive: a fresh process reloads it
    # instead of rebuilding
    monkeypatch.setattr(zoo, "_build_bundle", original_build)
    zoo.clear_memory_cache()
    hits_before = registry().counter("cache.hit").value
    reloaded = zoo.get_pretrained_bundle(kind="bird", num_concepts=5,
                                         seed=45, config=CONFIG)
    assert registry().counter("cache.hit").value == hits_before + 1
    np.testing.assert_allclose(
        reloaded.clip.state_dict()["logit_scale"],
        results["a"].clip.state_dict()["logit_scale"], atol=1e-6)
    zoo.clear_memory_cache()
