"""Pre-trained bundle zoo tests (memory + disk caching)."""

import numpy as np
import pytest

from repro.clip.pretrain import PretrainConfig
from repro.clip import zoo


@pytest.fixture()
def small_config():
    return PretrainConfig(epochs=1, batch_size=8, captions_per_concept=1,
                          seed=21)


class TestZoo:
    def test_memory_cache_returns_same_object(self, small_config, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        zoo.clear_memory_cache()
        a = zoo.get_pretrained_bundle(kind="bird", num_concepts=6, seed=21,
                                      config=small_config)
        b = zoo.get_pretrained_bundle(kind="bird", num_concepts=6, seed=21,
                                      config=small_config)
        assert a is b
        zoo.clear_memory_cache()

    def test_disk_roundtrip_preserves_weights(self, small_config, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        zoo.clear_memory_cache()
        first = zoo.get_pretrained_bundle(kind="bird", num_concepts=6,
                                          seed=21, config=small_config)
        state = first.clip.state_dict()
        zoo.clear_memory_cache()
        second = zoo.get_pretrained_bundle(kind="bird", num_concepts=6,
                                           seed=21, config=small_config)
        assert second is not first
        for key, value in second.clip.state_dict().items():
            np.testing.assert_allclose(value, state[key], atol=1e-6)
        np.testing.assert_allclose(second.minilm.embeddings,
                                   first.minilm.embeddings, atol=1e-6)
        zoo.clear_memory_cache()

    def test_distinct_configs_distinct_bundles(self, small_config, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        zoo.clear_memory_cache()
        a = zoo.get_pretrained_bundle(kind="bird", num_concepts=6, seed=21,
                                      config=small_config)
        other = PretrainConfig(epochs=2, batch_size=8, captions_per_concept=1,
                               seed=21)
        b = zoo.get_pretrained_bundle(kind="bird", num_concepts=6, seed=21,
                                      config=other)
        assert a is not b
        zoo.clear_memory_cache()
