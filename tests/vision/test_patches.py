"""Patch extraction tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.world import ConceptUniverse
from repro.vision.image import ImageSpec, render_concept, render_repository
from repro.vision.patches import extract_patches, patch_grid


class TestPatchGrid:
    def test_shape(self):
        spec = ImageSpec()
        image = np.zeros((spec.side, spec.side, 3), dtype=np.float32)
        patches = patch_grid(image)
        assert patches.shape == (spec.num_patches, spec.patch, spec.patch, 3)

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            patch_grid(np.zeros((5, 5, 3), dtype=np.float32))

    def test_patch_i_is_slot_i(self):
        spec = ImageSpec()
        image = np.zeros((spec.side, spec.side, 3), dtype=np.float32)
        image[:spec.patch, spec.patch:2 * spec.patch] = 1.0  # slot 1
        patches = patch_grid(image)
        assert patches[1].min() == 1.0
        assert patches[0].max() == 0.0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_reassembly(self, seed):
        spec = ImageSpec()
        rng = np.random.default_rng(seed)
        image = rng.random((spec.side, spec.side, 3)).astype(np.float32)
        patches = patch_grid(image)
        rebuilt = patches.reshape(spec.grid, spec.grid, spec.patch,
                                  spec.patch, 3).transpose(0, 2, 1, 3, 4)
        rebuilt = rebuilt.reshape(spec.side, spec.side, 3)
        np.testing.assert_array_equal(rebuilt, image)


class TestExtractPatches:
    def test_batch_shape(self):
        universe = ConceptUniverse(2, seed=0)
        repo = render_repository(list(universe), 2, seed=0)
        spec = ImageSpec()
        out = extract_patches(repo)
        assert out.shape == (4, spec.num_patches, spec.patch, spec.patch, 3)
