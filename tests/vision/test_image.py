"""Synthetic image renderer tests."""

import numpy as np
import pytest

from repro.datasets.world import COLOR_RGB, ConceptUniverse
from repro.vision.image import (GRID, PATCH, SIDE, ImageSpec, render_concept,
                                render_repository)


@pytest.fixture(scope="module")
def universe():
    return ConceptUniverse(6, kind="bird", seed=4)


class TestRenderConcept:
    def test_shape_and_range(self, universe):
        image = render_concept(universe[0], rng=0)
        assert image.shape == (SIDE, SIDE, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_deterministic_with_seed(self, universe):
        a = render_concept(universe[0], rng=42)
        b = render_concept(universe[0], rng=42)
        np.testing.assert_array_equal(a, b)

    def test_attribute_patch_matches_color(self, universe):
        concept = universe[0]
        image = render_concept(concept, rng=0, noise=0.0, occlusion_prob=0.0)
        part, color = concept.visual_items()[0]
        row, col = divmod(part, GRID)
        patch = image[row * PATCH:(row + 1) * PATCH,
                      col * PATCH:(col + 1) * PATCH]
        distance = np.abs(patch.mean(axis=(0, 1)) - COLOR_RGB[color]).mean()
        assert distance < 0.25

    def test_views_differ(self, universe):
        a = render_concept(universe[0], rng=1)
        b = render_concept(universe[0], rng=2)
        assert not np.allclose(a, b)

    def test_occlusion_probability_one_hides_a_patch(self, universe):
        concept = universe[0]
        clean = render_concept(concept, rng=3, noise=0.0, occlusion_prob=0.0)
        occluded = render_concept(concept, rng=3, noise=0.0, occlusion_prob=1.0)
        assert not np.allclose(clean, occluded)


class TestRepository:
    def test_counts_and_provenance(self, universe):
        repo = render_repository(list(universe)[:3], images_per_concept=4,
                                 seed=0)
        assert len(repo) == 12
        concepts = {img.concept_index for img in repo}
        assert concepts == {0, 1, 2}
        assert sorted(img.image_id for img in repo) == list(range(12))

    def test_shuffled_but_deterministic(self, universe):
        a = render_repository(list(universe)[:3], 2, seed=9)
        b = render_repository(list(universe)[:3], 2, seed=9)
        assert [x.image_id for x in a] == [x.image_id for x in b]


class TestImageSpec:
    def test_defaults_consistent(self):
        spec = ImageSpec()
        assert spec.side == SIDE
        assert spec.num_patches == GRID * GRID
