"""Video substrate tests (§II-A frame division)."""

import numpy as np
import pytest

from repro.datasets.world import ConceptUniverse
from repro.vision.video import frames_to_images, record_video


@pytest.fixture(scope="module")
def universe():
    return ConceptUniverse(3, seed=8)


class TestRecordVideo:
    def test_shape_and_range(self, universe):
        video = record_video(universe[0], num_frames=6, rng=0)
        assert video.frames.shape == (6, 24, 24, 3)
        assert video.num_frames == 6
        assert video.frames.min() >= 0.0 and video.frames.max() <= 1.0

    def test_deterministic(self, universe):
        a = record_video(universe[0], num_frames=4, rng=5)
        b = record_video(universe[0], num_frames=4, rng=5)
        np.testing.assert_array_equal(a.frames, b.frames)

    def test_frames_vary_but_depict_same_content(self, universe):
        video = record_video(universe[0], num_frames=4, rng=0)
        assert not np.allclose(video.frames[0], video.frames[1])
        # consecutive frames stay close (smooth flicker, same scene)
        delta = np.abs(video.frames[0] - video.frames[1]).mean()
        assert delta < 0.15

    def test_requires_frames(self, universe):
        with pytest.raises(ValueError):
            record_video(universe[0], num_frames=0)


class TestFramesToImages:
    def test_stride_sampling(self, universe):
        videos = [record_video(universe[i], num_frames=8, rng=i, video_id=i)
                  for i in range(2)]
        images = frames_to_images(videos, stride=2)
        assert len(images) == 8  # 4 per video
        assert [img.image_id for img in images] == list(range(8))

    def test_provenance_preserved(self, universe):
        video = record_video(universe[1], num_frames=4, rng=0, video_id=0)
        images = frames_to_images([video], stride=1)
        assert all(img.concept_index == universe[1].index for img in images)

    def test_invalid_stride(self, universe):
        video = record_video(universe[0], num_frames=4, rng=0)
        with pytest.raises(ValueError):
            frames_to_images([video], stride=0)

    def test_start_image_id(self, universe):
        video = record_video(universe[0], num_frames=2, rng=0)
        images = frames_to_images([video], stride=1, start_image_id=100)
        assert images[0].image_id == 100
