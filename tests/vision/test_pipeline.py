"""Chunked/thread-pooled encode helper and the batched patch featurizer:
chunking, pooling and batching must be invisible in the output bits."""

import threading
import time

import numpy as np
import pytest

from repro.vision.pipeline import chunked_encode, resolve_workers


class TestChunkedEncode:
    def test_concatenates_in_index_order(self):
        data = np.arange(23, dtype=np.float32)[:, None]
        out = chunked_encode(lambda s, e: data[s:e], 23, chunk=5)
        np.testing.assert_array_equal(out, data)

    def test_threaded_matches_serial(self):
        rng = np.random.default_rng(0)
        data = rng.random((37, 4)).astype(np.float32)
        serial = chunked_encode(lambda s, e: data[s:e] * 2.0, 37, chunk=4,
                                workers=0)
        threaded = chunked_encode(lambda s, e: data[s:e] * 2.0, 37, chunk=4,
                                  workers=4)
        np.testing.assert_array_equal(serial, threaded)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            chunked_encode(lambda s, e: np.zeros((e - s, 1)), 0)

    def test_poisoned_chunk_raises_promptly_and_cancels_rest(self):
        """A worker exception propagates as soon as it happens, and the
        chunks still queued behind the two busy workers are cancelled
        instead of all running to completion first."""
        executed = []
        lock = threading.Lock()

        def encode(s, e):
            if s == 0:
                raise ValueError("poisoned chunk")
            time.sleep(0.05)
            with lock:
                executed.append(s)
            return np.zeros((e - s, 1), dtype=np.float32)

        with pytest.raises(ValueError, match="poisoned chunk"):
            chunked_encode(encode, 64, chunk=4, workers=2)
        # 16 chunks total; the poison fires immediately, so with 2
        # workers only the handful already dequeued may finish — the
        # long tail must have been cancelled, never executed.
        assert len(executed) < 8

    def test_poisoned_serial_chunk_raises(self):
        def encode(s, e):
            if s >= 8:
                raise ValueError("poisoned chunk")
            return np.zeros((e - s, 1), dtype=np.float32)

        with pytest.raises(ValueError, match="poisoned chunk"):
            chunked_encode(encode, 16, chunk=4, workers=0)

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENCODE_WORKERS", raising=False)
        assert resolve_workers(None) == 0
        assert resolve_workers(3) == 3
        monkeypatch.setenv("REPRO_ENCODE_WORKERS", "2")
        assert resolve_workers(None) == 2
        monkeypatch.setenv("REPRO_ENCODE_WORKERS", "bogus")
        assert resolve_workers(None) == 0


class TestBatchedPatchFeatures:
    def test_features_batch_matches_reference(self, tiny_bundle,
                                              tiny_dataset):
        extractor = tiny_bundle.patch_extractor
        batched = extractor.features_batch(tiny_dataset.images)
        reference = extractor.features_batch_reference(tiny_dataset.images)
        np.testing.assert_array_equal(batched, reference)

    def test_aligned_batch_matches_per_image(self, tiny_bundle,
                                             tiny_dataset):
        aligner = tiny_bundle.aligner
        batched = aligner.patch_text_space_batch(tiny_dataset.images)
        reference = np.stack([aligner.patch_text_space(img.pixels)
                              for img in tiny_dataset.images])
        np.testing.assert_array_equal(batched, reference)

    def test_threaded_image_tower_matches_serial(self, tiny_bundle,
                                                 tiny_dataset):
        import repro.nn as nn
        clip = tiny_bundle.clip
        pixels = lambda s, e: np.stack(
            [img.pixels for img in tiny_dataset.images[s:e]])
        with nn.no_grad():
            serial = chunked_encode(
                lambda s, e: clip.encode_image(pixels(s, e)).numpy(),
                len(tiny_dataset.images), chunk=4, workers=0)
            threaded = chunked_encode(
                lambda s, e: clip.encode_image(pixels(s, e)).numpy(),
                len(tiny_dataset.images), chunk=4, workers=4)
        np.testing.assert_array_equal(serial, threaded)
