"""Chunked/thread-pooled encode helper and the batched patch featurizer:
chunking, pooling and batching must be invisible in the output bits."""

import threading
import time

import numpy as np
import pytest

from repro.vision.pipeline import chunked_encode, resolve_workers


class TestChunkedEncode:
    def test_concatenates_in_index_order(self):
        data = np.arange(23, dtype=np.float32)[:, None]
        out = chunked_encode(lambda s, e: data[s:e], 23, chunk=5)
        np.testing.assert_array_equal(out, data)

    def test_threaded_matches_serial(self):
        rng = np.random.default_rng(0)
        data = rng.random((37, 4)).astype(np.float32)
        serial = chunked_encode(lambda s, e: data[s:e] * 2.0, 37, chunk=4,
                                workers=0)
        threaded = chunked_encode(lambda s, e: data[s:e] * 2.0, 37, chunk=4,
                                  workers=4)
        np.testing.assert_array_equal(serial, threaded)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            chunked_encode(lambda s, e: np.zeros((e - s, 1)), 0)

    def test_poisoned_chunk_raises_promptly_and_cancels_rest(self):
        """A worker exception propagates as soon as it happens, and the
        chunks still queued behind the two busy workers are cancelled
        instead of all running to completion first."""
        executed = []
        lock = threading.Lock()

        def encode(s, e):
            if s == 0:
                raise ValueError("poisoned chunk")
            time.sleep(0.05)
            with lock:
                executed.append(s)
            return np.zeros((e - s, 1), dtype=np.float32)

        with pytest.raises(ValueError, match="poisoned chunk"):
            chunked_encode(encode, 64, chunk=4, workers=2)
        # 16 chunks total; the poison fires immediately, so with 2
        # workers only the handful already dequeued may finish — the
        # long tail must have been cancelled, never executed.
        assert len(executed) < 8

    def test_poisoned_serial_chunk_raises(self):
        def encode(s, e):
            if s >= 8:
                raise ValueError("poisoned chunk")
            return np.zeros((e - s, 1), dtype=np.float32)

        with pytest.raises(ValueError, match="poisoned chunk"):
            chunked_encode(encode, 16, chunk=4, workers=0)

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENCODE_WORKERS", raising=False)
        assert resolve_workers(None) == 0
        assert resolve_workers(3) == 3
        monkeypatch.setenv("REPRO_ENCODE_WORKERS", "2")
        assert resolve_workers(None) == 2
        monkeypatch.setenv("REPRO_ENCODE_WORKERS", "bogus")
        assert resolve_workers(None) == 0


class TestBatchedPatchFeatures:
    def test_features_batch_matches_reference(self, tiny_bundle,
                                              tiny_dataset):
        extractor = tiny_bundle.patch_extractor
        batched = extractor.features_batch(tiny_dataset.images)
        reference = extractor.features_batch_reference(tiny_dataset.images)
        np.testing.assert_array_equal(batched, reference)

    def test_aligned_batch_matches_per_image(self, tiny_bundle,
                                             tiny_dataset):
        aligner = tiny_bundle.aligner
        batched = aligner.patch_text_space_batch(tiny_dataset.images)
        reference = np.stack([aligner.patch_text_space(img.pixels)
                              for img in tiny_dataset.images])
        np.testing.assert_array_equal(batched, reference)

    def test_threaded_image_tower_matches_serial(self, tiny_bundle,
                                                 tiny_dataset):
        import repro.nn as nn
        clip = tiny_bundle.clip
        pixels = lambda s, e: np.stack(
            [img.pixels for img in tiny_dataset.images[s:e]])
        with nn.no_grad():
            serial = chunked_encode(
                lambda s, e: clip.encode_image(pixels(s, e)).numpy(),
                len(tiny_dataset.images), chunk=4, workers=0)
            threaded = chunked_encode(
                lambda s, e: clip.encode_image(pixels(s, e)).numpy(),
                len(tiny_dataset.images), chunk=4, workers=4)
        np.testing.assert_array_equal(serial, threaded)


class TestTraceAttribution:
    """Pooled chunks must land their spans in the *owning request's*
    trace tree, not the worker thread's own (empty) context."""

    @staticmethod
    def make_tracer():
        from repro.obs.trace import SamplePolicy, TraceRecorder, Tracer

        recorder = TraceRecorder()
        return Tracer(policy=SamplePolicy(rate=1.0),
                      recorder=recorder), recorder

    @staticmethod
    def chunk_spans(row, name):
        chunked = next(c for c in row["spans"]["children"]
                       if c["name"] == f"{name}/chunked")
        return chunked, [c for c in chunked["children"]
                         if c["name"] == f"{name}/chunk"]

    def test_pooled_chunks_attributed_to_request_tree(self):
        tracer, recorder = self.make_tracer()
        with tracer.trace("req"):
            out = chunked_encode(lambda s, e: np.zeros((e - s, 1)),
                                 16, chunk=4, workers=2, name="enc")
        assert out.shape == (16, 1)
        [row] = recorder.snapshot()
        chunked, chunks = self.chunk_spans(row, "enc")
        assert len(chunks) == 4
        assert all(c["start_ms"] >= chunked["start_ms"] for c in chunks)

    def test_first_exception_path_still_attributes_spans(self):
        tracer, recorder = self.make_tracer()

        def encode(s, e):
            if s == 0:
                raise ValueError("poisoned chunk")
            time.sleep(0.02)
            return np.zeros((e - s, 1), dtype=np.float32)

        with pytest.raises(ValueError, match="poisoned chunk"):
            with tracer.trace("req"):
                chunked_encode(encode, 64, chunk=4, workers=2, name="enc")
        [row] = recorder.snapshot()
        chunked, chunks = self.chunk_spans(row, "enc")
        # the poisoned chunk's span is in the tree (closed on the way
        # out), and the cancellation left a typed pool event behind
        assert 1 <= len(chunks) <= 16
        pool = [e for e in chunked["events"] if e["kind"] == "pool"]
        assert pool and pool[0]["attrs"]["name"] == "enc"

    def test_concurrent_requests_do_not_leak_chunk_spans(self):
        tracer, recorder = self.make_tracer()
        barrier = threading.Barrier(2)

        def request(tag):
            with tracer.trace(f"req-{tag}"):
                barrier.wait(timeout=5)
                chunked_encode(lambda s, e: np.zeros((e - s, 1)),
                               12, chunk=4, workers=2, name=tag)

        threads = [threading.Thread(target=request, args=(tag,))
                   for tag in ("alpha", "beta")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        rows = {row["name"]: row for row in recorder.snapshot()}
        assert set(rows) == {"req-alpha", "req-beta"}
        for tag in ("alpha", "beta"):
            row = rows[f"req-{tag}"]
            chunked, chunks = self.chunk_spans(row, tag)
            assert len(chunks) == 3  # all of ours, none of theirs
            names = {c["name"] for c in row["spans"]["children"]}
            assert names == {f"{tag}/chunked"}

    def test_serial_path_also_traces_chunks(self):
        tracer, recorder = self.make_tracer()
        with tracer.trace("req"):
            chunked_encode(lambda s, e: np.zeros((e - s, 1)),
                           8, chunk=4, workers=0, name="enc")
        [row] = recorder.snapshot()
        _, chunks = self.chunk_spans(row, "enc")
        assert len(chunks) == 2

    def test_untraced_call_stays_untraced(self):
        _, recorder = self.make_tracer()
        chunked_encode(lambda s, e: np.zeros((e - s, 1)), 8, chunk=4,
                       workers=2, name="enc")
        assert len(recorder) == 0
