"""Vision feature extractor tests."""

import numpy as np
import pytest

from repro import nn
from repro.datasets.world import ConceptUniverse
from repro.vision.encoder import PatchFeatureExtractor, VisionEncoder
from repro.vision.image import ImageSpec, render_concept, render_repository


@pytest.fixture(scope="module")
def universe():
    return ConceptUniverse(4, kind="bird", seed=5)


class TestPatchFeatureExtractor:
    def test_feature_shapes(self, universe):
        extractor = PatchFeatureExtractor(dim=16, seed=1)
        spec = ImageSpec()
        image = render_concept(universe[0], rng=0)
        assert extractor.features(image).shape == (spec.num_patches, 16)
        raw = extractor.raw_features(image)
        assert raw.shape == (spec.num_patches, 8 + spec.num_patches)

    def test_position_onehot_in_raw(self, universe):
        extractor = PatchFeatureExtractor(seed=1)
        raw = extractor.raw_features(render_concept(universe[0], rng=0))
        np.testing.assert_array_equal(raw[:, 8:],
                                      np.eye(ImageSpec().num_patches))

    def test_deterministic_given_seed(self, universe):
        image = render_concept(universe[0], rng=0)
        a = PatchFeatureExtractor(seed=3).features(image)
        b = PatchFeatureExtractor(seed=3).features(image)
        np.testing.assert_array_equal(a, b)

    def test_batch(self, universe):
        extractor = PatchFeatureExtractor(dim=8, seed=1)
        repo = render_repository(list(universe), 2, seed=0)
        out = extractor.features_batch(repo)
        assert out.shape == (8, ImageSpec().num_patches, 8)

    def test_empty_batch(self):
        extractor = PatchFeatureExtractor(dim=8, seed=1)
        assert extractor.features_batch([]).shape == (
            0, ImageSpec().num_patches, 8)

    def test_same_color_similar_features(self, universe):
        """Patches painted the same color should be close in feature
        space across different images."""
        extractor = PatchFeatureExtractor(seed=1)
        concept = universe[0]
        part, _ = concept.visual_items()[0]
        a = extractor.features(render_concept(concept, rng=1,
                                              occlusion_prob=0.0))[part]
        b = extractor.features(render_concept(concept, rng=2,
                                              occlusion_prob=0.0))[part]
        cosine = a @ b / (np.linalg.norm(a) * np.linalg.norm(b))
        assert cosine > 0.9


class TestVisionEncoder:
    def test_output_shape(self, universe):
        encoder = VisionEncoder(embed_dim=32, width=24, depth=1, rng=0)
        pixels = np.stack([render_concept(universe[i], rng=i)
                           for i in range(3)])
        assert encoder(pixels).shape == (3, 32)

    def test_single_image_promoted_to_batch(self, universe):
        encoder = VisionEncoder(embed_dim=16, width=24, depth=1, rng=0)
        out = encoder(render_concept(universe[0], rng=0))
        assert out.shape == (1, 16)

    def test_trainable(self, universe):
        encoder = VisionEncoder(embed_dim=16, width=24, depth=1, rng=0)
        out = encoder(render_concept(universe[0], rng=0))
        out.sum().backward()
        assert all(p.grad is not None for p in encoder.parameters())

    def test_encode_images_helper(self, universe):
        encoder = VisionEncoder(embed_dim=16, width=24, depth=1, rng=0)
        repo = render_repository(list(universe)[:2], 2, seed=0)
        assert encoder.encode_images(repo).shape == (4, 16)
